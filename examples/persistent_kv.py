#!/usr/bin/env python3
"""A durable key-value set on NVMM, with a simulated power failure.

This is the paper's motivating use case (§1, §2.5): without
user-controlled writebacks, data sitting in volatile caches is lost on a
crash.  We build the persistent hash table from the evaluation (§7.4) on
the timing model, run updates under the *automatic* persistence policy with
the hardware Skip It filter, crash the machine, and recover.

Run:  python examples/persistent_kv.py
"""

import random

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.recovery import CrashChecker
from repro.persist.structures import PersistentHashTable
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def main() -> None:
    system = TimingSystem(TimingParams(num_threads=1, skip_it=True))
    heap = SimHeap()
    optimizer = make_optimizer("skipit", heap)
    policy = make_policy("automatic")
    table = PersistentHashTable(heap, num_buckets=64)
    view = PMemView(system.threads[0], policy, optimizer)
    table.initialize(view)

    checker = CrashChecker(system, table, view)
    rng = random.Random(2024)
    operations = []
    for _ in range(300):
        key = rng.randint(1, 100)
        operations.append(("insert" if rng.random() < 0.7 else "delete", key))
    checker.apply(operations)

    print(f"live keys before crash : {len(checker.reference)}")
    print(f"cycles consumed        : {view.ctx.now}")
    print(f"writebacks issued      : {system.stats.get('cbo_issued')}")
    print(f"writebacks skipped     : {system.stats.get('cbo_skipped')} (Skip It)")

    # -- power failure ----------------------------------------------------
    report = checker.crash_and_check()
    print("\n*** CRASH: all cache contents lost ***\n")
    print(f"keys recovered from NVMM: {len(report.recovered)}")
    print(f"durably consistent      : {report.consistent}")
    assert report.consistent, (report.lost, report.ghosts)

    # -- and a negative control: no flushes, data dies with the caches ----
    system2 = TimingSystem(TimingParams(num_threads=1))
    heap2 = SimHeap()
    table2 = PersistentHashTable(heap2, num_buckets=64)
    view2 = PMemView(system2.threads[0], make_policy("none"), make_optimizer("plain", heap2))
    table2.initialize(view2)
    checker2 = CrashChecker(system2, table2, view2)
    checker2.apply([("insert", k) for k in range(1, 51)])
    report2 = checker2.crash_and_check()
    print(
        f"\nwithout writebacks: {len(report2.lost)} of "
        f"{len(checker2.reference)} keys lost in the crash"
    )


if __name__ == "__main__":
    main()
