#!/usr/bin/env python3
"""Head-to-head: the five redundant-writeback filters of §7.4.

Runs the persistent skiplist under the automatic persistence policy with
each filter — plain, FliT adjacent, FliT hash table, link-and-persist,
and Skip It — and prints a small Figure-14-style table.

Run:  python examples/compare_filters.py
"""

from repro.bench.format import format_table
from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.workloads.datastructs import DataStructureBenchmark


def main() -> None:
    rows = []
    for optimizer in OPTIMIZER_NAMES:
        bench = DataStructureBenchmark(
            structure="skiplist",
            policy="automatic",
            optimizer=optimizer,
            update_percent=5,
            threads=2,
            key_range=2048,
        )
        result = bench.run(duration=120_000)
        filtered = result.flush_requests - result.cbo_issued
        rows.append(
            (
                optimizer,
                f"{result.throughput_mops:.3f}",
                result.flush_requests,
                result.cbo_issued,
                filtered,
            )
        )
    print("skiplist, automatic persistence, 5% updates, 2 threads:\n")
    print(
        format_table(
            ["filter", "Mops/s", "flush requests", "reached hardware", "filtered"],
            rows,
        )
    )
    print(
        "\nSkip It filters in hardware metadata: no counters to store, no "
        "marks to mask,\nno auxiliary tables contending for the small caches."
    )


if __name__ == "__main__":
    main()
