#!/usr/bin/env python3
"""Quickstart: user-controlled writebacks and Skip It in five minutes.

Builds the paper's dual-core SonicBOOM-style SoC, runs a store /
CBO.FLUSH / FENCE sequence, and shows the Skip It filter dropping
redundant writebacks at the L1.

Run:  python examples/quickstart.py
"""

from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

ADDRESS = 0x1000


def main() -> None:
    soc = Soc()  # dual-core, 32 KiB L1s, 512 KiB inclusive L2 (§7.1)

    # -- 1. a store alone is NOT persistent -------------------------------
    soc.run_programs([[Instr.store(ADDRESS, 42)]])
    soc.drain()
    print("after store:")
    print(f"  cache value    = {soc.coherent_value(ADDRESS)}")
    print(f"  memory value   = {soc.persisted_value(ADDRESS)}   <- stale!")

    # -- 2. CBO.FLUSH + FENCE makes it durable ----------------------------
    cycles = soc.run_programs([[Instr.flush(ADDRESS), Instr.fence()]])
    soc.drain()
    print(f"\nafter CBO.FLUSH + FENCE ({cycles} cycles):")
    print(f"  memory value   = {soc.persisted_value(ADDRESS)}   <- persisted")

    # -- 3. Skip It drops redundant writebacks at the L1 ------------------
    program = [
        Instr.store(ADDRESS, 43),
        Instr.clean(ADDRESS),  # necessary: writes 43 back
        Instr.fence(),
        Instr.clean(ADDRESS),  # redundant: the line is already persisted
        Instr.clean(ADDRESS),  # redundant
        Instr.fence(),
    ]
    soc.run_programs([program])
    soc.drain()
    fu_stats = soc.l1s[0].flush_unit.stats.as_dict()
    print("\nflush unit statistics after a redundant-clean sequence:")
    print(f"  enqueued (executed) = {fu_stats.get('enqueued', 0)}")
    print(f"  skipped by Skip It  = {fu_stats.get('skipped', 0)}")
    print(f"  memory value        = {soc.persisted_value(ADDRESS)}")

    # -- 4. the same line seen from the other core ------------------------
    soc.run_programs([[], [Instr.load(ADDRESS)]])
    soc.drain()
    print(f"\ncore 1 reads {soc.cores[1].load_result(0)} coherently")


if __name__ == "__main__":
    main()
