#!/usr/bin/env python3
"""A crash-consistent KV store with group commit, crashed twice.

``repro.store`` is the application layer the paper's primitives exist
for: a write-ahead log sealed with CBO.CLEAN + fence, operations
acknowledged in group-commit epochs, a checkpoint behind an atomically
flipped superblock pointer, and recovery that replays the log tail.

The script commits traffic with batch size 8 on the Skip It hardware,
crashes mid-batch, recovers (acked ops survive, the unacked tail is
discarded as a unit), reopens the store on the recovered state, writes
more, and crashes again.

Run:  python examples/durable_store.py
"""

import random

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store import DurableStore, recover
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def main() -> None:
    system = TimingSystem(TimingParams(num_threads=1, skip_it=True))
    heap = SimHeap()
    view = PMemView(
        system.threads[0], make_policy("none"), make_optimizer("skipit", heap)
    )
    store = DurableStore(
        heap, view, log_capacity=128, batch_size=8, checkpoint_every=4
    )

    rng = random.Random(2024)
    acked, unacked = [], []
    for i in range(1, 101):
        ticket = store.put(rng.randint(1, 40), 1000 + i)
        (acked if ticket.acked else unacked).append(ticket)
    # three more puts that stay *pending* — no epoch seal, no ack
    pending = [store.put(90 + i, 9000 + i) for i in range(3)]

    everything = acked + unacked + pending
    print(f"operations submitted    : {len(everything)}")
    print(f"acknowledged (durable)  : {sum(t.acked for t in everything)}")
    print(f"pending (in open batch) : {sum(not t.acked for t in everything)}")
    print(f"commit epochs / fences  : {store.stats.get('store_commits')}"
          f" / {store.stats.get('store_fences')}")
    print(f"checkpoints taken       : {store.stats.get('store_checkpoints')}")
    print(f"writebacks issued       : {system.stats.get('cbo_issued')}")
    print(f"writebacks skipped      : {system.stats.get('cbo_skipped')} (Skip It)")

    # -- power failure, mid-batch -----------------------------------------
    system.crash(at=None)
    state = recover(persisted_reader(system.persisted_image()), store.layout)
    print("\n*** CRASH: caches gone, recovering from NVMM ***\n")
    print(f"recovered keys          : {len(state.items)}")
    print(f"applied through lsn     : {state.applied_lsn} "
          f"(acked was {store.acked_lsn})")
    print(f"replay stopped because  : {state.stop_reason}")
    assert state.applied_lsn == store.acked_lsn
    assert all(90 + i not in state.items for i in range(3)), "unacked leaked!"

    # -- reopen on the recovered state, keep going ------------------------
    store2 = DurableStore(heap, view, batch_size=8, layout=store.layout)
    store2.adopt(state)
    for i in range(1, 33):
        store2.put(200 + i % 16, 5000 + i)
    store2.sync()
    system.crash(at=None)
    state2 = recover(persisted_reader(system.persisted_image()), store2.layout)
    print("\n*** SECOND CRASH after reopen ***\n")
    print(f"recovered keys          : {len(state2.items)}")
    assert state2.items == store2.memtable
    assert state2.applied_lsn == store2.acked_lsn
    print("second-generation state matches exactly — recovery is stable")


if __name__ == "__main__":
    main()
