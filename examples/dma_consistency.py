#!/usr/bin/env python3
"""DMA buffer consistency: why devices need explicit writebacks (§1, §2.5).

A core fills a DMA buffer in its cache and rings a doorbell.  The DMA
engine reads *main memory*, not the CPU caches — so without a
CBO.CLEAN/FENCE of the buffer, the device reads stale bytes.  We model
the device as a direct reader of the simulated DRAM.

Run:  python examples/dma_consistency.py
"""

from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

BUFFER = 0x20000
BUFFER_WORDS = 16  # 128 B DMA descriptor + payload


def dma_engine_read(soc: Soc):
    """The device's view: physical memory only (no cache snooping)."""
    return [soc.persisted_value(BUFFER + i * 8) for i in range(BUFFER_WORDS)]


def fill_buffer() -> list:
    return [Instr.store(BUFFER + i * 8, 0xD0D0_0000 + i) for i in range(BUFFER_WORDS)]


def main() -> None:
    expected = [0xD0D0_0000 + i for i in range(BUFFER_WORDS)]

    # -- broken driver: no writeback before the doorbell ------------------
    soc = Soc()
    soc.run_programs([fill_buffer()])
    soc.drain()
    device_view = dma_engine_read(soc)
    stale = sum(1 for v, e in zip(device_view, expected) if v != e)
    print(f"without writebacks: device sees {stale}/{BUFFER_WORDS} stale words")

    # -- correct driver: CBO.CLEAN each buffer line, then FENCE -----------
    soc = Soc()
    program = fill_buffer()
    for offset in range(0, BUFFER_WORDS * 8, soc.params.line_bytes):
        program.append(Instr.clean(BUFFER + offset))
    program.append(Instr.fence())  # doorbell may only ring after this
    cycles = soc.run_programs([program])
    soc.drain()
    device_view = dma_engine_read(soc)
    assert device_view == expected
    print(f"with CBO.CLEAN + FENCE: device sees all {BUFFER_WORDS} words "
          f"({cycles} cycles)")

    # -- the clean (unlike a flush) keeps the buffer hot for the CPU ------
    soc.run_programs([[Instr.load(BUFFER)]])
    soc.drain()
    hits = soc.l1s[0].stats.get("load_hits")
    print(f"CPU re-reads its buffer afterwards: L1 hit ({hits} hit(s)) — "
          "CBO.CLEAN left the line resident")


if __name__ == "__main__":
    main()
