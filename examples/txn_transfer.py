#!/usr/bin/env python3
"""A two-key atomic transfer, crashed mid-transaction and post-commit.

``repro.store.txn`` adds all-or-nothing multi-key transactions to the
durable store: the write set buffers client-side, then commits as one
contiguous WAL run — ``OP_TXN`` records followed by one
``OP_TXN_COMMIT`` record, written last — so recovery replays the whole
transaction or none of it.  The classic motivating workload is a
balance transfer: debit one account, credit another, and never let a
crash surface the debit without the credit.

The script seeds two accounts, crashes with a transfer's records
persisted but its epoch unsealed (recovery rolls the transfer back
whole — both balances untouched), then re-runs the transfer, seals the
epoch, crashes again, and shows the transfer replaying whole.

Run:  python examples/txn_transfer.py
"""

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store import DurableStore, recover
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem

ALICE, BOB = 1, 2
OPENING = 1000
TRANSFER = 250


def balances(items) -> str:
    return f"alice={items.get(ALICE)} bob={items.get(BOB)}"


def main() -> None:
    system = TimingSystem(TimingParams(num_threads=1, skip_it=True))
    heap = SimHeap()
    view = PMemView(
        system.threads[0], make_policy("none"), make_optimizer("skipit", heap)
    )
    store = DurableStore(heap, view, log_capacity=64, batch_size=8)

    store.put(ALICE, OPENING)
    store.put(BOB, OPENING)
    store.sync()
    print(f"opening balances        : {balances(store.memtable)}")

    # -- transfer, crash before the epoch seals ---------------------------
    txn = store.begin()
    funds = txn.get(ALICE)
    txn.put(ALICE, funds - TRANSFER)
    txn.put(BOB, txn.get(BOB) + TRANSFER)
    ticket = txn.commit()
    print(f"transfer committed      : lsn run {ticket.first_lsn}..{ticket.lsn}"
          f" ({ticket.records} records), acked={ticket.acked}")
    system.persist_all()  # the run reaches NVMM; the epoch marker never does
    system.crash(at=None)
    state = recover(persisted_reader(system.persisted_image()), store.layout)
    print("\n*** CRASH before the epoch seal ***\n")
    print(f"recovered balances      : {balances(state.items)}")
    print(f"replay stopped because  : {state.stop_reason}")
    assert state.items[ALICE] == OPENING and state.items[BOB] == OPENING, (
        "a partial transfer leaked through recovery!"
    )
    total = state.items[ALICE] + state.items[BOB]
    assert total == 2 * OPENING, f"money went missing: {total}"
    print("rolled back whole: no debit without the credit, no money lost")

    # -- same transfer, sealed, crash after --------------------------------
    store2 = DurableStore(heap, view, batch_size=8, layout=store.layout)
    store2.adopt(state)
    txn = store2.begin()
    txn.put(ALICE, txn.get(ALICE) - TRANSFER)
    txn.put(BOB, txn.get(BOB) + TRANSFER)
    ticket = txn.commit()
    store2.sync()
    assert ticket.acked, "sync must make the transaction durable"
    system.crash(at=None)
    state2 = recover(persisted_reader(system.persisted_image()), store2.layout)
    print("\n*** CRASH after the transaction acked ***\n")
    print(f"recovered balances      : {balances(state2.items)}")
    print(f"transactions replayed   : {state2.replayed_txns}")
    assert state2.items[ALICE] == OPENING - TRANSFER
    assert state2.items[BOB] == OPENING + TRANSFER
    assert state2.replayed_txns == 1
    print("replayed whole: the acked transfer survives the crash intact")


if __name__ == "__main__":
    main()
