#!/usr/bin/env python3
"""Closing a cache timing channel with explicit cache control (§1, §8).

The paper notes that explicit cache control can "help mitigate some
microarchitectural timing-channel attacks by partitioning on-core
resources".  This example demonstrates a flush+reload-style leak on the
cycle model and then closes it — and surfaces a subtle interaction with
Skip It along the way:

1. a *victim* touches one of two secret-dependent lines;
2. an *attacker* sharing the cache times accesses to both lines — the
   faster one reveals the secret bit;
3. a domain switch that uses ``CBO.FLUSH`` looks like a fix, **but Skip
   It drops the flush of a persisted resident line without invalidating
   it (§6.1)** — the line stays hot and the channel stays open;
4. ``cbo.inval`` (or ``CBO.FLUSH`` with Skip It disabled) is never
   skipped, so it actually closes the channel.

Run:  python examples/security_flush.py
"""

from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINE_A = 0x40000  # touched when the secret bit is 0
LINE_B = 0x41000  # touched when the secret bit is 1
SECRETS = (0, 1, 1, 0, 1, 0)


def probe_latency(soc, address) -> int:
    before = soc.engine.cycle
    soc.run_programs([[Instr.load(address)]])
    return soc.engine.cycle - before


def victim_touch(soc, secret_bit: int) -> None:
    target = LINE_B if secret_bit else LINE_A
    soc.run_programs([[Instr.load(target)]])
    soc.drain()


def attack(soc) -> int:
    latency_a = probe_latency(soc, LINE_A)
    latency_b = probe_latency(soc, LINE_B)
    return 1 if latency_b < latency_a else 0


def run_scenario(label, domain_switch) -> None:
    correct = 0
    for secret in SECRETS:
        soc = Soc()
        victim_touch(soc, secret)
        if domain_switch is not None:
            soc.run_programs([domain_switch])
            soc.drain()
        correct += attack(soc) == secret
    print(f"{label:<55s} attacker accuracy {correct}/{len(SECRETS)}")


def main() -> None:
    run_scenario("no mitigation:", None)
    # CBO.FLUSH on a clean, persisted, resident line is DROPPED by Skip It
    # (§6.1: "the writeback request is dropped"), so the victim's line
    # stays cached and the attacker still sees the timing difference.
    run_scenario(
        "CBO.FLUSH domain switch (Skip It drops it!):",
        [Instr.flush(LINE_A), Instr.flush(LINE_B), Instr.fence()],
    )
    # cbo.inval is architecturally required to invalidate and is never
    # subject to the Skip It filter: the channel closes.
    run_scenario(
        "cbo.inval domain switch (never skipped):",
        [Instr.inval(LINE_A), Instr.inval(LINE_B), Instr.fence()],
    )
    print(
        "\nlesson: redundant-writeback filters and security flushing have\n"
        "conflicting goals — security-motivated invalidations must use an\n"
        "instruction the filter cannot elide (cbo.inval here)."
    )


if __name__ == "__main__":
    main()
