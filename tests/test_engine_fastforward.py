"""Event-horizon fast-forward: neutrality and exception-type contracts.

Fast-forward must be invisible: a run with it enabled returns the same
cycle counts, the same statistics, and the same architectural results as
a stepped run — it only skips cycles that were provably no-ops.  These
tests run the same multi-core workloads both ways and diff everything.
They also pin down the exception taxonomy: a ``max_cycles`` expiry is a
:class:`SimulationTimeout` (a budget problem), the watchdog and the
"no pending event anywhere" case are :class:`SimulationDeadlock` (a
model problem), and the former subclasses the latter for compatibility.
"""

import pytest

from repro.sim.config import SoCParams
from repro.sim.engine import Engine, SimulationDeadlock, SimulationTimeout
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc


def _mixed_programs(threads: int):
    """Stores, loads, cleans, flushes and fences across disjoint regions."""
    programs = []
    for t in range(threads):
        base = 0x10000 + t * 0x4000
        prog = []
        for i in range(6):
            prog.append(Instr.store(base + i * 64, i + 1))
        for i in range(0, 6, 2):
            prog.append(Instr.clean(base + i * 64))
        for i in range(1, 6, 2):
            prog.append(Instr.flush(base + i * 64))
        prog.append(Instr.fence())
        for i in range(6):
            prog.append(Instr.load(base + i * 64))
        programs.append(prog)
    return programs


def _run(fast_forward: bool, threads: int):
    soc = Soc(SoCParams().with_cores(threads))
    soc.engine.fast_forward = fast_forward
    cycles = soc.run_programs(_mixed_programs(threads))
    soc.drain()
    stats = soc.stats_summary()
    for i, core in enumerate(soc.cores):
        stats[f"core_{i}"] = core.stats.as_dict()
    loads = [
        [core.load_result(len(core.slots) - 6 + i) for i in range(6)]
        for core in soc.cores
    ]
    return cycles, stats, loads, soc.engine.cycle


class TestFastForwardNeutrality:
    @pytest.mark.parametrize("threads", (1, 2, 4))
    def test_cycles_stats_and_values_identical(self, threads):
        ff = _run(fast_forward=True, threads=threads)
        stepped = _run(fast_forward=False, threads=threads)
        assert ff[0] == stepped[0], "cycle counts diverged"
        assert ff[1] == stepped[1], "stats diverged"
        assert ff[2] == stepped[2], "load results diverged"
        assert ff[3] == stepped[3], "final engine cycle diverged"

    def test_fast_forward_skips_idle_stretches(self):
        """The hooks must actually jump (else the feature is dead code)."""
        soc = Soc(SoCParams().with_cores(1))
        observed = []
        original = Engine.step

        def recording_step(engine, cycles=1):
            observed.append(engine.cycle)
            original(engine, cycles)

        Engine.step = recording_step
        try:
            soc.run_programs(_mixed_programs(1))
        finally:
            Engine.step = original
        jumps = [b - a for a, b in zip(observed, observed[1:]) if b - a > 1]
        assert jumps, "no cycle was ever skipped on a DRAM-bound workload"


class _IdleComponent:
    def tick(self, cycle):
        pass

    def next_event_cycle(self, cycle):
        return None


class _HookLess:
    def tick(self, cycle):
        pass


class TestExceptionTaxonomy:
    def test_max_cycles_raises_timeout_subclassing_deadlock(self):
        engine = Engine()
        engine.register(_IdleComponent())
        with pytest.raises(SimulationTimeout) as excinfo:
            engine.run_until(lambda: False, max_cycles=40, fast_forward=False)
        assert isinstance(excinfo.value, SimulationDeadlock)
        assert "40 cycles" in str(excinfo.value)
        assert "deadlock" not in str(excinfo.value).split("---")[0]

    def test_timeout_fires_on_same_cycle_with_fast_forward(self):
        stepped = Engine()
        stepped.register(_IdleComponent())
        with pytest.raises(SimulationTimeout):
            stepped.run_until(lambda: False, max_cycles=37, fast_forward=False)
        jumped = Engine()
        jumped.register(_IdleComponent())
        with pytest.raises(SimulationTimeout):
            jumped.run_until(lambda: False, max_cycles=37, fast_forward=True)
        assert jumped.cycle == stepped.cycle

    def test_watchdog_fires_on_same_cycle_with_fast_forward(self):
        def run(fast_forward):
            engine = Engine(watchdog_interval=50)
            engine.register(_IdleComponent())
            with pytest.raises(SimulationDeadlock) as excinfo:
                engine.run_until(lambda: False, fast_forward=fast_forward)
            assert not isinstance(excinfo.value, SimulationTimeout)
            return engine.cycle

        assert run(True) == run(False)

    def test_no_pending_event_is_deadlock_not_timeout(self):
        engine = Engine(watchdog_interval=0)
        engine.register(_IdleComponent())
        with pytest.raises(SimulationDeadlock) as excinfo:
            engine.run_until(lambda: False)
        assert not isinstance(excinfo.value, SimulationTimeout)
        assert "no component reports a pending event" in str(excinfo.value)

    def test_component_without_hook_disables_jumping(self):
        engine = Engine(watchdog_interval=0)
        engine.register(_HookLess())
        # without a horizon the engine must fall back to stepping and the
        # caller's budget, not claim a spurious deadlock
        with pytest.raises(SimulationTimeout):
            engine.run_until(lambda: False, max_cycles=25)
        assert engine.cycle == 25
