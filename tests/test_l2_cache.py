"""Tests for the inclusive L2: coherence, RootRelease handling (§5.5)."""

from repro.sim.config import CacheGeometry, SoCParams
from repro.tilelink.permissions import Perm
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINE = 0xC000


class TestAcquirePaths:
    def test_miss_fetches_from_dram(self):
        soc = Soc()
        soc.run_programs([[Instr.load(LINE)]])
        soc.drain()
        assert soc.l2.stats.get("dram_fetches") == 1
        assert soc.l2.line_dirty(LINE) is False

    def test_sole_reader_gets_exclusive(self):
        soc = Soc()
        soc.run_programs([[Instr.load(LINE)]])
        soc.drain()
        perm, _, _ = soc.l1s[0].line_state(LINE)
        assert perm is Perm.TRUNK  # E-state optimisation

    def test_second_reader_downgrades_owner(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 1)]])
        soc.drain()
        soc.run_programs([[], [Instr.load(LINE)]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE)[0] is Perm.BRANCH
        assert soc.l1s[1].line_state(LINE)[0] is Perm.BRANCH
        directory = soc.l2.directory_of(LINE)
        assert directory.sharers == {0, 1}
        assert directory.owner is None

    def test_writer_revokes_all_readers(self):
        soc = Soc()
        soc.run_programs([[Instr.load(LINE)], [Instr.load(LINE)]])
        soc.drain()
        soc.run_programs([[], [Instr.store(LINE, 3)]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE) is None
        assert soc.l1s[1].line_state(LINE)[0] is Perm.TRUNK
        assert soc.l2.directory_of(LINE).owner == 1

    def test_dirty_transfer_between_cores(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 77)]])
        soc.drain()
        soc.run_programs([[], [Instr.load(LINE)]])
        soc.drain()
        assert soc.cores[1].load_result(0) == 77
        assert soc.l2.line_dirty(LINE) is True  # merged but not yet in DRAM
        assert soc.persisted_value(LINE) == 0


class TestInclusiveEviction:
    def test_l2_eviction_revokes_l1_copies(self):
        params = SoCParams(
            l2=CacheGeometry(size_bytes=1024, ways=2),  # 8 sets x 2 ways
            num_cores=1,
        )
        soc = Soc(params)
        stride = params.l2.num_sets * 64
        addresses = [0x10000 + i * stride for i in range(4)]
        soc.run_programs([[Instr.store(a, i + 1) for i, a in enumerate(addresses)]])
        soc.drain()
        # at most 2 of the 4 same-set lines can be resident in L2
        resident = [a for a in addresses if a in soc.l2.lines]
        assert len(resident) <= 2
        # inclusivity: anything absent from L2 is absent from L1 too
        for a in addresses:
            if a not in soc.l2.lines:
                assert soc.l1s[0].line_state(a) is None
        # and every value survives to be read back
        soc.run_programs([[Instr.load(a) for a in addresses]])
        soc.drain()
        for i, a in enumerate(addresses):
            assert soc.cores[0].load_result(i) == i + 1


class TestRootRelease:
    def test_flush_writes_back_and_invalidates_l2(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 5), Instr.flush(LINE), Instr.fence()]])
        soc.drain()
        assert soc.persisted_value(LINE) == 5
        assert soc.l2.line_dirty(LINE) is None  # flush invalidated the L2 copy
        assert soc.l2.stats.get("root_writebacks") == 1

    def test_clean_writes_back_keeps_l2(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 6), Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        assert soc.persisted_value(LINE) == 6
        assert soc.l2.line_dirty(LINE) is False  # copy kept, now clean

    def test_redundant_root_release_skips_dram(self):
        """The LLC's trivial dirty-bit filter (§5.5)."""
        soc = Soc(SoCParams().with_skip_it(False))
        soc.run_programs(
            [[Instr.store(LINE, 7), Instr.clean(LINE), Instr.fence()]]
        )
        soc.drain()
        writes_before = soc.memory.writes
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        assert soc.memory.writes == writes_before
        assert soc.l2.stats.get("root_writebacks_skipped") >= 1

    def test_root_release_probes_other_owner(self):
        """§5.5: a RootRelease probes even when the requester lacks the line."""
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 9)]])  # core 0 owns dirty
        soc.drain()
        # core 1 flushes a line it does not hold
        soc.run_programs([[], [Instr.flush(LINE), Instr.fence()]])
        soc.drain()
        assert soc.persisted_value(LINE) == 9
        assert soc.l1s[0].line_state(LINE) is None  # revoked by the probe
        assert soc.l2.stats.get("root_probes") == 1

    def test_root_release_clean_downgrades_owner_only(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 11)]])
        soc.drain()
        soc.run_programs([[], [Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        assert soc.persisted_value(LINE) == 11
        # owner keeps a (clean) copy: clean is non-invalidating
        perm, dirty, _ = soc.l1s[0].line_state(LINE)
        assert perm is Perm.BRANCH and not dirty

    def test_root_release_to_absent_line_just_acks(self):
        soc = Soc()
        soc.run_programs([[Instr.flush(0xFF000), Instr.fence()]])
        soc.drain()
        assert soc.l2.stats.get("root_release_absent") == 1
        assert soc.memory.writes == 0


class TestGrantDataDirty:
    def test_grant_dirty_iff_l2_dirty(self):
        soc = Soc()
        # make L2 dirty for LINE via a cross-core transfer
        soc.run_programs([[Instr.store(LINE, 1)]])
        soc.drain()
        soc.run_programs([[], [Instr.load(LINE)]])
        soc.drain()
        assert soc.l2.stats.get("grants_dirty") >= 1
        # after a clean, grants revert to GrantData
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        dirty_grants = soc.l2.stats.get("grants_dirty")
        soc.run_programs([[Instr.load(LINE)]])
        soc.drain()
        assert soc.l2.stats.get("grants_dirty") == dirty_grants
