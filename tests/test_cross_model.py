"""Cross-validation: the cycle model and the timing model agree.

Both simulation levels implement the same architectural semantics (MESI +
skip bit + §4 writeback rules); running the same single-threaded program
on both must produce the same persisted memory image and the same
skip/issue decisions on redundant writebacks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.requests import MemOp
from repro.uarch.soc import Soc

LINES = [0x3000 + i * 64 for i in range(4)]


def instr_strategy():
    address = st.sampled_from(LINES)
    value = st.integers(min_value=1, max_value=2**31)
    return st.one_of(
        st.builds(Instr.store, address, value),
        st.builds(Instr.clean, address),
        st.builds(Instr.flush, address),
        st.just(Instr.fence()),
    )


def run_cycle_model(program):
    soc = Soc()
    soc.run_programs([program])
    soc.drain()
    return soc


def run_timing_model(program):
    system = TimingSystem(TimingParams(num_threads=1))
    thread = system.threads[0]
    for instr in program:
        if instr.op is MemOp.STORE:
            thread.store(instr.address, instr.data)
        elif instr.op is MemOp.CBO_CLEAN:
            thread.clean(instr.address)
        elif instr.op is MemOp.CBO_FLUSH:
            thread.flush(instr.address)
        elif instr.op is MemOp.FENCE:
            thread.fence()
    return system


class TestPersistedImageAgreement:
    @settings(max_examples=30, deadline=None)
    @given(program=st.lists(instr_strategy(), min_size=1, max_size=20))
    def test_fenced_state_matches(self, program):
        """After a trailing fence, both models persist identical words."""
        program = program + [Instr.fence()]
        soc = run_cycle_model(program)
        system = run_timing_model(program)
        touched = {
            instr.address for instr in program if instr.op is MemOp.STORE
        }
        for address in touched:
            assert soc.persisted_value(address) == system.persisted.get(
                address, 0
            ), f"models disagree at {address:#x}"

    def test_redundant_clean_skipped_in_both(self):
        program = [
            Instr.store(LINES[0], 5),
            Instr.clean(LINES[0]),
            Instr.fence(),
            Instr.clean(LINES[0]),
            Instr.fence(),
        ]
        soc = run_cycle_model(program)
        system = run_timing_model(program)
        assert soc.l1s[0].flush_unit.stats.get("skipped") == 1
        assert system.stats.get("cbo_skipped") == 1

    def test_flush_invalidates_in_both(self):
        program = [Instr.store(LINES[0], 5), Instr.flush(LINES[0]), Instr.fence()]
        soc = run_cycle_model(program)
        system = run_timing_model(program)
        assert soc.l1s[0].line_state(LINES[0]) is None
        assert system.l1s[0].get(LINES[0]) is None
        assert soc.l2.line_dirty(LINES[0]) is None
        assert system.l2.get(LINES[0]) is None
