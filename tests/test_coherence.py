"""Unit tests for MESI mapping and the full-map directory."""

import pytest

from repro.coherence.directory import DirectoryEntry
from repro.coherence.mesi import MesiState, mesi_state
from repro.tilelink.permissions import Perm


class TestMesi:
    def test_modified(self):
        assert mesi_state(Perm.TRUNK, dirty=True) is MesiState.MODIFIED

    def test_exclusive(self):
        assert mesi_state(Perm.TRUNK, dirty=False) is MesiState.EXCLUSIVE

    def test_shared(self):
        assert mesi_state(Perm.BRANCH, dirty=False) is MesiState.SHARED

    def test_invalid(self):
        assert mesi_state(Perm.NONE, dirty=False) is MesiState.INVALID

    def test_dirty_shared_is_illegal(self):
        with pytest.raises(ValueError):
            mesi_state(Perm.BRANCH, dirty=True)


class TestDirectoryEntry:
    def test_grant_branch_to_many(self):
        d = DirectoryEntry()
        d.grant(0, Perm.BRANCH)
        d.grant(1, Perm.BRANCH)
        assert d.sharers == {0, 1}
        assert d.owner is None

    def test_grant_trunk_records_owner(self):
        d = DirectoryEntry()
        d.grant(2, Perm.TRUNK)
        assert d.owner == 2
        assert d.perm_of(2) is Perm.TRUNK

    def test_single_writer_enforced(self):
        d = DirectoryEntry()
        d.grant(0, Perm.BRANCH)
        with pytest.raises(ValueError):
            d.grant(1, Perm.TRUNK)

    def test_trunk_upgrade_of_sole_sharer_allowed(self):
        d = DirectoryEntry()
        d.grant(0, Perm.BRANCH)
        d.grant(0, Perm.TRUNK)
        assert d.owner == 0

    def test_grant_none_rejected(self):
        with pytest.raises(ValueError):
            DirectoryEntry().grant(0, Perm.NONE)

    def test_downgrade_to_none_removes(self):
        d = DirectoryEntry()
        d.grant(0, Perm.TRUNK)
        d.downgrade(0, Perm.NONE)
        assert d.idle
        assert d.perm_of(0) is Perm.NONE

    def test_downgrade_to_branch_clears_owner(self):
        d = DirectoryEntry()
        d.grant(0, Perm.TRUNK)
        d.downgrade(0, Perm.BRANCH)
        assert d.owner is None
        assert d.holds(0)
        assert d.perm_of(0) is Perm.BRANCH

    def test_downgrade_report_noop(self):
        d = DirectoryEntry()
        d.grant(0, Perm.TRUNK)
        d.downgrade(0, Perm.TRUNK)
        assert d.owner == 0

    def test_copy_is_independent(self):
        d = DirectoryEntry()
        d.grant(0, Perm.BRANCH)
        c = d.copy()
        c.grant(1, Perm.BRANCH)
        assert d.sharers == {0}
