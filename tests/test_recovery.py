"""Crash-recovery tests: durable state matches completed updates."""

import random

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import OPTIMIZER_NAMES, make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.recovery import CrashChecker, CrashReport
from repro.persist.structures import STRUCTURES
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def checker_for(structure_name, optimizer_name, policy_name):
    system = TimingSystem(
        TimingParams(num_threads=1, skip_it=optimizer_name == "skipit")
    )
    heap = SimHeap()
    optimizer = make_optimizer(optimizer_name, heap)
    if (
        STRUCTURES[structure_name].uses_pointer_tagging
        and not optimizer.supports_pointer_tagging_structures
    ):
        pytest.skip("combination excluded (pointer tagging)")
    policy = make_policy(policy_name)
    structure = STRUCTURES[structure_name](
        heap, field_stride=optimizer.field_stride
    )
    view = PMemView(system.threads[0], policy, optimizer)
    structure.initialize(view)
    return CrashChecker(system, structure, view)


def random_ops(seed, count=150, key_range=40):
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        r = rng.random()
        key = rng.randint(1, key_range)
        ops.append(
            ("insert" if r < 0.5 else "delete" if r < 0.8 else "contains", key)
        )
    return ops


class TestCrashReport:
    def test_consistent_when_equal(self):
        report = CrashReport(reference={1, 2}, recovered={1, 2})
        assert report.consistent

    def test_lost_keys_detected(self):
        report = CrashReport(reference={1, 2}, recovered={1})
        assert report.lost == {2} and not report.consistent

    def test_ghost_keys_detected(self):
        report = CrashReport(reference={1}, recovered={1, 9})
        assert report.ghosts == {9} and not report.consistent


@pytest.mark.parametrize("structure_name", sorted(STRUCTURES))
@pytest.mark.parametrize("optimizer_name", OPTIMIZER_NAMES)
class TestCrashConsistency:
    """Every filter preserves durable linearizability of updates."""

    @pytest.mark.parametrize("policy_name", ["automatic", "nvtraverse", "manual"])
    def test_recovered_equals_reference(
        self, structure_name, optimizer_name, policy_name
    ):
        checker = checker_for(structure_name, optimizer_name, policy_name)
        checker.apply(random_ops(seed=hash((structure_name, optimizer_name)) & 0xFFFF))
        report = checker.crash_and_check()
        assert report.consistent, (
            f"lost={sorted(report.lost)} ghosts={sorted(report.ghosts)}"
        )


class TestNonPersistentLoses:
    def test_none_policy_can_lose_updates(self):
        """Negative control: with no flushes, a crash may lose updates —
        the checker is not vacuously green."""
        checker = checker_for("list", "plain", "none")
        checker.apply([("insert", k) for k in range(1, 20)])
        report = checker.crash_and_check()
        assert report.lost  # unpersisted inserts vanished


class TestCrashMidstream:
    def test_repeated_crashes(self):
        checker = checker_for("hashtable", "skipit", "manual")
        for seed in range(3):
            checker.apply(random_ops(seed=seed, count=60))
            report = checker.crash_and_check()
            assert report.consistent
            # after a crash the structure keeps working on recovered state
            assert checker.apply([("contains", 1)]) is not None
