"""Unit tests for the bounded hardware queue."""

import pytest

from repro.sim.queue import BoundedQueue, QueueFullError


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(capacity=3)
        for item in (1, 2, 3):
            q.push(item)
        assert [q.pop(), q.pop(), q.pop()] == [1, 2, 3]

    def test_capacity_enforced(self):
        q = BoundedQueue(capacity=2)
        q.push("a")
        q.push("b")
        assert q.full
        with pytest.raises(QueueFullError):
            q.push("c")

    def test_can_push_counts(self):
        q = BoundedQueue(capacity=3)
        q.push(1)
        assert q.can_push(2)
        assert not q.can_push(3)

    def test_unbounded(self):
        q = BoundedQueue()
        for i in range(10_000):
            q.push(i)
        assert not q.full
        assert len(q) == 10_000

    def test_peek_does_not_remove(self):
        q = BoundedQueue(capacity=2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_remove_specific_item(self):
        q = BoundedQueue(capacity=3)
        q.push(1)
        q.push(2)
        q.push(3)
        q.remove(2)
        assert list(q) == [1, 3]

    def test_empty_and_bool(self):
        q = BoundedQueue(capacity=1)
        assert q.empty
        assert not q
        q.push(0)
        assert not q.empty
        assert q

    def test_clear(self):
        q = BoundedQueue(capacity=2)
        q.push(1)
        q.clear()
        assert q.empty

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=0)
