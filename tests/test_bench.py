"""Tests for the figure-regeneration harness and its CLI."""

import pytest

from repro.bench import FIGURES
from repro.bench.cli import main
from repro.bench.format import format_table, human_size
from repro.bench.micro import MicroRow, rows_by_series, run_fig09, run_fig13
from repro.bench.structures import ThroughputRow, rows_by_structure, run_fig14


class TestFormat:
    def test_human_size(self):
        assert human_size(64) == "64B"
        assert human_size(4096) == "4KiB"
        assert human_size(32 * 1024) == "32KiB"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), (10, None)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "n/a" in lines[3]

    def test_float_formatting(self):
        out = format_table(["x"], [(1234.5678,)])
        assert "1234.6" in out


class TestFigureRegistry:
    def test_all_figures_present(self):
        assert sorted(FIGURES) == [
            9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21,
        ]


class TestMicroRunners:
    def test_fig09_rows_and_scaling(self):
        rows = run_fig09(quick=True, sizes=[64, 2048], threads=[1, 2], repeats=1)
        series = rows_by_series(rows)
        assert "1-thread flush" in series and "2-thread flush" in series
        one = {r.size_bytes: r.median_cycles for r in series["1-thread flush"]}
        two = {r.size_bytes: r.median_cycles for r in series["2-thread flush"]}
        assert one[2048] > one[64]  # grows with size
        assert two[2048] < one[2048]  # threads help

    def test_fig13_skip_it_wins(self):
        rows = run_fig13(quick=True, sizes=[256], threads=[1], repeats=1)
        by = {r.series: r.median_cycles for r in rows}
        assert by["1-thread Skip It"] < by["1-thread naive"]


class TestStructureRunners:
    def test_fig14_grid_contains_baseline_and_na(self):
        rows = run_fig14(
            quick=True,
            structures=["bst"],
            policies=["manual"],
            optimizers=["plain", "link-and-persist", "skipit"],
            duration=15_000,
        )
        grouped = rows_by_structure(rows)
        assert set(grouped) == {"bst"}
        lnp = next(r for r in rows if r.optimizer == "link-and-persist")
        assert lnp.throughput_mops is None  # BST x L&P excluded, as in §7.4
        baseline = next(r for r in rows if r.policy == "none")
        persistent = [
            r.throughput_mops
            for r in rows
            if r.policy == "manual" and r.throughput_mops is not None
        ]
        assert all(baseline.throughput_mops >= t for t in persistent)


class TestCli:
    def test_quick_single_figure(self, capsys):
        assert main(["--fig", "13", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "Skip It" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--fig", "99"])
