"""Shape tests for the commercial-CPU writeback latency models (§7.3)."""

import pytest

from repro.xarch.models import (
    amd_epyc_7763,
    graviton3,
    intel_xeon_6238t,
    platform_models,
)

KIB = 1024


class TestIntel:
    def test_clflush_serializes(self):
        """Intel clflush latency explodes with size (Figure 11)."""
        intel = intel_xeon_6238t()
        small = intel.latency("clflush", 64)
        big = intel.latency("clflush", 32 * KIB)
        assert big / small > 100

    def test_clflushopt_pipelines(self):
        intel = intel_xeon_6238t()
        assert intel.latency("clflushopt", 32 * KIB) < intel.latency(
            "clflush", 32 * KIB
        ) / 10

    def test_clwb_cheapest_variant(self):
        intel = intel_xeon_6238t()
        for size in (64, 4 * KIB, 32 * KIB):
            assert intel.latency("clwb", size) <= intel.latency(
                "clflushopt", size
            )


class TestAmd:
    def test_clflush_equals_clflushopt(self):
        """§7.3: AMD's clflush and clflushopt perform nearly identically."""
        amd = amd_epyc_7763()
        for size in (64, KIB, 32 * KIB):
            a = amd.latency("clflush", size)
            b = amd.latency("clflushopt", size)
            assert a == pytest.approx(b, rel=0.01)


class TestGraviton:
    def test_sublinear_growth(self):
        g = graviton3()
        small = g.latency("dccivac", KIB)
        big = g.latency("dccivac", 32 * KIB)
        assert big / small < 32  # grows much slower than linearly

    def test_overtakes_intel_clflush_at_large_sizes(self):
        g = graviton3()
        intel = intel_xeon_6238t()
        assert g.latency("dccivac", 32 * KIB) < intel.latency(
            "clflush", 32 * KIB
        )


class TestGeneralShape:
    @pytest.mark.parametrize("platform", ["intel", "amd", "graviton3"])
    def test_monotone_in_size(self, platform):
        model = platform_models()[platform]
        for instruction in model.variants():
            latencies = [
                model.latency(instruction, s)
                for s in (64, 256, KIB, 4 * KIB, 16 * KIB, 32 * KIB)
            ]
            assert latencies == sorted(latencies)

    @pytest.mark.parametrize("platform", ["intel", "amd", "graviton3"])
    def test_threads_reduce_latency_for_large_sizes(self, platform):
        model = platform_models()[platform]
        for instruction in model.variants():
            one = model.latency(instruction, 32 * KIB, threads=1)
            eight = model.latency(instruction, 32 * KIB, threads=8)
            assert eight < one

    def test_sub_line_sizes_clamped(self):
        intel = intel_xeon_6238t()
        assert intel.latency("clwb", 1) == intel.latency("clwb", 64)

    def test_platform_registry(self):
        models = platform_models()
        assert set(models) == {"intel", "amd", "graviton3"}
        assert models["intel"].variants() == ["clflush", "clflushopt", "clwb"]
        assert models["graviton3"].variants() == ["dccivac", "dccvac"]
