"""Hypothesis property tests: structures vs a model set + crash safety."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.recovery import CrashChecker
from repro.persist.structures import STRUCTURES
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem

OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "contains"]),
        st.integers(min_value=1, max_value=25),
    ),
    min_size=1,
    max_size=60,
)


def build(structure_name, optimizer_name, policy_name):
    system = TimingSystem(
        TimingParams(num_threads=1, skip_it=optimizer_name == "skipit")
    )
    heap = SimHeap()
    optimizer = make_optimizer(optimizer_name, heap)
    policy = make_policy(policy_name)
    structure = STRUCTURES[structure_name](
        heap, field_stride=optimizer.field_stride
    )
    view = PMemView(system.threads[0], policy, optimizer)
    structure.initialize(view)
    return system, structure, view


@settings(max_examples=25, deadline=None)
@given(ops=OPS, structure_name=st.sampled_from(sorted(STRUCTURES)))
def test_matches_model_set(ops, structure_name):
    _, structure, view = build(structure_name, "plain", "manual")
    model = set()
    for op, key in ops:
        if op == "insert":
            assert structure.insert(view, key) == (key not in model)
            model.add(key)
        elif op == "delete":
            assert structure.delete(view, key) == (key in model)
            model.discard(key)
        else:
            assert structure.contains(view, key) == (key in model)
    for key in range(1, 26):
        assert structure.contains(view, key) == (key in model)


@settings(max_examples=20, deadline=None)
@given(
    ops=OPS,
    structure_name=st.sampled_from(sorted(STRUCTURES)),
    optimizer_name=st.sampled_from(["plain", "flit-adjacent", "skipit"]),
    policy_name=st.sampled_from(["automatic", "nvtraverse", "manual"]),
)
def test_crash_recovers_reference(ops, structure_name, optimizer_name, policy_name):
    system, structure, view = build(structure_name, optimizer_name, policy_name)
    checker = CrashChecker(system, structure, view)
    checker.apply(ops)
    report = checker.crash_and_check()
    assert report.consistent, (
        f"lost={sorted(report.lost)} ghosts={sorted(report.ghosts)}"
    )


@settings(max_examples=15, deadline=None)
@given(ops=OPS)
def test_link_and_persist_marks_never_leak(ops):
    """Reads through the L&P filter never expose the mark bit."""
    _, structure, view = build("list", "link-and-persist", "automatic")
    for op, key in ops:
        if op == "insert":
            structure.insert(view, key)
        elif op == "delete":
            structure.delete(view, key)
        else:
            structure.contains(view, key)
    for key in range(1, 26):
        # contains() goes through masked reads; keys must stay in range
        assert structure.contains(view, key) in (True, False)
