"""Tests for the optional victim L3 (the §7.4 deeper-hierarchy extension)."""

from repro.sim.config import CacheGeometry
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def mk(l3=True, l1_bytes=256, l2_bytes=512, l3_bytes=4096):
    return TimingSystem(
        TimingParams(
            num_threads=1,
            l1=CacheGeometry(size_bytes=l1_bytes, ways=2),
            l2=CacheGeometry(size_bytes=l2_bytes, ways=2),
            l3=CacheGeometry(size_bytes=l3_bytes, ways=4) if l3 else None,
        )
    )


class TestVictimL3:
    def test_l2_evictions_land_in_l3(self):
        system = mk()
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        for i in range(4):
            t.store(0x10000 + i * stride, i + 1)
        assert system.stats.get("l2_evict_to_l3") >= 1
        assert len(system.l3) >= 1

    def test_l3_hit_cheaper_than_memory(self):
        system = mk()
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        addresses = [0x10000 + i * stride for i in range(4)]
        for i, a in enumerate(addresses):
            t.store(a, i + 1)
        # re-read the oldest line: it was evicted L1->L2->L3
        victim = addresses[0]
        assert system.l2.get(victim) is None and victim in system.l3
        before = t.now
        assert t.load(victim) == 1
        assert t.now - before == system.params.l3_hit
        assert system.stats.get("l3_hits") == 1

    def test_exclusive_l3(self):
        """A line fetched back from L3 leaves the L3 (victim exclusivity)."""
        system = mk()
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        addresses = [0x10000 + i * stride for i in range(4)]
        for i, a in enumerate(addresses):
            t.store(a, i + 1)
        victim = addresses[0]
        t.load(victim)
        assert victim not in system.l3
        assert system.l2.get(victim) is not None

    def test_dirty_data_survives_three_level_journey(self):
        system = mk()
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        addresses = [0x10000 + i * stride for i in range(8)]
        for i, a in enumerate(addresses):
            t.store(a, i + 1)
        for i, a in enumerate(addresses):
            assert t.load(a) == i + 1

    def test_l3_eviction_persists_dirty(self):
        system = mk(l3_bytes=512)  # tiny L3: it spills too
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        for i in range(16):
            t.store(0x10000 + i * stride, i + 1)
        assert system.stats.get("l3_evict_writebacks") >= 1
        # spilled values are persisted
        assert any(v for v in system.persisted.values())

    def test_flush_reaches_line_dirty_only_in_l3(self):
        system = mk()
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        addresses = [0x10000 + i * stride for i in range(4)]
        for i, a in enumerate(addresses):
            t.store(a, i + 1)
        victim = addresses[0]
        assert victim in system.l3
        t.flush(victim)
        t.fence()
        assert system.persisted[victim] == 1
        assert victim not in system.l3  # flush invalidated the L3 copy too

    def test_writeback_latency_grows_with_depth(self):
        """§7.4: 'A deeper cache hierarchy could show greater improvements
        due to the increased latencies' — the flush path lengthens."""
        shallow = mk(l3=False)
        deep = mk(l3=True)
        for system in (shallow, deep):
            t = system.threads[0]
            t.store(0x40, 1)
            t.clean(0x40)
            t.fence()
        assert deep.threads[0].now > shallow.threads[0].now

    def test_skip_savings_grow_with_depth(self):
        """The redundant-writeback cost Skip It avoids is larger with L3."""

        def redundant_cost(l3):
            system = TimingSystem(
                TimingParams(
                    num_threads=1,
                    skip_it=False,
                    l3=CacheGeometry(size_bytes=64 * 1024, ways=8) if l3 else None,
                )
            )
            t = system.threads[0]
            t.store(0x40, 1)
            t.clean(0x40)
            t.fence()
            start = t.now
            for _ in range(10):
                t.clean(0x40)  # all redundant, none filtered
            t.fence()
            return t.now - start

        assert redundant_cost(l3=True) > redundant_cost(l3=False)

    def test_crash_drops_l3(self):
        system = mk()
        t = system.threads[0]
        stride = system.params.l2.num_sets * 64
        for i in range(4):
            t.store(0x10000 + i * stride, i + 1)
        system.crash()
        assert len(system.l3) == 0
