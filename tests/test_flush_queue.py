"""Unit tests for the flush queue and its invalidation hooks (§5.4)."""

import pytest

from repro.core.flush_queue import CboKind, FlushQueue, FlushRequest
from repro.tilelink.permissions import Cap, Perm


def make_request(address=0x1000, clean=False, hit=True, dirty=True, perm=Perm.TRUNK):
    return FlushRequest(
        address=address,
        kind=CboKind.CLEAN if clean else CboKind.FLUSH,
        is_hit=hit,
        is_dirty=dirty,
        way=0 if hit else -1,
        perm=perm if hit else Perm.NONE,
    )


class TestFlushRequest:
    def test_probe_ton_turns_into_miss_entry(self):
        req = make_request()
        req.apply_downgrade(Cap.toN)
        assert not req.is_hit and not req.is_dirty
        assert req.perm is Perm.NONE
        assert req.way == -1

    def test_probe_tob_clears_dirty_keeps_hit(self):
        req = make_request()
        req.apply_downgrade(Cap.toB)
        assert req.is_hit and not req.is_dirty
        assert req.perm is Perm.BRANCH

    def test_probe_tot_is_noop(self):
        req = make_request()
        req.apply_downgrade(Cap.toT)
        assert req.is_hit and req.is_dirty
        assert req.perm is Perm.TRUNK

    def test_eviction_equals_full_revoke(self):
        req = make_request()
        req.apply_eviction()
        assert not req.is_hit and req.perm is Perm.NONE


class TestFlushQueue:
    def test_fifo(self):
        q = FlushQueue(depth=4)
        a, b = make_request(0x40), make_request(0x80)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.peek() is b

    def test_depth_enforced(self):
        q = FlushQueue(depth=1)
        q.push(make_request())
        assert q.full
        with pytest.raises(RuntimeError):
            q.push(make_request())

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FlushQueue(depth=0)

    def test_entries_for_line(self):
        q = FlushQueue(depth=4)
        q.push(make_request(0x40))
        q.push(make_request(0x80))
        q.push(make_request(0x40, clean=True))
        assert len(q.entries_for(0x40)) == 2
        assert q.has_line(0x80)
        assert not q.has_line(0xC0)

    def test_probe_invalidate_touches_all_matches(self):
        q = FlushQueue(depth=4)
        q.push(make_request(0x40))
        q.push(make_request(0x40, clean=True))
        q.push(make_request(0x80))
        touched = q.probe_invalidate(0x40, Cap.toN)
        assert touched == 2
        assert all(not e.is_hit for e in q.entries_for(0x40))
        assert q.entries_for(0x80)[0].is_hit  # unrelated line untouched

    def test_evict_invalidate(self):
        q = FlushQueue(depth=2)
        q.push(make_request(0x40))
        assert q.evict_invalidate(0x40) == 1
        assert not q.peek().is_hit
