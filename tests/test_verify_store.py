"""Store crash sweep: the acceptance matrix plus oracle unit tests.

The headline guarantee of :mod:`repro.store`: a crash at every protocol
boundary — including the mid-writeback windows between an epoch's
cleans and its fence — recovers with every acknowledged commit present,
nothing beyond the last initiated epoch, and a state equal to the
journal prefix, for every optimizer x group-commit {1, 8, 64}.
"""

import pytest

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.store.layout import OP_COMMIT, OP_DELETE, OP_PUT
from repro.verify.store import (
    SharedStoreCrashSweep,
    StoreCrashSweep,
    StoreOracle,
    run_shared_store_sweep,
    run_store_sweep,
)


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("optimizer", OPTIMIZER_NAMES)
    @pytest.mark.parametrize("group_commit", [1, 8, 64])
    def test_sweep_is_green(self, optimizer, group_commit):
        report = StoreCrashSweep(optimizer, group_commit).run()
        assert report.ok, report.summary() + "".join(
            f"\n  {v}" for v in report.violations[:5]
        )
        assert report.crash_points > report.boundaries, (
            "mid-writeback windows were never enumerated"
        )

    def test_run_store_sweep_covers_the_grid(self):
        results = run_store_sweep(
            optimizers=("plain", "skipit"), group_commits=(1, 8), ops=24
        )
        assert [config for config, _ in results] == [
            "plain/gc=1",
            "plain/gc=8",
            "skipit/gc=1",
            "skipit/gc=8",
        ]
        assert all(report.ok for _, report in results)


class TestSharedAcceptanceMatrix:
    """ISSUE 5 acceptance: shared-log sweep green on the full grid."""

    @pytest.mark.parametrize("optimizer", OPTIMIZER_NAMES)
    @pytest.mark.parametrize("group_commit", [1, 8, 64])
    def test_sweep_is_green(self, optimizer, group_commit):
        report = SharedStoreCrashSweep(optimizer, group_commit).run()
        assert report.ok, report.summary() + "".join(
            f"\n  {v}" for v in report.violations[:5]
        )
        assert report.crash_points > report.boundaries, (
            "mid-writeback windows were never enumerated"
        )

    def test_run_shared_store_sweep_covers_the_grid(self):
        results = run_shared_store_sweep(
            optimizers=("plain", "skipit"),
            group_commits=(1, 8),
            threads=2,
            ops=24,
        )
        assert [config for config, _ in results] == [
            "shared/plain/gc=1/t=2",
            "shared/plain/gc=8/t=2",
            "shared/skipit/gc=1/t=2",
            "shared/skipit/gc=8/t=2",
        ]
        assert all(report.ok for _, report in results)


class TestStoreOracle:
    def _oracle(self):
        oracle = StoreOracle()
        oracle.observe(1, OP_PUT, 5, 50)
        oracle.observe(2, OP_PUT, 6, 60)
        oracle.observe(3, OP_COMMIT, 2, 0)
        oracle.observe(4, OP_DELETE, 5, 0)
        oracle.observe(5, OP_COMMIT, 1, 0)
        return oracle

    def test_reference_state_replays_the_prefix(self):
        oracle = self._oracle()
        assert oracle.reference_state(0) == {}
        assert oracle.reference_state(3) == {5: 50, 6: 60}
        assert oracle.reference_state(5) == {6: 60}

    def test_reference_state_includes_partial_epochs_by_lsn(self):
        # reference is keyed by applied_lsn, which recovery only ever
        # advances at markers — payload lsns just apply in order
        oracle = self._oracle()
        assert oracle.reference_state(1) == {5: 50}

    def test_check_flags_lost_ghost_and_corrupt(self):
        from repro.persist.structures.base import persisted_reader
        from repro.store.layout import StoreLayout

        layout = StoreLayout(
            superblock=0x1000,
            log_base=0x2000,
            log_capacity=8,
            field_stride=8,
            line_bytes=64,
            num_buckets=4,
        )
        oracle = self._oracle()
        empty = persisted_reader({})
        # nothing durable at all: applied=0 < acked=3 -> lost
        lost = oracle.check(
            empty, layout, acked_lsn=3, initiated_lsn=5, at="t"
        )
        assert [v.kind for v in lost] == ["lost"]
        # nothing acked or initiated: an empty image is legal
        assert (
            oracle.check(empty, layout, acked_lsn=0, initiated_lsn=0, at="t")
            == []
        )
