"""Unit and integration tests for the :mod:`repro.store` subsystem."""

import pytest

from repro.obs.attach import store_registry
from repro.persist.api import PMemView
from repro.persist.flushopt import OPTIMIZER_NAMES, make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store import (
    DurableStore,
    RecoveryError,
    StoreLayout,
    record_crc,
    recover,
)
from repro.store.layout import F_CRC, F_LSN, OP_PUT
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def mk_store(optimizer="skipit", **kwargs):
    params = TimingParams(num_threads=1, skip_it=(optimizer == "skipit"))
    system = TimingSystem(params)
    heap = SimHeap(params.line_bytes)
    view = PMemView(
        system.threads[0], make_policy("none"), make_optimizer(optimizer, heap)
    )
    kwargs.setdefault("log_capacity", 64)
    kwargs.setdefault("num_buckets", 16)
    store = DurableStore(heap, view, **kwargs)
    return system, heap, view, store


def recovered(system, store, at=None, **kwargs):
    return recover(
        persisted_reader(system.persisted_image(at)), store.layout, **kwargs
    )


class TestLayout:
    def test_slots_are_circular_and_packed(self):
        layout = StoreLayout(0x100, 0x2000, 8, 8, 64, 4)
        assert layout.slot_bytes == 40  # 5 fields x 8B, no line padding
        assert layout.slot_of(1) == 0
        assert layout.slot_of(8) == 7
        assert layout.slot_of(9) == 0  # wraps
        assert layout.slot_addr(1) == 0x2000 + 40
        assert layout.field_addr(0, F_CRC) == 0x2000 + 4 * 8

    def test_record_crc_is_never_zero(self):
        # an all-zero torn slot must not carry a valid CRC by accident
        assert record_crc(1, 1, 1, 1) != 0
        for lsn in range(1, 200):
            assert record_crc(lsn, OP_PUT, lsn, 0) != 0

    def test_stride_mismatch_rejected(self):
        system, heap, view, store = mk_store("plain")
        flit_view = PMemView(
            view.ctx, make_policy("none"), make_optimizer("flit-adjacent", heap)
        )
        with pytest.raises(ValueError, match="stride"):
            DurableStore(heap, flit_view, layout=store.layout)


class TestGroupCommit:
    def test_batch_size_triggers_commit(self):
        system, heap, view, store = mk_store(batch_size=4)
        tickets = [store.put(k, 10 + k) for k in range(1, 4)]
        assert not any(t.acked for t in tickets)
        last = store.put(4, 14)
        assert last.acked and all(t.acked for t in tickets)
        assert store.stats.get("store_commits") == 1
        assert store.stats.get("store_fences") == 1

    def test_sync_seals_a_partial_batch(self):
        system, heap, view, store = mk_store(batch_size=8)
        ticket = store.put(1, 11)
        assert not ticket.acked
        store.sync()
        assert ticket.acked
        assert store.acked_lsn == store.initiated_lsn

    def test_cycle_budget_triggers_commit(self):
        system, heap, view, store = mk_store(
            batch_size=50, cycle_budget=200
        )
        first = store.put(1, 11)
        while not first.acked:
            store.put(2, view.ctx.now + 100)  # values vary, budget runs out
        assert store.stats.get("store_commits") >= 1

    def test_cycle_budget_seals_partial_batch(self):
        system, heap, view, store = mk_store(
            batch_size=50, cycle_budget=10_000
        )
        first = store.put(1, 11)
        assert not first.acked
        view.ctx.now += 10_000  # budget expires with the batch nowhere near full
        second = store.put(2, 12)
        assert first.acked and second.acked
        assert store.stats.get("store_commits") == 1
        assert store.stats.get("store_fences") == 1
        assert store.batch_sizes.samples == [2]

    def test_cycle_budget_window_resets_after_seal(self):
        system, heap, view, store = mk_store(
            batch_size=50, cycle_budget=10_000
        )
        store.put(1, 11)
        view.ctx.now += 10_000
        store.put(2, 12)  # seals epoch 1 on budget expiry
        assert store.stats.get("store_commits") == 1
        third = store.put(3, 13)  # opens a fresh window
        fourth = store.put(4, 14)  # cheap ops: well inside the new budget
        assert not third.acked and not fourth.acked
        assert store.stats.get("store_commits") == 1
        view.ctx.now += 10_000
        fifth = store.put(5, 15)
        assert third.acked and fourth.acked and fifth.acked
        assert store.stats.get("store_commits") == 2

    def test_epoch_is_atomic_in_recovery(self):
        system, heap, view, store = mk_store(batch_size=4)
        store.put(1, 11)
        store.put(2, 12)  # batch open: no marker yet
        state = recovered(system, store)
        assert state.items == {}
        assert state.applied_lsn == 0
        store.sync()
        view.ctx.fence()
        state = recovered(system, store)
        assert state.items == {1: 11, 2: 12}

    def test_batch_must_fit_the_log(self):
        with pytest.raises(ValueError, match="fit"):
            mk_store(batch_size=64, log_capacity=32)

    def test_keys_and_values_must_be_positive(self):
        system, heap, view, store = mk_store()
        with pytest.raises(ValueError):
            store.put(0, 5)
        with pytest.raises(ValueError):
            store.put(5, 0)
        with pytest.raises(ValueError):
            store.delete(-1)


class TestCheckpointAndRecovery:
    def test_recovery_from_checkpoint_only(self):
        system, heap, view, store = mk_store(batch_size=2)
        for k in range(1, 9):
            store.put(k, 100 + k)
        store.checkpoint()
        state = recovered(system, store)
        assert state.items == {k: 100 + k for k in range(1, 9)}
        assert state.checkpoint_lsn == state.applied_lsn == store.acked_lsn
        assert state.replayed_records == 0

    def test_log_replay_on_top_of_checkpoint(self):
        system, heap, view, store = mk_store(batch_size=2)
        store.put(1, 11)
        store.put(2, 12)
        store.checkpoint()
        store.put(3, 13)
        store.delete(1)  # second epoch after the checkpoint
        state = recovered(system, store)
        assert state.items == {2: 12, 3: 13}
        assert state.replayed_epochs == 1

    def test_torn_tail_is_tolerated(self):
        system, heap, view, store = mk_store(batch_size=2)
        store.put(1, 11)
        store.put(2, 12)
        image = dict(system.persisted_image())
        # corrupt the CRC of the sealed epoch's first record
        addr = store.layout.field_addr(store.layout.slot_of(1), F_CRC)
        image[addr] = 12345
        state = recover(persisted_reader(image), store.layout)
        assert state.items == {} and state.stop_reason == "bad_crc"

    def test_bad_superblock_pointer_raises(self):
        system, heap, view, store = mk_store(batch_size=1)
        store.put(1, 11)
        store.checkpoint()
        image = dict(system.persisted_image())
        image[store.layout.superblock] = 0xDEAD000
        with pytest.raises(RecoveryError, match="magic"):
            recover(persisted_reader(image), store.layout)

    def test_wrap_pressure_forces_checkpoint(self):
        system, heap, view, store = mk_store(
            batch_size=4, log_capacity=16
        )
        for i in range(1, 60):
            store.put(i % 7 + 1, 1000 + i)
        store.sync()
        assert store.stats.get("store_checkpoints") >= 1
        state = recovered(system, store)
        assert state.items == store.memtable
        assert state.applied_lsn == store.acked_lsn

    def test_checkpoint_every_n_commits(self):
        system, heap, view, store = mk_store(
            batch_size=2, checkpoint_every=2
        )
        for i in range(1, 13):
            store.put(i, 50 + i)
        assert store.stats.get("store_checkpoints") == 3

    def test_replay_mutant_knob_resurfaces_stale_records(self):
        system, heap, view, store = mk_store(batch_size=4, log_capacity=16)
        for i in range(1, 60):
            store.put(i % 7 + 1, 1000 + i)
        store.sync()
        strict = recovered(system, store)
        trusting = recovered(system, store, check_lsn=False)
        # the wrapped log leaves CRC-valid stale slots; trusting replay
        # walks into them and diverges
        assert trusting.applied_lsn >= strict.applied_lsn
        assert strict.items == store.memtable

    def test_lsn_field_zeroed_slot_ends_replay(self):
        system, heap, view, store = mk_store(batch_size=1)
        store.put(1, 11)
        store.put(2, 12)
        image = dict(system.persisted_image())
        # lsn 3 is the second epoch's payload (batch_size=1 means
        # lsn 2 and 4 are COMMIT markers); zeroing it tears epoch 2
        addr = store.layout.field_addr(store.layout.slot_of(3), F_LSN)
        image[addr] = 0
        state = recover(persisted_reader(image), store.layout)
        assert state.items == {1: 11}
        assert state.stop_reason == "empty_slot"


class TestReopen:
    def test_adopt_then_second_crash_round_trips(self):
        system, heap, view, store = mk_store(batch_size=4, log_capacity=24)
        for i in range(1, 40):
            store.put(i % 9 + 1, 2000 + i)
        store.put(77, 7777)  # left pending: discarded by the crash
        system.crash(at=None)
        state = recovered(system, store)
        assert 77 not in state.items
        assert state.applied_lsn == store.acked_lsn

        reopened = DurableStore(
            heap, view, batch_size=4, layout=store.layout
        )
        reopened.adopt(state)
        assert reopened.memtable == state.items
        for i in range(1, 30):
            reopened.put(50 + i % 11, 3000 + i)
        reopened.sync()
        system.crash(at=None)
        second = recovered(system, reopened)
        assert second.items == reopened.memtable
        assert second.applied_lsn == reopened.acked_lsn

    def test_adopt_requires_fresh_instance(self):
        system, heap, view, store = mk_store(batch_size=1)
        store.put(1, 11)
        state = recovered(system, store)
        with pytest.raises(RuntimeError, match="fresh"):
            store.adopt(state)


class TestOptimizerMatrix:
    @pytest.mark.parametrize("optimizer", OPTIMIZER_NAMES)
    def test_round_trip_on_every_filter(self, optimizer):
        system, heap, view, store = mk_store(
            optimizer, batch_size=4, checkpoint_every=3
        )
        for i in range(1, 40):
            store.put(i % 10 + 1, 100 + i)
            if i % 7 == 0:
                store.delete(i % 5 + 1)
        store.sync()
        state = recovered(system, store)
        assert state.items == store.memtable
        assert state.applied_lsn == store.acked_lsn

    def test_skipit_filters_log_tail_cleans(self):
        plain_sys, _, _, plain_store = mk_store("plain", batch_size=8)
        skip_sys, _, _, skip_store = mk_store("skipit", batch_size=8)
        for s in (plain_store, skip_store):
            for i in range(1, 33):
                s.put(i % 6 + 1, 500 + i)
            s.sync()
        assert (
            skip_sys.stats.get("cbo_issued")
            < plain_sys.stats.get("cbo_issued") / 2
        )
        assert skip_sys.stats.get("cbo_skipped") > 0


class TestResetMeasurement:
    def test_counters_zeroed_durable_state_kept(self):
        system, heap, view, store = mk_store(batch_size=4)
        for i in range(1, 10):
            store.put(i, 30 + i)
        store.sync()
        memtable = dict(store.memtable)
        acked = store.acked_lsn
        store.reset_measurement()
        assert store.stats.as_dict() == {}
        assert store.batch_sizes.count == 0
        assert store.wal.records_appended == 0
        assert view.flush_requests == 0
        assert view.ctx.now == 0 and not view.ctx.outstanding
        assert store.memtable == memtable and store.acked_lsn == acked
        # the store still works after the reset
        store.put(90, 900)
        store.sync()
        assert store.stats.get("store_commits") == 1


class TestObservability:
    def test_store_registry_snapshot(self):
        system, heap, view, store = mk_store(batch_size=4)
        registry = store_registry(store)
        for i in range(1, 10):
            store.put(i, 30 + i)
        store.sync()
        snap = registry.snapshot()
        assert snap["store"]["store_commits"] == 3
        assert snap["store"]["store_fences"] == 3
        assert snap["store"]["commit_batch"]["count"] == 3
        assert snap["store"]["wal"]["records_appended"] == 12  # 9 + 3 markers
        assert snap["store"]["acked_lsn"] == store.acked_lsn
        assert snap["store"]["memtable_size"] == 9
        assert snap["store"]["pending_ops"] == 0
