"""Unit tests for the simulated persistent heap."""

import pytest

from repro.persist.heap import NodeRef, SimHeap


class TestSimHeap:
    def test_alloc_line_aligned(self):
        heap = SimHeap()
        ref = heap.alloc(2)
        assert ref.base % 64 == 0

    def test_allocations_disjoint(self):
        heap = SimHeap()
        a = heap.alloc(8)
        b = heap.alloc(8)
        assert b.base >= a.base + 64

    def test_field_addresses(self):
        heap = SimHeap()
        ref = heap.alloc(3, stride=8)
        assert ref.field(0) == ref.base
        assert ref.field(2) == ref.base + 16

    def test_wide_stride_doubles_footprint(self):
        heap = SimHeap()
        narrow = heap.alloc(8, stride=8)  # 64B -> 1 line
        wide = heap.alloc(8, stride=16)  # 128B -> 2 lines
        assert wide.field(7) - wide.base == 112

    def test_field_bounds_checked(self):
        ref = SimHeap().alloc(2)
        with pytest.raises(IndexError):
            ref.field(2)

    def test_region_alignment_and_separation(self):
        heap = SimHeap()
        heap.alloc(4)
        region = heap.alloc_region(4096)
        assert region % SimHeap.REGION_ALIGN == 0
        nxt = heap.alloc(2)
        assert nxt.base >= region + 4096

    def test_statistics(self):
        heap = SimHeap()
        heap.alloc(2)
        heap.alloc(2)
        assert heap.allocated_objects == 2
        assert heap.allocated_bytes == 128
