"""Integration tests: the observability layer attached to the simulators.

Covers span open/close pairing across every FSHR FSM path (including the
probe-interference abort of §5.4.1), registry snapshot shape over a SoC,
Chrome-trace export of a real run, deadlock diagnostics content, and the
regression guarantee that an attached-but-unsubscribed observer changes
no cycle counts.
"""

import pytest

from repro.core.flush_queue import CboKind
from repro.core.flush_unit import OfferResult
from repro.core.fshr import FshrState
from repro.obs import (
    Observability,
    acquire_bus,
    attach_timing,
    chrome_trace,
    detach_timing,
    release_bus,
    timing_registry,
)
from repro.obs.export import validate_chrome_trace
from repro.sim.config import SoCParams
from repro.sim.engine import SimulationDeadlock
from repro.sim.trace import TraceRecorder
from repro.tilelink.permissions import Cap
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINE = 0x9000


def cbo_spans(bus):
    return [s for s in bus.spans if s.category == "cbo"]


def states_of(span):
    return [segment[0] for segment in span.states]


class TestCboSpanPaths:
    """One span per CBO.X, walking the documented FSHR FSM path."""

    def test_dirty_clean_full_path(self):
        soc = Soc()
        obs = Observability.attach(soc)
        soc.run_programs([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        spans = cbo_spans(obs.bus)
        assert len(spans) == 1
        span = spans[0]
        assert span.closed
        assert states_of(span) == [
            "queued",
            "meta_write",
            "fill_buffer",
            "root_release_data",
            "root_release_ack",
        ]
        assert sum(span.state_durations().values()) == span.duration
        assert span.args["kind"] == "clean" and span.args["dirty"] is True

    def test_clean_line_flush_skips_fill(self):
        # store+clean+fence persists; a later flush finds the line clean.
        # Without Skip It hardware the flush still runs (meta_write, no
        # fill_buffer, dataless release).
        soc = Soc(SoCParams().with_skip_it(False))
        obs = Observability.attach(soc)
        soc.run_programs(
            [
                [
                    Instr.store(LINE, 1),
                    Instr.clean(LINE),
                    Instr.fence(),
                    Instr.flush(LINE),
                    Instr.fence(),
                ]
            ]
        )
        flush_span = next(s for s in cbo_spans(obs.bus) if s.args["kind"] == "flush")
        assert states_of(flush_span) == [
            "queued",
            "meta_write",
            "root_release",
            "root_release_ack",
        ]

    def test_miss_path_goes_straight_to_release(self):
        soc = Soc()
        obs = Observability.attach(soc)
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        span = cbo_spans(obs.bus)[0]
        assert span.args["hit"] is False
        assert states_of(span) == ["queued", "root_release", "root_release_ack"]

    def test_inval_discards_without_fill(self):
        soc = Soc()
        obs = Observability.attach(soc)
        soc.run_programs([[Instr.store(LINE, 1), Instr.inval(LINE), Instr.fence()]])
        span = next(s for s in cbo_spans(obs.bus) if s.args["kind"] == "inval")
        # dirty hit + inval: metadata invalidated, buffer never filled
        assert states_of(span) == ["queued", "meta_write", "root_release", "root_release_ack"]

    def test_probe_interference_aborts_to_miss_path(self):
        """§5.4.1: a probe downgrades a queued entry before dequeue."""
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 1)]])  # make the line dirty
        obs = Observability.attach(soc)
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        result = fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        assert result is OfferResult.ACCEPTED
        # the probe lands while the request still waits in the queue
        fu.probe_invalidate(LINE, Cap.toN)
        soc.engine.run_until(lambda: fu.flush_counter == 0, max_cycles=10_000)
        span = cbo_spans(obs.bus)[-1]
        assert span.args["probe_downgraded"] == "toN"
        # downgraded to a miss entry: no meta_write, no data buffer
        assert "meta_write" not in states_of(span)
        assert "fill_buffer" not in states_of(span)
        assert "root_release" in states_of(span)

    def test_every_span_closes_and_pairs(self):
        soc = Soc()
        obs = Observability.attach(soc)
        programs = []
        for core in range(len(soc.cores)):
            base = 0x10000 + core * 0x4000
            program = []
            for i in range(6):
                program += [
                    Instr.store(base + i * 64, i + 1),
                    Instr.clean(base + i * 64),
                ]
            program += [Instr.fence(), Instr.flush(base), Instr.fence()]
            programs.append(program)
        soc.run_programs(programs)
        soc.drain()
        assert not obs.bus.open_spans  # nothing left dangling
        assert obs.bus.dropped == 0
        begins = sum(1 for e in obs.bus.events if e.name.endswith(":begin"))
        ends = sum(1 for e in obs.bus.events if e.name.endswith(":end"))
        assert begins == ends == len(obs.bus.spans)
        for span in obs.bus.spans:
            assert sum(span.state_durations().values()) == span.duration
        acks = sum(l1.flush_unit.stats.get("acks") for l1 in soc.l1s)
        assert len(cbo_spans(obs.bus)) == acks

    def test_skipped_cbo_emits_instant_not_span(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        obs = Observability.attach(soc)
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        assert cbo_spans(obs.bus) == []
        skipped = [e for e in obs.bus.events if e.name == "skipped"]
        assert len(skipped) == 1 and skipped[0].args["address"] == LINE


class TestRegistrySnapshot:
    def test_soc_snapshot_shape(self):
        soc = Soc()
        obs = Observability.attach(soc)
        soc.run_programs([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        snapshot = obs.snapshot()
        fu = snapshot["soc"]["core0"]["l1"]["flush_unit"]
        assert fu["enqueued"] == 1 and fu["acks"] == 1
        assert fu["queue_occupancy"] == 0 and fu["fshrs_busy"] == 0
        assert fu["flush_counter"] == 0
        assert snapshot["soc"]["core0"]["l1"]["mshrs_busy"] == 0
        assert snapshot["soc"]["engine"]["cycle"] == soc.engine.cycle
        assert "l2" in snapshot["soc"] and "dram" in snapshot["soc"]
        # per-state latency summaries ride along under obs.latency
        latency = snapshot["obs"]["latency"]["cbo"]
        assert latency["total"]["count"] == 1
        assert latency["queued"]["count"] == 1

    def test_timing_registry_snapshot(self):
        system = TimingSystem()
        ctx = system.threads[0]
        ctx.store(0x40, 1)
        ctx.clean(0x40)
        ctx.fence()
        snapshot = timing_registry(system).snapshot()
        assert snapshot["timing"]["system"]["cbo_issued"] == 1
        thread = snapshot["timing"]["threads"]["t0"]
        assert thread["now"] == ctx.now and thread["outstanding_writebacks"] == 0


class TestChromeExportOfRun:
    def test_quickstart_run_produces_valid_trace(self):
        soc = Soc()
        obs = Observability.attach(soc)
        soc.run_programs(
            [[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]]
        )
        soc.drain()
        trace = chrome_trace(obs.bus.events, obs.bus.spans)
        assert validate_chrome_trace(trace) == []
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # one top-level slice per completed CBO.X...
        cbo_slices = [s for s in slices if s["name"] == "cbo.clean"]
        assert len(cbo_slices) == len(cbo_spans(obs.bus))
        # ...whose per-state slices sum to its duration
        for top in cbo_slices:
            key = top["args"]["key"]
            segments = [
                s
                for s in slices
                if s["name"].startswith("cbo.clean.")
                and s["args"].get("key") == key
            ]
            assert sum(s["dur"] for s in segments) == top["dur"]


class TestDeadlockDiagnostics:
    def _wedge(self, soc):
        """Fake a never-acked FSHR so a fence can never commit."""
        fu = soc.l1s[0].flush_unit
        from repro.core.flush_queue import FlushRequest

        fshr = fu.fshrs[0]
        fshr.request = FlushRequest(
            address=LINE, kind=CboKind.CLEAN, is_hit=False, is_dirty=False
        )
        fshr.state = FshrState.ROOT_RELEASE_ACK
        fu.flush_counter += 1
        return fu

    def test_forced_deadlock_report_contents(self):
        soc = Soc()
        soc.engine.watchdog_interval = 300
        self._wedge(soc)
        with pytest.raises(SimulationDeadlock) as excinfo:
            soc.run_programs([[Instr.fence()]])
        report = excinfo.value.report
        core0 = report["soc"]["core0"]
        assert core0["flush_counter"] == 1
        assert core0["flush_queue"]["occupancy"] == 0
        assert core0["fshrs"] == [
            {"index": 0, "state": "root_release_ack", "address": hex(LINE)}
        ]
        assert core0["mshrs"] == []
        assert "list_buffer_occupancy" in report["soc"]["l2"]
        assert "--- deadlock diagnostics ---" in str(excinfo.value)

    def test_report_carries_event_tail_when_observed(self):
        soc = Soc()
        soc.engine.watchdog_interval = 300
        obs = Observability.attach(soc)
        self._wedge(soc)
        with pytest.raises(SimulationDeadlock) as excinfo:
            soc.run_programs([[Instr.store(LINE, 7), Instr.fence()]])
        report = excinfo.value.report
        assert report["last_events"]  # the trailing bus events rode along
        assert any("cycle" in e for e in report["last_events"])
        obs.detach()

    def test_unobserved_report_has_no_event_tail(self):
        soc = Soc()
        soc.engine.watchdog_interval = 300
        self._wedge(soc)
        with pytest.raises(SimulationDeadlock) as excinfo:
            soc.run_programs([[Instr.fence()]])
        assert "last_events" not in excinfo.value.report

    def test_max_cycles_timeout_also_carries_report(self):
        soc = Soc()
        self._wedge(soc)
        with pytest.raises(SimulationDeadlock) as excinfo:
            soc.run_programs([[Instr.fence()]], max_cycles=100)
        assert excinfo.value.report["soc"]["core0"]["flush_counter"] == 1


def _regression_programs(num_cores):
    programs = []
    for core in range(num_cores):
        base = 0x20000 + core * 0x4000
        program = []
        for i in range(8):
            program += [Instr.store(base + i * 64, i + 1), Instr.clean(base + i * 64)]
        program += [Instr.fence()]
        # cross-core sharing to exercise probes while observed
        other = 0x20000 + ((core + 1) % num_cores) * 0x4000
        program += [Instr.load(other), Instr.store(base, 42), Instr.flush(base)]
        program += [Instr.fence()]
        programs.append(program)
    return programs


class TestObserverIsTimingNeutral:
    """Attaching a bus must not change a single cycle anywhere."""

    def test_soc_cycle_counts_unchanged(self):
        plain = Soc()
        cycles_plain = plain.run_programs(_regression_programs(len(plain.cores)))

        observed = Soc()
        obs = Observability.attach(observed)
        cycles_observed = observed.run_programs(
            _regression_programs(len(observed.cores))
        )
        assert cycles_observed == cycles_plain
        assert observed.stats_summary() == plain.stats_summary()
        assert len(obs.bus.spans) > 0  # the observer did actually record

    def test_detached_soc_is_unwired(self):
        soc = Soc()
        obs = Observability.attach(soc)
        obs.detach()
        assert soc.engine.obs is None
        assert all(l1.obs is None for l1 in soc.l1s)
        assert all(l1.flush_unit.obs is None for l1 in soc.l1s)
        assert soc.l2.obs is None
        soc.run_programs([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        assert len(obs.bus.spans) == 0  # nothing recorded after detach

    def test_refcounted_bus_shared_between_holders(self):
        soc = Soc()
        obs = Observability.attach(soc)
        trace = TraceRecorder.attach(soc)
        assert trace._bus is obs.bus  # one shared bus
        trace.detach()
        assert soc.engine.obs is obs.bus  # still held by the Observability
        obs.detach()
        assert soc.engine.obs is None

    def test_timing_model_unchanged_when_observed(self):
        def run(system):
            ctx = system.threads[0]
            for i in range(32):
                ctx.store(0x1000 + i * 64, i)
                ctx.clean(0x1000 + i * 64)
            ctx.fence()
            return ctx.now

        plain = TimingSystem()
        observed = TimingSystem()
        bus = attach_timing(observed)
        assert run(observed) == run(plain)
        assert observed.stats.as_dict() == plain.stats.as_dict()
        assert any(e.name == "cbo_issued" for e in bus.events)
        detach_timing(observed)


class TestTraceRecorderAdapter:
    def test_detach_restores_noop_hooks(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.load(LINE)]])
        recorded = len(trace.events)
        assert recorded > 0 and trace.attached
        trace.detach()
        assert not trace.attached
        assert soc.engine.obs is None
        soc.run_programs([[Instr.load(LINE + 0x40)]])
        assert len(trace.events) == recorded  # nothing new after detach
        trace.detach()  # idempotent

    def test_max_events_bound(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc, max_events=5)
        program = [Instr.store(0x3000 + i * 64, i) for i in range(10)]
        soc.run_programs([program])
        soc.drain()
        assert len(trace.events) == 5
        # the retained tail is the newest traffic
        assert trace.events[-1].cycle >= trace.events[0].cycle

    def test_coexists_with_observability(self):
        soc = Soc()
        obs = Observability.attach(soc)
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        assert trace.count(message_type="ProbeAck") >= 1  # the RootRelease
        assert len(cbo_spans(obs.bus)) == 1
        trace.detach()
        obs.detach()


class TestBusAcquireRelease:
    def test_acquire_release_cycle(self):
        soc = Soc()
        bus = acquire_bus(soc)
        assert bus.refs == 1 and soc.engine.obs is bus
        assert acquire_bus(soc) is bus and bus.refs == 2
        release_bus(soc)
        assert soc.engine.obs is bus
        release_bus(soc)
        assert soc.engine.obs is None

    def test_reattach_after_release_starts_clean(self):
        soc = Soc()
        acquire_bus(soc)
        soc.run_programs([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        release_bus(soc)
        bus2 = acquire_bus(soc)
        soc.run_programs([[Instr.clean(LINE + 0x40), Instr.fence()]])
        soc.drain()
        assert bus2.dropped == 0
        assert not bus2.open_spans
