"""The Skip It soundness theorem (§6.2), checked dynamically.

A skipped writeback is only sound when the line is *persisted*: its bytes
in main memory equal every cached copy.  We instrument the flush unit and
assert this at the exact moment of every skip, across randomized
two-core programs — the dynamic analogue of the paper's case analysis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flush_unit import FlushUnit, OfferResult
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINES = [0x2000 + i * 64 for i in range(4)]


def instr_strategy():
    address = st.sampled_from(LINES)
    value = st.integers(min_value=1, max_value=2**32)
    return st.one_of(
        st.builds(Instr.store, address, value),
        st.builds(Instr.load, address),
        st.builds(Instr.clean, address),
        st.builds(Instr.flush, address),
        st.just(Instr.fence()),
    )


def instrument(soc, skips):
    """Wrap every flush unit's offer() to verify skips are sound."""
    for l1 in soc.l1s:
        fu = l1.flush_unit
        original = fu.offer

        def checked(address, is_clean, hit, fu=fu, l1=l1, original=original):
            result = original(address, is_clean, hit)
            if result is OfferResult.SKIPPED:
                skips.append(address)
                memory_line = soc.memory.peek_line(address)
                # no dirty copy anywhere, and every cached copy equals memory
                for other in soc.l1s:
                    state = other.line_state(address)
                    if state is not None:
                        _, dirty, _ = state
                        assert not dirty, (
                            f"skip of {address:#x} while dirty in "
                            f"L1 {other.agent_id}"
                        )
                        way, entry = other.meta.lookup(address)
                        cached = other.data.read_line(
                            other.geometry.set_index(address), way
                        )
                        assert cached == memory_line, (
                            f"skip of {address:#x} while L1 "
                            f"{other.agent_id} differs from memory"
                        )
                l2_line = soc.l2.lines.get(address)
                if l2_line is not None:
                    assert not l2_line.dirty, (
                        f"skip of {address:#x} while dirty in L2"
                    )
                    assert l2_line.data == memory_line
            return result

        fu.offer = checked


class TestSkipSoundness:
    @settings(max_examples=25, deadline=None)
    @given(
        p0=st.lists(instr_strategy(), min_size=2, max_size=18),
        p1=st.lists(instr_strategy(), min_size=2, max_size=18),
    )
    def test_every_skip_is_sound(self, p0, p1):
        soc = Soc()
        skips = []
        instrument(soc, skips)
        soc.run_programs([p0, p1])
        soc.drain()
        # the assertion work happens inside the instrumented offer()

    def test_skips_actually_happen(self):
        """Sanity: the instrumentation sees real skips on a known pattern."""
        soc = Soc()
        skips = []
        instrument(soc, skips)
        line = LINES[0]
        soc.run_programs(
            [[
                Instr.store(line, 1),
                Instr.clean(line),
                Instr.fence(),
                Instr.clean(line),
                Instr.clean(line),
                Instr.fence(),
            ]]
        )
        soc.drain()
        assert len(skips) == 2

    def test_naive_config_never_skips(self):
        soc = Soc(Soc().params.with_skip_it(False))
        skips = []
        instrument(soc, skips)
        line = LINES[0]
        soc.run_programs(
            [[
                Instr.store(line, 1),
                Instr.clean(line),
                Instr.fence(),
                Instr.clean(line),
                Instr.fence(),
            ]]
        )
        soc.drain()
        assert skips == []
