"""Odds-and-ends coverage: core bookkeeping, sweep helpers, CLI paths."""

from repro.bench.micro import rows_by_series, MicroRow
from repro.bench.structures import rows_by_structure, ThroughputRow
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.workloads.sweep import sweep_series


class TestCoreBookkeeping:
    def test_finish_cycle_recorded(self):
        soc = Soc()
        soc.run_programs([[Instr.store(0x40, 1)]])
        assert soc.cores[0].finish_cycle is not None
        assert soc.cores[0].done

    def test_idle_core_is_done(self):
        soc = Soc()
        soc.run_programs([[Instr.store(0x40, 1)], []])
        assert soc.cores[1].done

    def test_stats_track_ops(self):
        soc = Soc()
        soc.run_programs(
            [[Instr.store(0x40, 1), Instr.load(0x40), Instr.clean(0x40),
              Instr.fence()]]
        )
        stats = soc.cores[0].stats
        assert stats.get("store") == 1
        assert stats.get("load") == 1
        assert stats.get("cbo_clean") == 1
        assert stats.get("fences") == 1

    def test_stats_summary_structure(self):
        soc = Soc()
        soc.run_programs([[Instr.store(0x40, 1)]])
        summary = soc.stats_summary()
        assert "l2" in summary
        assert "l1_0" in summary and "flush_unit_0" in summary


class TestSweepSeries:
    def test_series_keyed_by_size(self):
        series = sweep_series([64, 128], threads=1, repeats=1)
        assert sorted(series) == [64, 128]
        assert series[64].op == "flush"
        assert series[128].median >= series[64].median * 0.5


class TestRowGrouping:
    def test_rows_by_series(self):
        rows = [
            MicroRow(9, "a", 64, 1, 10.0),
            MicroRow(9, "b", 64, 1, 11.0),
            MicroRow(9, "a", 128, 1, 12.0),
        ]
        grouped = rows_by_series(rows)
        assert sorted(grouped) == ["a", "b"]
        assert len(grouped["a"]) == 2

    def test_rows_by_structure(self):
        rows = [
            ThroughputRow(14, "list", "manual", "plain", 5, 1.0),
            ThroughputRow(14, "bst", "manual", "plain", 5, 2.0),
            ThroughputRow(14, "list", "manual", "skipit", 5, 3.0),
        ]
        grouped = rows_by_structure(rows)
        assert sorted(grouped) == ["bst", "list"]
        assert len(grouped["list"]) == 2
