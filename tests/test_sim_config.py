"""Unit tests for the SoC configuration dataclasses."""

import pytest

from repro.sim.config import CacheGeometry, SoCParams


class TestCacheGeometry:
    def test_sonicboom_l1_shape(self):
        geometry = CacheGeometry(size_bytes=32 * 1024, ways=8)
        assert geometry.num_sets == 64
        assert geometry.num_lines == 512

    def test_index_and_tag_roundtrip(self):
        g = CacheGeometry(size_bytes=32 * 1024, ways=8)
        address = 0x1234_5678 & ~0x3F
        set_idx = g.set_index(address)
        tag = g.tag(address)
        assert (tag * g.num_sets + set_idx) * g.line_bytes == address

    def test_line_address_alignment(self):
        g = CacheGeometry(size_bytes=4096, ways=4)
        assert g.line_address(0x1001) == 0x1000
        assert g.line_address(0x1000) == 0x1000

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, ways=3)

    def test_same_set_different_tags(self):
        g = CacheGeometry(size_bytes=32 * 1024, ways=8)
        a = 0x0000
        b = a + g.num_sets * g.line_bytes
        assert g.set_index(a) == g.set_index(b)
        assert g.tag(a) != g.tag(b)


class TestSoCParams:
    def test_defaults_match_paper_platform(self):
        params = SoCParams()
        assert params.num_cores == 2
        assert params.l1.size_bytes == 32 * 1024
        assert params.l2.size_bytes == 512 * 1024
        assert params.flush_unit.num_fshrs == 8
        assert params.latencies.bus_bytes == 16
        assert params.skip_it

    def test_with_skip_it_copy(self):
        params = SoCParams()
        naive = params.with_skip_it(False)
        assert not naive.skip_it
        assert params.skip_it  # original untouched

    def test_with_cores(self):
        assert SoCParams().with_cores(8).num_cores == 8

    def test_line_bytes_shortcut(self):
        assert SoCParams().line_bytes == 64
