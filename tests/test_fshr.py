"""Unit tests for the FSHR state machine (Figure 7)."""

import pytest

from repro.core.flush_queue import CboKind, FlushRequest
from repro.core.fshr import Fshr, FshrState, release_shrink
from repro.tilelink.permissions import Perm, Shrink


def req(clean=False, hit=True, dirty=True, perm=Perm.TRUNK, kind=None):
    if kind is None:
        kind = CboKind.CLEAN if clean else CboKind.FLUSH
    return FlushRequest(
        address=0x1000,
        kind=kind,
        is_hit=hit,
        is_dirty=dirty,
        way=0 if hit else -1,
        perm=perm if hit else Perm.NONE,
    )


class TestExecutionPlans:
    """The paths of Figure 7, from invalid to root_release_ack."""

    def test_dirty_hit_goes_through_meta_write_and_fill(self):
        f = Fshr(0)
        f.accept(req(dirty=True), fill_cycles=1)
        assert f.state is FshrState.META_WRITE
        f.after_meta_write()
        assert f.state is FshrState.FILL_BUFFER
        assert f.fill_step(b"\x01" * 64)
        assert f.state is FshrState.ROOT_RELEASE_DATA
        assert f.buffer == b"\x01" * 64

    def test_clean_hit_flush_invalidates_without_data(self):
        f = Fshr(0)
        f.accept(req(clean=False, dirty=False), fill_cycles=1)
        assert f.state is FshrState.META_WRITE  # flush must still invalidate
        f.after_meta_write()
        assert f.state is FshrState.ROOT_RELEASE

    def test_clean_hit_cbo_clean_skips_meta_write(self):
        f = Fshr(0)
        f.accept(req(clean=True, dirty=False), fill_cycles=1)
        assert f.state is FshrState.ROOT_RELEASE

    def test_miss_goes_straight_to_release(self):
        f = Fshr(0)
        f.accept(req(hit=False, dirty=False), fill_cycles=1)
        assert f.state is FshrState.ROOT_RELEASE

    def test_narrow_data_array_takes_multiple_cycles(self):
        f = Fshr(0)
        f.accept(req(), fill_cycles=8)
        f.after_meta_write()
        for _ in range(7):
            assert not f.fill_step(b"\0" * 64)
        assert f.fill_step(b"\0" * 64)


class TestLifecycle:
    def test_busy_and_double_accept(self):
        f = Fshr(0)
        assert not f.busy
        f.accept(req(), fill_cycles=1)
        assert f.busy
        with pytest.raises(RuntimeError):
            f.accept(req(), fill_cycles=1)

    def test_flush_rdy_window(self):
        """holds_line_exclusive is low exactly until the ack wait (§5.4.1)."""
        f = Fshr(0)
        f.accept(req(dirty=False, clean=True), fill_cycles=1)
        assert f.holds_line_exclusive
        f.sent_release()
        assert f.awaiting_ack
        assert not f.holds_line_exclusive

    def test_complete_frees(self):
        f = Fshr(0)
        request = req()
        f.accept(request, fill_cycles=1)
        f.after_meta_write()
        f.fill_step(b"\0" * 64)
        f.sent_release()
        assert f.complete() is request
        assert not f.busy
        assert f.buffer is None

    def test_complete_in_wrong_state_rejected(self):
        f = Fshr(0)
        f.accept(req(), fill_cycles=1)
        with pytest.raises(RuntimeError):
            f.complete()

    def test_buffer_forwarding_flag(self):
        f = Fshr(0)
        f.accept(req(), fill_cycles=1)
        assert not f.buffer_filled
        f.after_meta_write()
        f.fill_step(b"\xab" * 64)
        assert f.buffer_filled


class TestReleaseShrink:
    """The shrink/report param the RootRelease carries (§5.1/§5.5)."""

    def test_flush_of_trunk(self):
        assert release_shrink(req(clean=False, perm=Perm.TRUNK)) is Shrink.TtoN

    def test_flush_of_branch(self):
        assert (
            release_shrink(req(clean=False, dirty=False, perm=Perm.BRANCH))
            is Shrink.BtoN
        )

    def test_clean_reports_trunk(self):
        assert release_shrink(req(clean=True, perm=Perm.TRUNK)) is Shrink.TtoT

    def test_clean_reports_branch(self):
        assert (
            release_shrink(req(clean=True, dirty=False, perm=Perm.BRANCH))
            is Shrink.BtoB
        )

    def test_miss_reports_nton(self):
        assert release_shrink(req(hit=False)) is Shrink.NtoN
