"""Unit tests for the redundant-writeback filters (§7.4)."""

import pytest

from repro.persist.flushopt import (
    FlitAdjacent,
    FlitHashTable,
    LinkAndPersist,
    Plain,
    SkipItHardware,
    _LNP_BIT,
    make_optimizer,
)
from repro.persist.heap import SimHeap
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def ctx(skip_it=False):
    return TimingSystem(TimingParams(num_threads=1, skip_it=skip_it)).threads[0]


class TestPlain:
    def test_always_issues(self):
        t = ctx()
        opt = Plain()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x40)
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 2


class TestSkipItHardware:
    def test_hardware_filters_second_flush(self):
        t = ctx(skip_it=True)
        opt = SkipItHardware()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x40)  # issued (dirty)
        # flush invalidated the line; re-read it (fills with skip set)
        assert opt.read(t, 0x40) == 1
        opt.flush(t, 0x40)  # dropped by the skip bit
        assert t.system.stats.get("cbo_issued") == 1
        assert t.system.stats.get("cbo_skipped") == 1

    def test_no_software_state(self):
        assert SkipItHardware().field_stride == 8


class TestFlitAdjacent:
    def test_counter_lives_next_to_word(self):
        opt = FlitAdjacent()
        assert opt._counter_of(0x40) == 0x48
        assert opt.field_stride == 16

    def test_filters_unwritten_word(self):
        t = ctx()
        opt = FlitAdjacent()
        opt.flush(t, 0x40)  # counter is 0: filtered
        assert t.system.stats.get("cbo_issued") == 0

    def test_issues_after_write_then_filters(self):
        t = ctx()
        opt = FlitAdjacent()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x40)
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 1

    def test_cas_sets_counter(self):
        t = ctx()
        opt = FlitAdjacent()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x40)
        assert opt.cas(t, 0x40, 1, 2)
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 2

    def test_declare_persisted_clears_counters(self):
        t = ctx()
        opt = FlitAdjacent()
        opt.write(t, 0x40, 1)
        t.system.persist_all()
        opt.declare_persisted(t.system)
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 0


class TestFlitHashTable:
    def test_counters_in_separate_region(self):
        heap = SimHeap()
        opt = FlitHashTable(heap, table_entries=64)
        counter = opt._counter_of(0x40)
        assert opt.table_base <= counter < opt.table_base + 64 * 8

    def test_collisions_are_conservative(self):
        """Aliased words share a counter: extra flushes, never missed ones."""
        heap = SimHeap()
        opt = FlitHashTable(heap, table_entries=1)  # everything aliases
        t = ctx()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x1000)  # different line, same (only) counter: issues
        assert t.system.stats.get("cbo_issued") == 1

    def test_filters_after_clear(self):
        heap = SimHeap()
        opt = FlitHashTable(heap, table_entries=64)
        t = ctx()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x40)
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            FlitHashTable(SimHeap(), table_entries=0)

    def test_describe_includes_size(self):
        assert "64" in FlitHashTable(SimHeap(), table_entries=64).describe()


class TestLinkAndPersist:
    def test_mark_roundtrip_invisible_to_reader(self):
        t = ctx()
        opt = LinkAndPersist()
        opt.write(t, 0x40, 123)
        assert opt.read(t, 0x40) == 123
        assert t.system.arch[0x40] & _LNP_BIT  # raw word carries the mark

    def test_flush_clears_mark_and_filters(self):
        t = ctx()
        opt = LinkAndPersist()
        opt.write(t, 0x40, 1)
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 1
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 1  # mark cleared

    def test_cas_through_marks(self):
        t = ctx()
        opt = LinkAndPersist()
        opt.write(t, 0x40, 5)
        assert opt.cas(t, 0x40, 5, 6)
        assert opt.read(t, 0x40) == 6
        assert not opt.cas(t, 0x40, 5, 7)

    def test_not_applicable_to_pointer_tagging(self):
        assert not LinkAndPersist.supports_pointer_tagging_structures

    def test_declare_persisted_strips_marks(self):
        t = ctx()
        opt = LinkAndPersist()
        opt.write(t, 0x40, 1)
        t.system.persist_all()
        opt.declare_persisted(t.system)
        assert t.system.arch[0x40] == 1
        opt.flush(t, 0x40)
        assert t.system.stats.get("cbo_issued") == 0


class TestFactory:
    def test_all_names(self):
        heap = SimHeap()
        for name in ("plain", "flit-adjacent", "flit-hashtable",
                     "link-and-persist", "skipit"):
            assert make_optimizer(name, heap).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_optimizer("bogus", SimHeap())
