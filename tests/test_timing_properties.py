"""Hypothesis properties of the timing model (with and without the L3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import CacheGeometry
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem

LINES = [0x4000 + i * 64 for i in range(4)]

OP = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(LINES), st.integers(1, 2**31)),
    st.tuples(st.just("load"), st.sampled_from(LINES), st.just(0)),
    st.tuples(st.just("clean"), st.sampled_from(LINES), st.just(0)),
    st.tuples(st.just("flush"), st.sampled_from(LINES), st.just(0)),
    st.tuples(st.just("fence"), st.just(0), st.just(0)),
)


def apply(thread, ops):
    latest = {}
    for op, address, value in ops:
        if op == "store":
            thread.store(address, value)
            latest[address] = value
        elif op == "load":
            assert thread.load(address) == latest.get(address, 0)
        elif op == "clean":
            thread.clean(address)
        elif op == "flush":
            thread.flush(address)
        else:
            thread.fence()
    return latest


def params(l3: bool, threads: int = 1) -> TimingParams:
    return TimingParams(
        num_threads=threads,
        l3=CacheGeometry(size_bytes=64 * 1024, ways=8) if l3 else None,
    )


class TestSingleThreadProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(OP, min_size=1, max_size=40), l3=st.booleans())
    def test_loads_always_architecturally_correct(self, ops, l3):
        system = TimingSystem(params(l3))
        apply(system.threads[0], ops)  # asserts on every load

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(OP, min_size=1, max_size=40), l3=st.booleans())
    def test_clock_strictly_monotone(self, ops, l3):
        system = TimingSystem(params(l3))
        thread = system.threads[0]
        last = 0
        actions = {
            "store": lambda a, v: thread.store(a, v),
            "load": lambda a, v: thread.load(a),
            "clean": lambda a, v: thread.clean(a),
            "flush": lambda a, v: thread.flush(a),
            "fence": lambda a, v: thread.fence(),
        }
        for op, address, value in ops:
            actions[op](address, value)
            assert thread.now >= last
            last = thread.now

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(OP, min_size=1, max_size=40), l3=st.booleans())
    def test_persisted_never_exceeds_arch(self, ops, l3):
        """The persistence domain only ever holds values that were
        architecturally written at some point (no invented data)."""
        system = TimingSystem(params(l3))
        written = {}
        thread = system.threads[0]
        for op, address, value in ops:
            if op == "store":
                thread.store(address, value)
                written.setdefault(address, set()).add(value)
            elif op == "load":
                thread.load(address)
            elif op == "clean":
                thread.clean(address)
            elif op == "flush":
                thread.flush(address)
            else:
                thread.fence()
        for address, value in system.persisted.items():
            assert value in written.get(address, {0}) or value == 0

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(OP, min_size=1, max_size=40))
    def test_l3_never_changes_final_persisted_state(self, ops):
        """The L3 is a performance feature: identical programs persist an
        identical image with and without it."""
        ops = ops + [("clean", line, 0) for line in LINES] + [("fence", 0, 0)]
        shallow = TimingSystem(params(l3=False))
        deep = TimingSystem(params(l3=True))
        apply(shallow.threads[0], ops)
        apply(deep.threads[0], ops)
        assert shallow.persisted == deep.persisted

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(OP, min_size=1, max_size=30))
    def test_skip_it_never_changes_persisted_requirements(self, ops):
        """Skip It is transparent: with a trailing clean+fence of every
        line, both configs persist the same final image."""
        ops = ops + [("clean", line, 0) for line in LINES] + [("fence", 0, 0)]
        base = TimingSystem(TimingParams(num_threads=1, skip_it=False))
        skip = TimingSystem(TimingParams(num_threads=1, skip_it=True))
        apply(base.threads[0], ops)
        apply(skip.threads[0], ops)
        assert base.persisted == skip.persisted
        assert skip.threads[0].now <= base.threads[0].now  # never slower
