"""Tests for the CMO extension instructions: cbo.inval and cbo.zero.

These are not evaluated in the paper but are part of the same RISC-V CMO
extension [60]; DESIGN.md lists them as implemented extensions.
"""

from repro.core.flush_queue import CboKind
from repro.core.flush_unit import OfferResult
from repro.sim.config import FlushUnitParams, SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINE = 0x7000


def dirty_soc(value=77):
    soc = Soc()
    soc.run_programs([[Instr.store(LINE, value)]])
    soc.drain()
    return soc


class TestCboInval:
    def test_inval_discards_dirty_data(self):
        soc = dirty_soc()
        soc.run_programs([[Instr.inval(LINE), Instr.fence()]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE) is None
        assert soc.l2.line_dirty(LINE) is None  # L2 copy dropped
        assert soc.persisted_value(LINE) == 0  # data was NOT written back
        assert soc.memory.writes == 0

    def test_inval_revokes_other_cores(self):
        soc = dirty_soc()
        soc.run_programs([[], [Instr.inval(LINE), Instr.fence()]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE) is None
        assert soc.persisted_value(LINE) == 0
        assert soc.l2.stats.get("root_inval_discards") == 1

    def test_inval_never_skipped_by_skip_it(self):
        """Even a persisted line must be invalidated by cbo.inval."""
        soc = Soc()
        soc.run_programs(
            [[Instr.store(LINE, 5), Instr.clean(LINE), Instr.fence()]]
        )
        soc.drain()
        assert soc.l1s[0].line_state(LINE)[2]  # skip set
        soc.run_programs([[Instr.inval(LINE), Instr.fence()]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE) is None
        assert soc.l1s[0].flush_unit.stats.get("skipped") == 0

    def test_reads_after_inval_see_old_persisted_value(self):
        soc = Soc()
        soc.run_programs(
            [[
                Instr.store(LINE, 1),
                Instr.clean(LINE),
                Instr.fence(),  # 1 is persisted
                Instr.store(LINE, 2),  # 2 is only cached
                Instr.inval(LINE),
                Instr.fence(),
                Instr.load(LINE),
            ]]
        )
        soc.drain()
        assert soc.cores[0].load_result(6) == 1  # the discarded 2 is gone


class TestCboZero:
    def test_zero_on_resident_line(self):
        soc = dirty_soc(value=77)
        soc.run_programs([[Instr.zero(LINE), Instr.load(LINE), Instr.load(LINE + 8)]])
        soc.drain()
        assert soc.cores[0].load_result(1) == 0
        assert soc.cores[0].load_result(2) == 0
        _, dirty, _ = soc.l1s[0].line_state(LINE)
        assert dirty  # zeroing dirties the line

    def test_zero_on_missing_line(self):
        soc = Soc()
        soc.run_programs([[Instr.zero(LINE), Instr.load(LINE + 16)]])
        soc.drain()
        assert soc.cores[0].load_result(1) == 0

    def test_zero_then_flush_persists_zeros(self):
        soc = dirty_soc(value=123)
        # first make 123 persistent, then zero + flush
        soc.run_programs(
            [[
                Instr.clean(LINE),
                Instr.fence(),
                Instr.zero(LINE),
                Instr.flush(LINE),
                Instr.fence(),
            ]]
        )
        soc.drain()
        assert soc.persisted_value(LINE) == 0

    def test_zero_revokes_sharers(self):
        soc = Soc()
        soc.run_programs([[Instr.load(LINE)], [Instr.load(LINE)]])
        soc.drain()
        soc.run_programs([[Instr.zero(LINE)]])
        soc.drain()
        assert soc.l1s[1].line_state(LINE) is None


class TestCrossKindCoalescing:
    """The §5.3 future-work optimization, off by default."""

    def _soc(self, cross):
        params = SoCParams(
            flush_unit=FlushUnitParams(coalesce_cross_kind=cross)
        )
        soc = Soc(params)
        soc.run_programs([[Instr.store(LINE, 9)]])
        soc.drain()
        return soc

    def test_disabled_by_default_nacks(self):
        soc = self._soc(cross=False)
        fu = soc.l1s[0].flush_unit
        fu.offer(LINE, CboKind.FLUSH, soc.l1s[0].meta.lookup(LINE))
        assert (
            fu.offer(LINE, CboKind.CLEAN, soc.l1s[0].meta.lookup(LINE))
            is OfferResult.NACK
        )

    def test_clean_merges_into_pending_flush(self):
        soc = self._soc(cross=True)
        fu = soc.l1s[0].flush_unit
        fu.offer(LINE, CboKind.FLUSH, soc.l1s[0].meta.lookup(LINE))
        result = fu.offer(LINE, CboKind.CLEAN, soc.l1s[0].meta.lookup(LINE))
        assert result is OfferResult.COALESCED
        assert fu.stats.get("coalesced_cross") == 1

    def test_flush_upgrades_pending_clean(self):
        soc = self._soc(cross=True)
        fu = soc.l1s[0].flush_unit
        fu.offer(LINE, CboKind.CLEAN, soc.l1s[0].meta.lookup(LINE))
        result = fu.offer(LINE, CboKind.FLUSH, soc.l1s[0].meta.lookup(LINE))
        assert result is OfferResult.COALESCED
        assert fu.queue.peek().kind is CboKind.FLUSH
        # the upgraded entry executes as a flush: line ends invalidated
        soc.drain()
        assert soc.l1s[0].line_state(LINE) is None
        assert soc.persisted_value(LINE) == 9

    def test_inval_never_cross_coalesces(self):
        soc = self._soc(cross=True)
        fu = soc.l1s[0].flush_unit
        fu.offer(LINE, CboKind.FLUSH, soc.l1s[0].meta.lookup(LINE))
        assert (
            fu.offer(LINE, CboKind.INVAL, soc.l1s[0].meta.lookup(LINE))
            is OfferResult.NACK
        )

    def test_cross_coalescing_preserves_semantics(self):
        """clean;flush merged: the persistence obligation is met at the
        fence.  (If the clean completes first, §6.1 legitimately drops the
        flush — including its invalidation — because the line is already
        persisted, so residency is not asserted here.)"""
        params = SoCParams(flush_unit=FlushUnitParams(coalesce_cross_kind=True))
        soc = Soc(params)
        soc.run_programs(
            [[
                Instr.store(LINE, 4),
                Instr.clean(LINE),
                Instr.flush(LINE),
                Instr.fence(),
            ]]
        )
        soc.drain()
        assert soc.persisted_value(LINE) == 4
        state = soc.l1s[0].line_state(LINE)
        if state is not None:
            # dropped flush: line must then be clean and persisted
            _, dirty, skip = state
            assert not dirty and skip
