"""Crash-point injector behaviour on known-good models.

The self-test in ``test_verify_oracle.py`` proves the injectors turn red
on known bugs; these tests pin down the green path — crash points are
actually enumerated, seals are counted, sampled mode visits every cycle
that can matter, and the ``CrashChecker`` crash-at-a-point path reuses
the injector's image computation.
"""

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.recovery import CrashChecker
from repro.persist.structures import STRUCTURES
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.verify.cli import matrix_schedule, matrix_system
from repro.verify.injector import (
    SocCrashInjector,
    TimingCrashInjector,
    timing_crash_image,
)

LINE = 0x3000


class TestTimingInjector:
    @pytest.mark.parametrize("op", ("clean", "flush"))
    @pytest.mark.parametrize("location", ("own_l1", "other_l1", "l2", "l3"))
    def test_matrix_cell_green(self, op, location):
        system = matrix_system(skip_it=True)
        schedule = matrix_schedule(system, op, location)
        report = TimingCrashInjector(system).run(schedule)
        assert report.ok, report.summary()
        assert report.crash_points == len(schedule)
        assert report.seals == 1

    def test_mid_writeback_window_is_checked(self):
        """Crash points between CBO issue and fence must be enumerated."""
        system = TimingSystem(TimingParams(num_threads=1))
        schedule = [
            (0, Instr.store(LINE, 7)),
            (0, Instr.clean(LINE)),
            (0, Instr.fence()),
        ]
        report = TimingCrashInjector(system).run(schedule)
        assert report.ok
        assert report.crash_points == 3
        assert report.words == 1

    def test_timing_crash_image_matches_crash(self):
        system = TimingSystem(TimingParams(num_threads=1))
        thread = system.threads[0]
        thread.store(LINE, 7)
        thread.clean(LINE)
        image = timing_crash_image(system, at=thread.now)
        assert image == system.crash(at=thread.now)

    def test_at_gates_the_mid_writeback_window(self):
        """A CBO's DRAM write lands at its completion time, not at issue."""
        system = TimingSystem(TimingParams(num_threads=1))
        thread = system.threads[0]
        thread.store(LINE, 7)
        thread.clean(LINE)
        (pending,) = system.in_flight
        assert pending.done > thread.now
        assert timing_crash_image(system, at=thread.now).get(LINE) is None
        assert timing_crash_image(system, at=pending.done).get(LINE) == 7


class TestSocInjector:
    def _programs(self):
        return [
            [
                Instr.store(LINE, 1),
                Instr.clean(LINE),
                Instr.fence(),
                Instr.store(LINE + 0x40, 2),
                Instr.flush(LINE + 0x40),
                Instr.fence(),
            ],
            [Instr.store(LINE + 0x80, 3), Instr.clean(LINE + 0x80), Instr.fence()],
        ]

    def test_sampled_run_green(self):
        report = SocCrashInjector(Soc()).run(self._programs())
        assert report.ok, report.summary()
        assert report.mode == "sampled"
        assert 0 < report.crash_points <= report.boundaries
        assert report.seals == 3
        assert report.words == 3

    @pytest.mark.slow
    def test_exhaustive_checks_every_cycle(self):
        report = SocCrashInjector(Soc(), mode="exhaustive").run(
            self._programs()
        )
        assert report.ok, report.summary()
        # every cycle boundary plus the final post-drain check
        assert report.crash_points >= report.boundaries

    def test_multi_writer_word_rejected(self):
        """The oracle needs single-writer words; racing programs are a
        harness bug, not a finding."""
        programs = [[Instr.store(LINE, 1)], [Instr.store(LINE, 2)]]
        with pytest.raises(ValueError):
            SocCrashInjector(Soc()).run(programs)

    def test_fewer_programs_than_cores(self):
        report = SocCrashInjector(Soc()).run(
            [[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]]
        )
        assert report.ok, report.summary()


class TestCrashCheckerAt:
    def _checker(self):
        system = TimingSystem(TimingParams(num_threads=1))
        heap = SimHeap()
        optimizer = make_optimizer("plain", heap)
        structure = STRUCTURES["hashtable"](
            heap, field_stride=optimizer.field_stride
        )
        view = PMemView(system.threads[0], make_policy("automatic"), optimizer)
        structure.initialize(view)
        return system, CrashChecker(system, structure, view)

    def test_crash_at_point_is_nondestructive(self):
        """The injected-crash path must not drop the live cache state."""
        system, checker = self._checker()
        checker.apply([("insert", k) for k in range(1, 6)])
        first = checker.crash_and_check(at=system.threads[0].now)
        assert first.consistent, (first.lost, first.ghosts)
        # the system keeps running: more updates, then check again
        checker.apply([("insert", k) for k in range(6, 11)])
        second = checker.crash_and_check(at=system.threads[0].now)
        assert second.consistent, (second.lost, second.ghosts)
        assert second.recovered > first.recovered

    def test_crash_at_now_matches_default_crash(self):
        system, checker = self._checker()
        checker.apply(
            [("insert", 1), ("insert", 2), ("delete", 1), ("insert", 3)]
        )
        at_report = checker.crash_and_check(at=system.threads[0].now)
        assert at_report.consistent, (at_report.lost, at_report.ghosts)
        default_report = checker.crash_and_check()  # destructive path
        assert default_report.recovered == at_report.recovered
