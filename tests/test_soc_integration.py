"""End-to-end integration tests on the cycle-level SoC."""

from repro.core.semantics import WritebackOracle
from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.requests import MemOp
from repro.uarch.soc import Soc


def run_with_oracle(program):
    """Run *program* on core 0 and cross-check §4 semantics at the end."""
    soc = Soc()
    oracle = WritebackOracle()
    for instr in program:
        if instr.op is MemOp.STORE:
            oracle.write(instr.address, instr.data)
        elif instr.op.is_cbo:
            oracle.writeback(instr.address)
        elif instr.op is MemOp.FENCE:
            oracle.fence()
    soc.run_programs([program])
    violations = oracle.check_memory(soc.persisted_value)
    return soc, violations


class TestSingleCoreSemantics:
    def test_store_flush_fence(self):
        _, violations = run_with_oracle(
            [Instr.store(0x40, 1), Instr.flush(0x40), Instr.fence()]
        )
        assert violations == []

    def test_clean_preserves_read_path(self):
        soc, violations = run_with_oracle(
            [
                Instr.store(0x40, 5),
                Instr.clean(0x40),
                Instr.fence(),
                Instr.load(0x40),
            ]
        )
        assert violations == []
        assert soc.cores[0].load_result(3) == 5
        assert soc.l1s[0].stats.get("load_hits") >= 1  # clean kept the line

    def test_flush_forces_refetch(self):
        soc, _ = run_with_oracle(
            [
                Instr.store(0x40, 5),
                Instr.flush(0x40),
                Instr.fence(),
                Instr.load(0x40),
            ]
        )
        assert soc.cores[0].load_result(3) == 5
        assert soc.l1s[0].stats.get("load_misses") >= 1

    def test_interleaved_lines_and_fences(self):
        program = []
        for i in range(8):
            address = 0x1000 + i * 64
            program += [Instr.store(address, i + 1), Instr.clean(address)]
        program.append(Instr.fence())
        _, violations = run_with_oracle(program)
        assert violations == []

    def test_store_after_writeback_not_required_but_coherent(self):
        soc, violations = run_with_oracle(
            [
                Instr.store(0x40, 1),
                Instr.clean(0x40),
                Instr.fence(),
                Instr.store(0x40, 2),  # dirty again, never written back
                Instr.load(0x40),
            ]
        )
        assert violations == []
        assert soc.cores[0].load_result(4) == 2
        assert soc.persisted_value(0x40) == 1  # only the fenced value


class TestMultiCore:
    def test_producer_consumer_via_flush(self):
        """The DMA-style pattern of §2.5: flush + fence, then remote read."""
        soc = Soc()
        soc.run_programs(
            [[Instr.store(0x2000, 123), Instr.flush(0x2000), Instr.fence()]]
        )
        soc.drain()
        assert soc.persisted_value(0x2000) == 123
        soc.run_programs([[], [Instr.load(0x2000)]])
        assert soc.cores[1].load_result(0) == 123

    def test_concurrent_disjoint_flushes(self):
        soc = Soc()
        programs = []
        for core in range(2):
            base = 0x10000 + core * 0x10000
            program = []
            for i in range(8):
                program.append(Instr.store(base + i * 64, core * 100 + i))
                program.append(Instr.flush(base + i * 64))
            program.append(Instr.fence())
            programs.append(program)
        soc.run_programs(programs)
        soc.drain()
        for core in range(2):
            base = 0x10000 + core * 0x10000
            for i in range(8):
                assert soc.persisted_value(base + i * 64) == core * 100 + i

    def test_contended_line_flushes_both_cores(self):
        """Both cores hammer the same line with stores and flushes; the
        final architectural value must be coherent and the run must not
        deadlock (§5.4 machinery under fire)."""
        soc = Soc()
        line = 0x3000
        p0 = []
        p1 = []
        for i in range(6):
            p0 += [Instr.store(line, 1000 + i), Instr.flush(line), Instr.fence()]
            p1 += [Instr.store(line, 2000 + i), Instr.flush(line), Instr.fence()]
        soc.run_programs([p0, p1])
        soc.drain()
        final = soc.coherent_value(line)
        assert final in (1005, 2005)
        assert soc.persisted_value(line) in (1005, 2005)

    def test_eight_core_soc(self):
        soc = Soc(SoCParams().with_cores(8))
        programs = []
        for core in range(8):
            address = 0x5000 + core * 0x1000
            programs.append(
                [Instr.store(address, core), Instr.clean(address), Instr.fence()]
            )
        soc.run_programs(programs)
        soc.drain()
        for core in range(8):
            assert soc.persisted_value(0x5000 + core * 0x1000) == core


class TestInvariantsAfterDrain:
    def test_quiescence(self):
        soc = Soc()
        soc.run_programs(
            [[Instr.store(0x40, 1), Instr.flush(0x40)], [Instr.load(0x40)]]
        )
        soc.drain()
        assert soc.quiescent_check()

    def test_inclusion_invariant(self):
        """Every valid L1 line is present in the inclusive L2."""
        soc = Soc()
        program = [Instr.store(0x6000 + i * 64, i) for i in range(16)]
        soc.run_programs([program, [Instr.load(0x6000)]])
        soc.drain()
        for l1 in soc.l1s:
            for set_idx, way, entry in l1.meta.iter_valid():
                address = l1.meta.address_of(set_idx, entry)
                assert address in soc.l2.lines, hex(address)

    def test_directory_matches_l1_state(self):
        soc = Soc()
        soc.run_programs([[Instr.store(0x40, 1)], [Instr.load(0x1000)]])
        soc.drain()
        for address, line in soc.l2.lines.items():
            for client in range(len(soc.l1s)):
                l1_state = soc.l1s[client].line_state(address)
                if line.directory.holds(client):
                    assert l1_state is not None
                else:
                    assert l1_state is None
