from repro.core.flush_queue import CboKind
"""Unit tests for the writeback unit and the L1 MSHR bookkeeping."""

import pytest

from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import Release
from repro.tilelink.permissions import Grow, Perm, Shrink
from repro.uarch.l1 import L1DataCache
from repro.uarch.mshr import Mshr, MshrState
from repro.uarch.requests import MemOp, MemRequest

LINE = 0xE000


def isolated_l1():
    engine = Engine(watchdog_interval=0)
    l1 = L1DataCache(engine, agent_id=0, params=SoCParams())
    l1.connect(*[BeatChannel(n, 16) for n in "abcde"])
    return engine, l1


def install(l1, address=LINE, perm=Perm.TRUNK, dirty=True, value=99):
    way = l1.meta.victim_way(address)
    l1.meta.install(address, way, perm=perm, dirty=dirty)
    l1.data.write_word(l1.geometry.set_index(address), way, 0, value)
    return way


class TestWritebackUnit:
    def test_dirty_eviction_releases_data(self):
        engine, l1 = isolated_l1()
        way = install(l1, dirty=True, value=99)
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        assert not l1.wbu.wb_rdy
        release = None
        for _ in range(8):
            engine.step()
            release = l1.chan_c.pop_ready(engine.cycle)
            if release:
                break
        assert isinstance(release, Release)
        assert release.shrink is Shrink.TtoN
        assert int.from_bytes(release.data[:8], "little") == 99
        assert l1.line_state(LINE) is None

    def test_clean_eviction_dataless(self):
        engine, l1 = isolated_l1()
        way = install(l1, dirty=False)
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        engine.step(3)
        release = l1.chan_c.pop_ready(engine.cycle)
        assert release.data is None

    def test_branch_eviction_shrink(self):
        engine, l1 = isolated_l1()
        way = install(l1, perm=Perm.BRANCH, dirty=False)
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        engine.step(3)
        assert l1.chan_c.pop_ready(engine.cycle).shrink is Shrink.BtoN

    def test_complete_restores_rdy(self):
        engine, l1 = isolated_l1()
        way = install(l1)
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        l1.wbu.complete(LINE)
        assert l1.wbu.wb_rdy

    def test_complete_wrong_address_rejected(self):
        engine, l1 = isolated_l1()
        way = install(l1)
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        with pytest.raises(RuntimeError):
            l1.wbu.complete(LINE + 64)

    def test_double_eviction_rejected(self):
        engine, l1 = isolated_l1()
        way = install(l1)
        other_way = install(l1, address=LINE + 64)
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        with pytest.raises(RuntimeError):
            l1.wbu.start_eviction(LINE + 64, other_way, engine.cycle)

    def test_eviction_invalidates_flush_entries(self):
        engine, l1 = isolated_l1()
        way = install(l1, dirty=True)
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.CLEAN, hit=l1.meta.lookup(LINE))
        entry = fu.queue.peek()
        l1.wbu.start_eviction(LINE, way, engine.cycle)
        assert not entry.is_hit  # §5.4.2
        assert fu.stats.get("evict_invalidated") == 1

    def test_eviction_of_nonresident_rejected(self):
        engine, l1 = isolated_l1()
        with pytest.raises(RuntimeError):
            l1.wbu.start_eviction(LINE, 0, engine.cycle)


class TestMshr:
    def test_allocation_lifecycle(self):
        mshr = Mshr(0, rpq_depth=4)
        request = MemRequest(MemOp.LOAD, LINE)
        mshr.allocate(request, LINE, Perm.BRANCH, victim_way=1,
                      needs_evict=False, grow=Grow.NtoB)
        assert mshr.state is MshrState.ACQUIRE
        mshr.acquire_sent()
        assert mshr.state is MshrState.WAIT_GRANT
        mshr.granted()
        assert mshr.replaying
        assert mshr.pop_replay() is request
        assert mshr.pop_replay() is None
        mshr.free()
        assert not mshr.busy

    def test_eviction_first_when_needed(self):
        mshr = Mshr(0, rpq_depth=4)
        mshr.allocate(MemRequest(MemOp.STORE, LINE, data=1), LINE, Perm.TRUNK,
                      victim_way=0, needs_evict=True, grow=Grow.NtoT)
        assert mshr.state is MshrState.EVICT_WAIT
        mshr.eviction_done()
        assert mshr.state is MshrState.ACQUIRE

    def test_rpq_depth_limit(self):
        mshr = Mshr(0, rpq_depth=2)
        mshr.allocate(MemRequest(MemOp.STORE, LINE, data=0), LINE, Perm.TRUNK,
                      victim_way=0, needs_evict=False, grow=Grow.NtoT)
        assert mshr.can_accept_secondary(MemRequest(MemOp.LOAD, LINE + 8))
        mshr.push_secondary(MemRequest(MemOp.LOAD, LINE + 8))
        assert not mshr.can_accept_secondary(MemRequest(MemOp.LOAD, LINE + 16))

    def test_secondary_permission_rule(self):
        mshr = Mshr(0, rpq_depth=4)
        mshr.allocate(MemRequest(MemOp.LOAD, LINE), LINE, Perm.BRANCH,
                      victim_way=0, needs_evict=False, grow=Grow.NtoB)
        assert not mshr.can_accept_secondary(
            MemRequest(MemOp.STORE, LINE + 8, data=1)
        )
        assert mshr.can_accept_secondary(MemRequest(MemOp.LOAD, LINE + 8))

    def test_no_secondary_during_replay(self):
        mshr = Mshr(0, rpq_depth=4)
        mshr.allocate(MemRequest(MemOp.LOAD, LINE), LINE, Perm.BRANCH,
                      victim_way=0, needs_evict=False, grow=Grow.NtoB)
        mshr.acquire_sent()
        mshr.granted()
        assert not mshr.can_accept_secondary(MemRequest(MemOp.LOAD, LINE + 8))

    def test_double_allocate_rejected(self):
        mshr = Mshr(0, rpq_depth=4)
        mshr.allocate(MemRequest(MemOp.LOAD, LINE), LINE, Perm.BRANCH,
                      victim_way=0, needs_evict=False, grow=Grow.NtoB)
        with pytest.raises(RuntimeError):
            mshr.allocate(MemRequest(MemOp.LOAD, LINE), LINE, Perm.BRANCH,
                          victim_way=0, needs_evict=False, grow=Grow.NtoB)
