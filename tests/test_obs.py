"""Unit tests for the observability layer: bus, spans, registry, exporters."""

import json

import pytest

from repro.obs.events import EventBus, Span
from repro.obs.export import (
    chrome_trace,
    hottest_lines,
    read_jsonl,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.stats import Histogram, StatCounter


class TestEventBus:
    def test_emit_and_buffer(self):
        bus = EventBus()
        bus.emit(5, "cbo", "skipped", track="core0", address=0x40)
        assert len(bus.events) == 1
        event = bus.events[0]
        assert event.cycle == 5
        assert event.args["address"] == 0x40
        assert "skipped" in str(event)

    def test_max_events_bound(self):
        bus = EventBus(max_events=4)
        for i in range(10):
            bus.emit(i, "x", "e")
        assert len(bus.events) == 4
        assert bus.events[0].cycle == 6  # oldest six dropped

    def test_subscribers_receive_even_without_recording(self):
        bus = EventBus(record_events=False)
        seen = []
        bus.subscribe(seen.append)
        bus.emit(1, "x", "e")
        assert len(bus.events) == 0
        assert len(seen) == 1
        bus.unsubscribe(seen.append)
        bus.emit(2, "x", "e")
        assert len(seen) == 1

    def test_span_lifecycle_and_state_durations(self):
        bus = EventBus()
        bus.open_span(10, "k", "cbo", name="cbo.clean", state="queued")
        bus.transition(13, "k", "meta_write")
        bus.transition(14, "k", "root_release")
        span = bus.close_span(20, "k")
        assert span.closed and span.duration == 10
        durations = span.state_durations()
        assert durations == {"queued": 3, "meta_write": 1, "root_release": 6}
        assert sum(durations.values()) == span.duration
        # begin/transition/end instants were emitted alongside
        names = [e.name for e in bus.events]
        assert names == [
            "cbo.clean:begin",
            "cbo.clean:meta_write",
            "cbo.clean:root_release",
            "cbo.clean:end",
        ]

    def test_span_latency_histograms(self):
        bus = EventBus()
        for start in (0, 100):
            bus.open_span(start, f"k{start}", "cbo", name="c", state="queued")
            bus.transition(start + 2, f"k{start}", "work")
            bus.close_span(start + 10, f"k{start}")
        summary = bus.latency_summary()
        assert summary["cbo"]["queued"]["count"] == 2
        assert summary["cbo"]["queued"]["mean"] == 2
        assert summary["cbo"]["total"]["mean"] == 10

    def test_bus_is_forgiving(self):
        bus = EventBus()
        bus.transition(1, "missing", "x")
        bus.annotate("missing", a=1)
        assert bus.close_span(2, "missing") is None
        bus.open_span(3, "dup", "c", name="n")
        bus.open_span(4, "dup", "c", name="n")  # re-open of a live key
        assert bus.dropped == 4

    def test_annotate_merges_args(self):
        bus = EventBus()
        bus.open_span(0, "k", "cbo", name="n", address=0x40)
        bus.annotate("k", probe_downgraded="toN")
        span = bus.close_span(5, "k")
        assert span.args["address"] == 0x40
        assert span.args["probe_downgraded"] == "toN"

    def test_last_events_for_deadlock_tail(self):
        bus = EventBus()
        for i in range(50):
            bus.emit(i, "x", f"e{i}")
        tail = bus.last_events(8)
        assert len(tail) == 8
        assert tail[-1]["name"] == "e49"
        assert all(isinstance(record, dict) for record in tail)

    def test_clear(self):
        bus = EventBus()
        bus.open_span(0, "k", "c", name="n")
        bus.emit(1, "x", "e")
        bus.close_span(2, "k")
        bus.clear()
        assert not bus.events and not bus.spans and not bus.open_spans


class TestMetricsRegistry:
    def test_adopts_existing_counter(self):
        registry = MetricsRegistry()
        stats = StatCounter()
        stats.inc("hits", 3)
        registry.register_counter("soc.core0.l1", stats)
        snapshot = registry.snapshot()
        assert snapshot["soc"]["core0"]["l1"]["hits"] == 3

    def test_duplicate_path_rejected(self):
        registry = MetricsRegistry()
        registry.register_gauge("a.b", lambda: 1)
        with pytest.raises(ValueError):
            registry.register_counter("a.b", StatCounter())

    def test_gauges_sampled_at_snapshot_time(self):
        registry = MetricsRegistry()
        box = {"v": 1}
        registry.register_gauge("g", lambda: box["v"])
        assert registry.snapshot()["g"] == 1
        box["v"] = 7
        assert registry.snapshot()["g"] == 7

    def test_provider_contributes_subtree(self):
        registry = MetricsRegistry()
        registry.register_provider("obs.latency", lambda: {"cbo": {"total": 5}})
        assert registry.snapshot()["obs"]["latency"]["cbo"]["total"] == 5

    def test_histogram_summary_in_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.extend([1, 2, 3])
        node = registry.snapshot()["lat"]
        assert node["count"] == 3 and node["median"] == 2

    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("c").inc("x")
        registry.counter("c").inc("x")
        assert registry.snapshot()["c"]["x"] == 2

    def test_snapshot_merges_sibling_paths(self):
        registry = MetricsRegistry()
        stats = StatCounter()
        stats.inc("enqueued")
        registry.register_counter("fu", stats)
        registry.register_gauge("fu.queue_occupancy", lambda: 4)
        node = registry.snapshot()["fu"]
        assert node["enqueued"] == 1 and node["queue_occupancy"] == 4

    def test_flat_and_json(self):
        registry = MetricsRegistry()
        registry.register_gauge("a.b.c", lambda: 2)
        assert registry.flat() == {"a.b.c": 2}
        assert json.loads(registry.to_json()) == {"a": {"b": {"c": 2}}}

    def test_unregister_prefix(self):
        registry = MetricsRegistry()
        registry.register_gauge("a.b", lambda: 1)
        registry.register_gauge("a.bc", lambda: 2)
        registry.register_gauge("a.b.c", lambda: 3)
        assert registry.unregister_prefix("a.b") == 2
        assert registry.paths() == ["a.bc"]


class TestHistogramSummary:
    def test_empty_summary_is_zeros_not_error(self):
        summary = Histogram().summary()
        assert summary == {
            "count": 0,
            "mean": 0.0,
            "median": 0.0,
            "stdev": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
        }

    def test_populated_summary(self):
        hist = Histogram()
        hist.extend(range(1, 101))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p99"] >= summary["p90"] >= summary["p50"]


def _sample_bus():
    bus = EventBus()
    bus.emit(1, "tilelink", "Acquire", track="l10.a", address=0x40, source=0)
    bus.open_span(2, "cbo:0", "cbo", name="cbo.clean", track="core0", address=0x40)
    bus.transition(5, "cbo:0", "meta_write")
    bus.close_span(9, "cbo:0")
    bus.open_span(4, "cbo:1", "cbo", name="cbo.flush", track="core0", address=0x80)
    return bus


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        bus = _sample_bus()
        path = str(tmp_path / "trace.jsonl")
        written = write_jsonl(path, bus)
        events, spans = read_jsonl(path)
        assert written == len(events) + len(spans)
        assert spans[0]["key"] == "cbo:0"
        assert spans[0]["states"] == [["open", 2, 5], ["meta_write", 5, 9]]

    def test_chrome_trace_validates(self, tmp_path):
        bus = _sample_bus()
        trace = chrome_trace(bus.events, bus.spans)
        assert validate_chrome_trace(trace) == []
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, bus.events, bus.spans)
        with open(path) as handle:
            assert len(json.load(handle)["traceEvents"]) == count

    def test_chrome_trace_round_trip_from_jsonl(self, tmp_path):
        bus = _sample_bus()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, bus)
        events, spans = read_jsonl(path)
        direct = chrome_trace(bus.events, bus.spans)
        rehydrated = chrome_trace(events, spans)
        assert direct == rehydrated

    def test_chrome_trace_span_slices(self):
        bus = _sample_bus()
        trace = chrome_trace((), bus.spans)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        top = [s for s in slices if s["name"] == "cbo.clean"]
        assert len(top) == 1 and top[0]["dur"] == 7
        # per-state slices sum to the span's total duration
        states = [s for s in slices if s["name"].startswith("cbo.clean.")]
        assert sum(s["dur"] for s in states) == top[0]["dur"]
        # the still-open span is excluded
        assert not any(s["name"] == "cbo.flush" for s in slices)

    def test_validator_flags_bad_entries(self):
        bad = {"traceEvents": [{"ph": "Q", "ts": 1.5}]}
        problems = validate_chrome_trace(bad)
        assert any("missing" in p for p in problems)
        assert any("phase" in p for p in problems)

    def test_summarize(self):
        bus = _sample_bus()
        result = summarize(bus.events, bus.spans)
        assert result["spans"] == 1  # only the closed one
        assert result["span_stats"]["cbo"]["total_cycles"] == 7
        assert result["event_counts"]["tilelink:Acquire"] == 1

    def test_hottest_lines(self):
        bus = _sample_bus()
        rows = hottest_lines(bus.events, bus.spans, top=5)
        assert rows[0]["address"] in (0x40, 0x80)
        by_addr = {r["address"]: r for r in rows}
        assert by_addr[0x40]["messages"] == 1
        assert by_addr[0x40]["span_cycles"] == 7
