"""Unit tests for the §4 writeback-semantics oracle."""

from repro.core.semantics import WritebackOracle


class TestOracle:
    def test_no_writeback_no_requirement(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        assert o.fence() == {}

    def test_writeback_then_fence_requires_prior_writes(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.write(0x48, 2)  # same line
        o.writeback(0x40)
        assert o.fence() == {0x40: 1, 0x48: 2}

    def test_later_writes_not_covered(self):
        """§4 scenario (b): writes after the writeback are not ordered."""
        o = WritebackOracle()
        o.write(0x40, 1)
        o.writeback(0x40)
        o.write(0x40, 2)  # after the writeback: NOT required at the fence
        assert o.fence() == {0x40: 1}

    def test_latest_writeback_wins(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.writeback(0x40)
        o.write(0x40, 2)
        o.writeback(0x40)
        assert o.fence() == {0x40: 2}

    def test_writeback_without_fence_requires_nothing(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.writeback(0x40)
        assert o.required_persisted == {}

    def test_lines_are_independent(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.write(0x1000, 9)
        o.writeback(0x40)
        assert o.fence() == {0x40: 1}

    def test_writeback_covers_whole_line(self):
        o = WritebackOracle(line_bytes=64)
        o.write(0x80, 1)
        o.write(0xB8, 2)  # same 64B line
        o.writeback(0x80)
        assert o.fence() == {0x80: 1, 0xB8: 2}

    def test_requirements_accumulate_across_fences(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.writeback(0x40)
        o.fence()
        o.write(0x1000, 2)
        o.writeback(0x1000)
        assert o.fence() == {0x40: 1, 0x1000: 2}

    def test_check_memory_reports_violations(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.writeback(0x40)
        o.fence()
        violations = o.check_memory(lambda addr: 0)
        assert len(violations) == 1
        assert "0x40" in violations[0]

    def test_check_memory_passes(self):
        o = WritebackOracle()
        o.write(0x40, 1)
        o.writeback(0x40)
        o.fence()
        assert o.check_memory(lambda addr: {0x40: 1}.get(addr, 0)) == []

    def test_newer_value_in_memory_is_over_persistence(self):
        """A post-fence writeback landing newer data is legal.

        The oracle is a lower bound: memory must hold *at least* the
        fence-covered write, and a later program-order value counts as
        "persisting more".  store(2); clean; store(1); FENCE; clean ends
        with 1 in memory even though the fence only required 2.
        """
        o = WritebackOracle()
        o.write(0x1000, 2)
        o.writeback(0x1000)
        o.write(0x1000, 1)
        o.fence()
        o.writeback(0x1000)  # post-fence: may land 1 in memory
        assert o.required_persisted == {0x1000: 2}
        assert o.check_memory(lambda addr: {0x1000: 1}.get(addr, 0)) == []

    def test_stale_value_is_still_a_violation(self):
        """Superseding only runs forward: an *older* value stays red."""
        o = WritebackOracle()
        o.write(0x40, 7)
        o.write(0x40, 8)
        o.writeback(0x40)
        o.fence()
        violations = o.check_memory(lambda addr: {0x40: 7}.get(addr, 0))
        assert len(violations) == 1 and "0x40" in violations[0]
