"""L2 resource-exhaustion behaviour: ListBuffer, MSHR limits, pipelining."""

from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc


def tiny_l2_soc(num_l2_mshrs=2, list_buffer=2, cores=2):
    params = SoCParams(
        num_l2_mshrs=num_l2_mshrs,
        l2_list_buffer_depth=list_buffer,
        num_cores=cores,
    )
    return Soc(params)


class TestListBufferAndMshrLimits:
    def test_flood_completes_with_two_mshrs(self):
        """Far more concurrent requests than L2 MSHRs: everything still
        completes (ListBuffer + ingress deferral), just slower."""
        soc = tiny_l2_soc(num_l2_mshrs=2, list_buffer=2)
        lines = [0x50000 + i * 64 for i in range(24)]
        program = [Instr.store(a, i) for i, a in enumerate(lines)]
        program += [Instr.flush(a) for a in lines]
        program.append(Instr.fence())
        soc.run_programs([program])
        soc.drain()
        for i, a in enumerate(lines):
            assert soc.persisted_value(a) == i

    def test_fewer_mshrs_cost_latency(self):
        lines = [0x60000 + i * 64 for i in range(16)]

        def run(mshrs):
            soc = tiny_l2_soc(num_l2_mshrs=mshrs)
            soc.run_programs([[Instr.store(a, 1) for a in lines]])
            soc.drain()
            program = [Instr.flush(a) for a in lines] + [Instr.fence()]
            cycles = soc.run_programs([program])
            soc.drain()
            return cycles

        assert run(16) < run(1)

    def test_same_line_requests_serialize(self):
        """Two cores flushing the same line: L2 serializes per address and
        both complete without deadlock."""
        soc = tiny_l2_soc(num_l2_mshrs=4)
        line = 0x70000
        soc.run_programs([[Instr.store(line, 9)]])
        soc.drain()
        soc.run_programs(
            [
                [Instr.flush(line), Instr.fence()],
                [Instr.flush(line), Instr.fence()],
            ]
        )
        soc.drain()
        assert soc.persisted_value(line) == 9
        total_roots = soc.l2.stats.get("root_release_flush")
        assert total_roots == 2  # both processed, one after the other

    def test_concurrent_traffic_both_cores(self):
        soc = tiny_l2_soc(num_l2_mshrs=3, cores=2)
        p0 = []
        p1 = []
        for i in range(12):
            p0.append(Instr.store(0x80000 + i * 64, i))
            p1.append(Instr.store(0x90000 + i * 64, 100 + i))
        p0 += [Instr.clean(0x80000 + i * 64) for i in range(12)] + [Instr.fence()]
        p1 += [Instr.clean(0x90000 + i * 64) for i in range(12)] + [Instr.fence()]
        soc.run_programs([p0, p1])
        soc.drain()
        for i in range(12):
            assert soc.persisted_value(0x80000 + i * 64) == i
            assert soc.persisted_value(0x90000 + i * 64) == 100 + i
