"""Memory-model litmus patterns on the cycle-level SoC (§2.4, §4).

The BOOM model implements a stricter-than-RVWMO ordering (stores and
CBO.X fire in program order at the ROB head; only loads reorder, §3.2),
so classic message-passing patterns with fences must never observe the
forbidden outcome.  Each pattern is run across many phase offsets between
the two cores to explore interleavings deterministically.
"""

from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

X, Y, FLAG = 0x11000, 0x12000, 0x13000


def run_offset(p0, p1, offset):
    """Run p0/p1 with p1 delayed by *offset* artificial lead-ins."""
    soc = Soc()
    # delay core 1 by prepending dummy loads to private lines
    delay = [Instr.load(0x90000 + i * 64) for i in range(offset)]
    soc.run_programs([p0, delay + p1])
    soc.drain()
    return soc, len(delay)


class TestMessagePassing:
    def test_mp_with_flush_and_fence(self):
        """MP: producer stores data, flushes, fences, sets flag (flushed).
        If the consumer sees the flag in *memory*, the data must be in
        memory too — the §4 guarantee DMA/NVMM code relies on."""
        p0 = [
            Instr.store(X, 42),
            Instr.flush(X),
            Instr.fence(),
            Instr.store(FLAG, 1),
            Instr.flush(FLAG),
            Instr.fence(),
        ]
        for offset in range(0, 12, 3):
            soc, _ = run_offset(p0, [], offset)
            if soc.persisted_value(FLAG) == 1:
                assert soc.persisted_value(X) == 42

    def test_mp_coherent_reader(self):
        """Coherent (cache-to-cache) MP: in-order stores mean a reader
        that observes the flag also observes the data."""
        p0 = [Instr.store(X, 7), Instr.store(FLAG, 1)]
        for offset in range(0, 16, 2):
            p1 = [Instr.load(FLAG), Instr.load(X)]
            soc, lead = run_offset(p0, p1, offset)
            flag = soc.cores[1].load_result(lead + 0)
            # NOTE: the two loads target different lines so the LDQ may
            # reorder them; re-run the data load *after* both cores are
            # done to check the architected final state instead.
            if flag == 1:
                assert soc.coherent_value(X) == 7

    def test_store_buffering_forbidden_outcome_never_persists(self):
        """SB with flush+fence on both sides: both threads' data reaches
        memory; at least one writeback is globally ordered."""
        p0 = [Instr.store(X, 1), Instr.flush(X), Instr.fence(), Instr.load(Y)]
        p1 = [Instr.store(Y, 1), Instr.flush(Y), Instr.fence(), Instr.load(X)]
        for offset in (0, 1, 5):
            soc, _ = run_offset(p0, p1, offset)
            assert soc.persisted_value(X) == 1
            assert soc.persisted_value(Y) == 1


class TestSameLineOrdering:
    def test_same_line_store_load_never_reorders(self):
        soc = Soc()
        program = []
        for i in range(8):
            program.append(Instr.store(X, i + 1))
            program.append(Instr.load(X))
        soc.run_programs([program])
        for i in range(8):
            assert soc.cores[0].load_result(2 * i + 1) == i + 1

    def test_writeback_ordered_after_same_line_stores(self):
        """§4: writeback(c) covers every program-order-earlier write to C,
        even when those stores missed and sat in an MSHR."""
        soc = Soc()
        program = [
            Instr.store(X, 1),
            Instr.store(X + 8, 2),
            Instr.store(X + 16, 3),
            Instr.clean(X),
            Instr.fence(),
        ]
        soc.run_programs([program])
        soc.drain()
        assert soc.persisted_value(X) == 1
        assert soc.persisted_value(X + 8) == 2
        assert soc.persisted_value(X + 16) == 3

    def test_fence_orders_writebacks_of_different_lines(self):
        """§4 scenario (c): after the fence both earlier writebacks are
        complete, regardless of their mutual (unordered) completion."""
        soc = Soc()
        program = [
            Instr.store(X, 10),
            Instr.store(Y, 20),
            Instr.clean(X),
            Instr.clean(Y),
            Instr.fence(),
        ]
        cycles = soc.run_programs([program])
        assert soc.persisted_value(X) == 10
        assert soc.persisted_value(Y) == 20
