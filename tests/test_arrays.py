"""Unit tests for the L1 metadata/data arrays."""

from repro.sim.config import CacheGeometry
from repro.tilelink.permissions import Perm
from repro.uarch.arrays import DataArray, MetaArray


def small_geometry():
    # 4 sets x 2 ways of 64B lines
    return CacheGeometry(size_bytes=512, ways=2)


class TestMetaArray:
    def test_miss_on_empty(self):
        meta = MetaArray(small_geometry())
        assert meta.lookup(0x1000) is None

    def test_install_and_lookup(self):
        meta = MetaArray(small_geometry())
        meta.install(0x1000, way=0, perm=Perm.TRUNK, dirty=True)
        way, entry = meta.lookup(0x1000)
        assert way == 0
        assert entry.perm is Perm.TRUNK
        assert entry.dirty

    def test_skip_bit_cleared_on_invalidate(self):
        meta = MetaArray(small_geometry())
        entry = meta.install(0, way=1, perm=Perm.BRANCH, skip=True)
        entry.invalidate()
        assert not entry.skip and not entry.dirty and not entry.valid

    def test_victim_prefers_invalid_way(self):
        meta = MetaArray(small_geometry())
        meta.install(0, way=0, perm=Perm.BRANCH)
        assert meta.victim_way(0) == 1

    def test_victim_lru_when_full(self):
        g = small_geometry()
        meta = MetaArray(g)
        stride = g.num_sets * g.line_bytes  # same set, different tags
        meta.install(0, way=0, perm=Perm.BRANCH)
        meta.install(stride, way=1, perm=Perm.BRANCH)
        meta.touch(0, 0)  # way 0 becomes MRU
        assert meta.victim_way(2 * stride) == 1

    def test_victim_respects_exclusions(self):
        meta = MetaArray(small_geometry())
        assert meta.victim_way(0, exclude={0}) == 1
        assert meta.victim_way(0, exclude={0, 1}) is None

    def test_address_reconstruction(self):
        g = small_geometry()
        meta = MetaArray(g)
        address = 3 * g.num_sets * g.line_bytes + 2 * g.line_bytes
        entry = meta.install(address, way=0, perm=Perm.TRUNK)
        assert meta.address_of(g.set_index(address), entry) == address

    def test_iter_valid(self):
        meta = MetaArray(small_geometry())
        meta.install(0, way=0, perm=Perm.BRANCH)
        meta.install(64, way=0, perm=Perm.TRUNK)
        assert len(list(meta.iter_valid())) == 2

    def test_different_tag_same_set_misses(self):
        g = small_geometry()
        meta = MetaArray(g)
        meta.install(0, way=0, perm=Perm.TRUNK)
        other = g.num_sets * g.line_bytes  # same set 0, different tag
        assert meta.lookup(other) is None


class TestDataArray:
    def test_unwritten_line_zero(self):
        data = DataArray(small_geometry())
        assert data.read_line(0, 0) == bytes(64)

    def test_line_roundtrip(self):
        data = DataArray(small_geometry())
        payload = bytes(range(64))
        data.write_line(1, 1, payload)
        assert data.read_line(1, 1) == payload

    def test_word_merge(self):
        data = DataArray(small_geometry())
        data.write_word(0, 0, 8, 0xDEADBEEF)
        assert data.read_word(0, 0, 8) == 0xDEADBEEF
        assert data.read_word(0, 0, 0) == 0  # neighbours untouched

    def test_word_offsets_independent(self):
        data = DataArray(small_geometry())
        for i in range(8):
            data.write_word(0, 0, i * 8, i + 1)
        assert [data.read_word(0, 0, i * 8) for i in range(8)] == list(
            range(1, 9)
        )

    def test_size_mismatch_rejected(self):
        data = DataArray(small_geometry())
        try:
            data.write_line(0, 0, b"short")
            assert False, "expected ValueError"
        except ValueError:
            pass
