"""Unit tests for the timing model's set-associative LineCache."""

from repro.sim.config import CacheGeometry
from repro.timing.cache import LineCache


def mk(size=512, ways=2):
    # size=512, ways=2 -> 4 sets of 64B lines
    return LineCache(CacheGeometry(size_bytes=size, ways=ways))


class TestLineCache:
    def test_get_miss(self):
        assert mk().get(0x1000) is None

    def test_put_and_get(self):
        cache = mk()
        cache.put(0x1000, "rec")
        assert cache.get(0x1000) == "rec"
        assert 0x1000 in cache

    def test_lru_eviction_order(self):
        cache = mk()
        stride = cache.geometry.num_sets * 64  # same set
        cache.put(0x0, "a")
        cache.put(stride, "b")
        cache.touch(0x0)  # a becomes MRU
        evicted = cache.put(2 * stride, "c")
        assert evicted == (stride, "b")

    def test_no_eviction_across_sets(self):
        cache = mk()
        for i in range(4):  # different sets
            assert cache.put(i * 64, i) is None
        assert len(cache) == 4

    def test_put_existing_updates_in_place(self):
        cache = mk()
        cache.put(0x40, "old")
        assert cache.put(0x40, "new") is None
        assert cache.get(0x40) == "new"
        assert len(cache) == 1

    def test_remove(self):
        cache = mk()
        cache.put(0x40, "x")
        assert cache.remove(0x40) == "x"
        assert cache.remove(0x40) is None
        assert 0x40 not in cache

    def test_items_iterates_everything(self):
        cache = mk()
        cache.put(0x0, "a")
        cache.put(0x40, "b")
        assert dict(cache.items()) == {0x0: "a", 0x40: "b"}

    def test_capacity_honoured_per_set(self):
        cache = mk(size=512, ways=2)
        stride = cache.geometry.num_sets * 64
        evictions = 0
        for i in range(6):
            if cache.put(i * stride, i) is not None:
                evictions += 1
        assert evictions == 4  # only 2 of 6 same-set lines fit
        assert len(cache) == 2
