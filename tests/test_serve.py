"""Tests for :mod:`repro.serve` — admission control, sessions, the tier."""

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.serve.admission import AdmissionController
from repro.serve.tier import ServeTier
from repro.store import SharedLogStore
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def mk_tier(optimizer="skipit", threads=2, high_water=48, low_water=12,
            mode="shed", **kwargs):
    params = TimingParams(num_threads=threads, skip_it=(optimizer == "skipit"))
    system = TimingSystem(params)
    heap = SimHeap(params.line_bytes)
    opt = make_optimizer(optimizer, heap)
    policy = make_policy("none")
    views = [PMemView(ctx, policy, opt) for ctx in system.threads[:threads]]
    kwargs.setdefault("log_capacity", 128)
    kwargs.setdefault("num_buckets", 16)
    kwargs.setdefault("batch_size", 4)
    store = SharedLogStore(heap, views, **kwargs)
    tier = ServeTier(
        store, high_water=high_water, low_water=low_water, mode=mode
    )
    return system, store, tier


class TestAdmissionController:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="high_water"):
            AdmissionController(0, 0)
        with pytest.raises(ValueError, match="low_water"):
            AdmissionController(4, 4)
        with pytest.raises(ValueError, match="mode"):
            AdmissionController(4, 1, mode="drop")

    def test_hysteresis_engages_high_releases_low(self):
        ctl = AdmissionController(4, 1)
        assert not ctl.update(3)  # below high: stays open
        assert ctl.update(4)  # at high: engages
        assert ctl.update(2)  # inside the band: stays engaged
        assert ctl.update(3)  # even rising again: still engaged
        assert not ctl.update(1)  # at low: releases
        assert not ctl.update(3)  # band re-entered from below: open
        assert ctl.engagements == 1 and ctl.releases == 1

    def test_transition_callback_fires_once_per_edge(self):
        edges = []
        ctl = AdmissionController(4, 1, on_transition=edges.append)
        for depth in (5, 6, 3, 2, 1, 0, 5):
            ctl.update(depth)
        assert edges == ["engaged", "released", "engaged"]

    def test_no_admit_after_shed(self):
        ctl = AdmissionController(2, 0)
        assert ctl.offer(1, 5) == "shed"
        # pressure fully cleared: the same rid must still be refused
        assert ctl.update(0) is False
        assert ctl.offer(1, 0) == "shed"
        assert ctl.offer(2, 0) == "admit"
        assert 1 in ctl.shed_ids and 2 not in ctl.shed_ids

    def test_rejection_counters(self):
        ctl = AdmissionController(2, 0)
        decisions = [ctl.offer(rid, depth) for rid, depth in
                     ((1, 0), (2, 5), (3, 5), (4, 0), (5, 0))]
        # rid 2 engages; 3 and 4 are shed inside the band; 5 is shed too
        # (depth 0 <= low_water releases only via update -- offer(4, 0)
        # released, so 5 is admitted)
        assert decisions == ["admit", "shed", "shed", "admit", "admit"]
        assert ctl.shed == 2
        assert ctl.admitted == 3
        assert ctl.rejections == ctl.shed + ctl.delayed == 2

    def test_delay_mode_does_not_blacklist(self):
        ctl = AdmissionController(2, 0, mode="delay")
        assert ctl.offer(1, 5) == "delay"
        assert ctl.delayed == 1 and not ctl.shed_ids
        ctl.update(0)  # drained: backpressure releases
        assert ctl.offer(1, 0) == "admit"  # same rid, no prejudice
        assert ctl.rejections == 1

    def test_release_on_drain(self):
        ctl = AdmissionController(3, 1)
        assert ctl.offer(1, 3) == "shed"
        assert ctl.offer(2, 2) == "shed"  # still in the band
        assert ctl.offer(3, 1) == "admit"  # drained to low water
        assert ctl.releases == 1


class TestServeTierWrites:
    def test_put_ticketed_and_harvested(self):
        system, store, tier = mk_tier()
        session = tier.session(0, tid=0)
        status, ticket = tier.put(session, 5, 55)
        assert status == "ok" and ticket is not None
        assert session.lsn_floor == ticket.lsn
        assert tier.inflight == 1
        tier.drain()
        assert tier.inflight == 0
        assert tier.stats.get("serve_completed") == 1
        assert tier.ack_latency.count == 1
        assert tier.ack_latency.samples[0] >= 0

    def test_overload_sheds_and_counts(self):
        system, store, tier = mk_tier(high_water=4, low_water=1)
        session = tier.session(0, tid=0)
        status, ticket = tier.put(session, 1, 11, backlog=10)
        assert status == "shed" and ticket is None
        assert tier.stats.get("serve_rejected") == 1
        assert session.lsn_floor == 0  # the op never happened
        assert store.get(0, 1) is None

    def test_shed_rid_never_admitted_later(self):
        system, store, tier = mk_tier(high_water=4, low_water=1)
        session = tier.session(0, tid=0)
        status, _ = tier.put(session, 1, 11, rid=77, backlog=10)
        assert status == "shed"
        status, _ = tier.put(session, 1, 11, rid=77, backlog=0)
        assert status == "shed"
        assert store.get(0, 1) is None

    def test_delay_mode_reoffer_succeeds(self):
        system, store, tier = mk_tier(high_water=4, low_water=1, mode="delay")
        session = tier.session(0, tid=0)
        status, _ = tier.put(session, 1, 11, rid=9, backlog=10)
        assert status == "delay"
        assert tier.stats.get("serve_delayed") == 1
        status, ticket = tier.put(session, 1, 11, rid=9, backlog=0)
        assert status == "ok" and ticket is not None

    def test_relieve_drains_the_stalled_epoch(self):
        system, store, tier = mk_tier(high_water=4, low_water=1)
        session = tier.session(0, tid=0)
        tier.put(session, 1, 11)  # partial epoch: unsealed backlog of 1
        assert store.unsealed_backlog == 1
        status, _ = tier.put(session, 2, 22, backlog=10)
        assert status == "shed"
        # the refusal sealed the pending epoch so the release edge is
        # reachable once the ingress queue empties
        assert tier.stats.get("serve_backpressure_drains") == 1
        assert store.unsealed_backlog == 0
        assert tier.stats.get("serve_completed") == 1  # first put harvested

    def test_backpressure_edges_reach_probe_points(self):
        system, store, tier = mk_tier(high_water=4, low_water=0)
        session = tier.session(0, tid=0)
        tier.put(session, 1, 11, backlog=10)
        assert tier.stats.get("serve_backpressure_engaged") == 1
        tier.put(session, 2, 22, backlog=0)
        assert tier.stats.get("serve_backpressure_released") == 1


class TestServeTierReads:
    def test_get_serves_memtable_and_raises_floor(self):
        system, store, tier = mk_tier()
        writer = tier.session(0, tid=0)
        reader = tier.session(1, tid=1)
        _, ticket = tier.put(writer, 7, 70)
        assert tier.get(reader, 7) == 70
        # the reader observed exactly that key's write, not the tip
        assert reader.lsn_floor == ticket.lsn

    def test_snapshot_falls_back_until_checkpoint_covers(self):
        system, store, tier = mk_tier()
        session = tier.session(0, tid=0)
        _, ticket = tier.put(session, 3, 33)
        # no checkpoint yet: fallback serves the memtable
        assert tier.snapshot_get(session, 3) == 33
        assert tier.stats.get("serve_snapshot_fallback") == 1
        assert tier.stats.get("serve_snapshot_reads") == 0
        tier.drain()
        store.checkpoint(0)
        assert store.watermark >= session.lsn_floor
        assert tier.snapshot_get(session, 3) == 33
        assert tier.stats.get("serve_snapshot_reads") == 1

    def test_snapshot_respects_the_session_floor(self):
        system, store, tier = mk_tier()
        session = tier.session(0, tid=0)
        tier.put(session, 4, 40)
        tier.drain()
        store.checkpoint(0)
        # a write past the checkpoint raises the floor above the watermark
        tier.put(session, 4, 41)
        assert not session.snapshot_covers(store.watermark)
        assert tier.snapshot_get(session, 4) == 41  # fallback, never 40
        assert tier.stats.get("serve_snapshot_fallback") == 1

    def test_stale_snapshot_mutant_serves_the_past(self):
        system, store, tier = mk_tier()
        tier.mutants.add("stale_snapshot_read")
        session = tier.session(0, tid=0)
        tier.put(session, 4, 40)
        tier.drain()
        store.checkpoint(0)
        tier.put(session, 4, 41)
        # the seeded bug ignores the floor: the session reads its own
        # write's past
        assert tier.snapshot_get(session, 4) == 40


class TestServeSessions:
    def test_sessions_are_cached_per_sid(self):
        system, store, tier = mk_tier()
        assert tier.session(0, tid=0) is tier.session(0, tid=0)
        assert tier.session(0, tid=0) is not tier.session(1, tid=1)

    def test_queue_wait_recorded(self):
        system, store, tier = mk_tier()
        session = tier.session(0, tid=0)
        now = store.views[0].ctx.now
        tier.put(session, 1, 11, arrival=now - 500)
        assert tier.queue_wait.count == 1
        assert tier.queue_wait.samples[0] == 500
