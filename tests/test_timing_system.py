"""Unit tests for the functional-with-timing memory system."""

from repro.sim.config import CacheGeometry
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.tilelink.permissions import Perm


def mk(threads=2, **kwargs):
    return TimingSystem(TimingParams(num_threads=threads, **kwargs))


class TestBasicAccesses:
    def test_load_of_unwritten_is_zero(self):
        system = mk()
        assert system.threads[0].load(0x40) == 0

    def test_store_load_roundtrip(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 7)
        assert t.load(0x40) == 7

    def test_l1_hit_faster_than_miss(self):
        system = mk()
        t = system.threads[0]
        t.load(0x40)
        cold = t.now
        t.load(0x40)
        assert t.now - cold == system.params.l1_hit

    def test_mem_fill_slowest(self):
        system = mk()
        t = system.threads[0]
        t.load(0x40)
        assert t.now >= system.params.mem_access

    def test_l2_hit_cost_between(self):
        system = mk()
        a, b = system.threads
        a.load(0x40)  # into L2 (and a's L1)
        start = b.now
        b.load(0x40)
        assert b.now - start == system.params.l2_hit

    def test_cas_success_and_failure(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 1)
        assert t.cas(0x40, 1, 2)
        assert not t.cas(0x40, 99, 3)
        assert t.load(0x40) == 2


class TestCoherence:
    def test_single_writer(self):
        system = mk()
        a, b = system.threads
        a.store(0x40, 1)
        b.store(0x40, 2)
        rec_a = system.l1s[0].get(0x40)
        rec_b = system.l1s[1].get(0x40)
        assert rec_a is None  # revoked
        assert rec_b.perm is Perm.TRUNK

    def test_reader_downgrades_writer(self):
        system = mk()
        a, b = system.threads
        a.store(0x40, 5)
        assert b.load(0x40) == 5
        assert system.l1s[0].get(0x40).perm is Perm.BRANCH
        assert system.l2.get(0x40).dirty  # merged dirty data

    def test_probe_costs_extra(self):
        system = mk()
        a, b = system.threads
        a.store(0x40, 5)
        start = b.now
        b.load(0x40)
        assert b.now - start == system.params.l2_hit + system.params.probe_extra

    def test_upgrade_path(self):
        system = mk()
        a, b = system.threads
        a.load(0x40)
        b.load(0x40)  # both BRANCH
        a.store(0x40, 1)
        assert system.l1s[0].get(0x40).perm is Perm.TRUNK
        assert system.l1s[1].get(0x40) is None


class TestSkipBit:
    def test_fill_from_clean_l2_sets_skip(self):
        system = mk()
        t = system.threads[0]
        t.load(0x40)
        assert system.l1s[0].get(0x40).skip

    def test_fill_from_dirty_l2_leaves_skip_unset(self):
        system = mk()
        a, b = system.threads
        a.store(0x40, 1)
        b.load(0x40)  # L2 now dirty
        system.l1s[1].remove(0x40)
        system.l2.get(0x40).directory.downgrade(1, Perm.NONE)
        b.load(0x40)  # refill from dirty L2 -> GrantDataDirty
        assert not system.l1s[1].get(0x40).skip

    def test_store_clears_skip(self):
        system = mk()
        t = system.threads[0]
        t.load(0x40)
        t.store(0x40, 1)
        rec = system.l1s[0].get(0x40)
        assert rec.dirty and not rec.skip

    def test_skip_disabled_config(self):
        system = mk(skip_it=False)
        t = system.threads[0]
        t.load(0x40)
        assert not system.l1s[0].get(0x40).skip


class TestWritebacks:
    def test_clean_persists_prior_store(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 9)
        t.clean(0x40)
        t.fence()
        assert system.persisted[0x40] == 9

    def test_flush_invalidates_everywhere(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 9)
        t.flush(0x40)
        assert system.l1s[0].get(0x40) is None
        assert system.l2.get(0x40) is None
        # the DRAM write is still in flight until the fence retires it
        t.fence()
        assert system.persisted[0x40] == 9

    def test_writeback_does_not_cover_later_stores(self):
        """§4: a writeback snapshots only the writes that precede it."""
        system = mk()
        t = system.threads[0]
        t.store(0x40, 1)
        t.clean(0x40)
        t.store(0x40, 2)
        t.fence()
        assert system.persisted[0x40] == 1
        assert system.arch[0x40] == 2

    def test_skip_it_drops_redundant_clean(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 1)
        t.clean(0x40)
        before = t.now
        t.clean(0x40)  # resident, clean, skip set after the first clean
        assert t.now - before == system.params.cbo_skip
        assert system.stats.get("cbo_skipped") == 1

    def test_fence_waits_for_async_writebacks(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 1)
        issue_done = t.now + system.params.cbo_issue
        t.clean(0x40)
        t.fence()
        assert t.now >= issue_done + system.params.cbo_dram_writeback

    def test_fence_with_nothing_outstanding_is_cheap(self):
        system = mk()
        t = system.threads[0]
        t.fence()
        assert t.now == system.params.fence_base

    def test_fshr_limit_serializes(self):
        system = mk()
        t = system.threads[0]
        n = system.params.num_fshrs + 4
        for i in range(n):
            t.store(0x1000 + i * 64, i)
        for i in range(n):
            t.clean(0x1000 + i * 64)
        t.fence()
        # with more writebacks than FSHRs the last ones queue behind the
        # first completions: the fence waits longer than one latency
        assert t.now > system.params.cbo_dram_writeback + system.params.fence_base

    def test_cbo_on_remote_dirty_line(self):
        system = mk()
        a, b = system.threads
        a.store(0x40, 3)
        b.flush(0x40)
        b.fence()
        assert system.persisted[0x40] == 3
        assert system.l1s[0].get(0x40) is None  # probe revoked the owner


class TestEvictionsAndCrash:
    def test_l1_eviction_dirties_l2(self):
        params = TimingParams(
            num_threads=1, l1=CacheGeometry(size_bytes=256, ways=2)
        )
        system = TimingSystem(params)
        t = system.threads[0]
        stride = params.l1.num_sets * 64
        for i in range(4):
            t.store(0x10000 + i * stride, i + 1)
        assert system.stats.get("l1_evict_writebacks") >= 1
        # evicted data still readable via L2
        assert t.load(0x10000) == 1

    def test_l2_eviction_persists_dirty_data(self):
        params = TimingParams(
            num_threads=1,
            l1=CacheGeometry(size_bytes=128, ways=2),
            l2=CacheGeometry(size_bytes=256, ways=2),
        )
        system = TimingSystem(params)
        t = system.threads[0]
        stride = params.l2.num_sets * 64
        for i in range(6):
            t.store(0x20000 + i * stride, i + 1)
        assert system.stats.get("l2_evict_writebacks") >= 1
        # inclusivity maintained: nothing cached in L1 that is absent in L2
        for line, _ in system.l1s[0].items():
            assert system.l2.get(line) is not None

    def test_crash_drops_unpersisted(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 1)
        t.clean(0x40)
        t.fence()
        t.store(0x80, 2)  # never persisted
        survived = system.crash()
        assert survived.get(0x40) == 1
        assert 0x80 not in survived
        assert system.l1s[0].get(0x40) is None  # caches empty

    def test_persist_all_marks_state(self):
        system = mk()
        t = system.threads[0]
        t.store(0x40, 1)
        system.persist_all()
        assert system.persisted[0x40] == 1
        rec = system.l1s[0].get(0x40)
        assert not rec.dirty and rec.skip
