"""Tests for :mod:`repro.workloads.openloop` — open-loop client generators."""

import statistics

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.serve.tier import ServeTier
from repro.store import SharedLogStore
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.workloads.openloop import (
    _ZETA_CACHE,
    OpenLoopClient,
    PoissonArrivals,
    ZipfianKeys,
    zeta,
)


def mk_client(update_fraction=1.0, snapshot_fraction=0.0, mean_interarrival=200.0):
    params = TimingParams(num_threads=1)
    system = TimingSystem(params)
    heap = SimHeap(params.line_bytes)
    views = [PMemView(system.threads[0], make_policy("none"),
                      make_optimizer("plain", heap))]
    store = SharedLogStore(heap, views, log_capacity=128, num_buckets=16,
                           batch_size=4)
    tier = ServeTier(store)
    client = OpenLoopClient(
        tier,
        tier.session(0, tid=0),
        ZipfianKeys(64, seed=3),
        PoissonArrivals(mean_interarrival, seed=5),
        update_fraction=update_fraction,
        snapshot_fraction=snapshot_fraction,
        value_base=1_000,
        seed=9,
    )
    return store, tier, client


class TestZipfianKeys:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ZipfianKeys(0)
        with pytest.raises(ValueError, match="theta"):
            ZipfianKeys(10, theta=1.0)

    def test_keys_stay_in_range_and_are_deterministic(self):
        a = [ZipfianKeys(1000, seed=4).next() for _ in range(200)]
        b = [ZipfianKeys(1000, seed=4).next() for _ in range(200)]
        assert a == b
        assert all(1 <= key <= 1000 for key in a)
        assert [ZipfianKeys(1000, seed=5).next() for _ in range(200)] != a

    def test_ranks_are_zipf_skewed(self):
        gen = ZipfianKeys(10_000, seed=7)
        ranks = [gen.next_rank() for _ in range(2000)]
        # rank 1 is the hottest by a wide margin (theta=0.99)
        assert ranks.count(1) > 0.05 * len(ranks)
        assert ranks.count(1) > ranks.count(max(ranks))

    def test_scramble_spreads_the_hot_ranks(self):
        gen = ZipfianKeys(10_000, seed=7)
        keys = [gen.next() for _ in range(2000)]
        hottest = max(set(keys), key=keys.count)
        # popularity survives scrambling but the hot key is not rank 1
        assert keys.count(hottest) > 0.05 * len(keys)
        assert hottest != 1

    def test_zeta_is_cached(self):
        _ZETA_CACHE.pop((12_345, 0.5), None)
        first = zeta(12_345, 0.5)
        assert (12_345, 0.5) in _ZETA_CACHE
        assert zeta(12_345, 0.5) == first
        ZipfianKeys(12_345, theta=0.5)  # constructor reuses the cache
        assert _ZETA_CACHE[(12_345, 0.5)] == first


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            PoissonArrivals(0.0)

    def test_stamps_are_integer_and_non_decreasing(self):
        gen = PoissonArrivals(100.0, seed=11)
        stamps = [gen.next() for _ in range(500)]
        assert all(isinstance(s, int) for s in stamps)
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))

    def test_mean_interarrival_matches_configuration(self):
        gen = PoissonArrivals(250.0, seed=13)
        stamps = [gen.next() for _ in range(4000)]
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert statistics.mean(gaps) == pytest.approx(250.0, rel=0.1)

    def test_determinism_under_seed(self):
        a = [PoissonArrivals(100.0, seed=2).next() for _ in range(50)]
        b = [PoissonArrivals(100.0, seed=2).next() for _ in range(50)]
        assert a == b


class TestOpenLoopClient:
    def test_mix_validation(self):
        store, tier, _ = mk_client()
        with pytest.raises(ValueError, match="mix"):
            OpenLoopClient(
                tier,
                tier.session(1, tid=0),
                ZipfianKeys(8),
                PoissonArrivals(100.0),
                update_fraction=0.7,
                snapshot_fraction=0.4,
            )

    def test_idle_step_advances_to_the_next_arrival(self):
        store, tier, client = mk_client(mean_interarrival=5_000.0)
        ctx = store.views[0].ctx
        before = ctx.now
        client.step(ctx)
        # the queue was empty: the clock jumped to the arrival it served
        assert ctx.now > before
        assert client.served == 1

    def test_arrivals_queue_rather_than_stall(self):
        store, tier, client = mk_client(mean_interarrival=50.0)
        ctx = store.views[0].ctx
        ctx.now += 2_000  # the store "fell behind" by 2k cycles
        client.step(ctx)
        # every arrival up to now materialised; only one was served
        assert client.generated > 10
        assert len(client.pending) == client.generated - client.served
        assert client.max_queue_depth >= len(client.pending)

    def test_served_requests_reach_the_store(self):
        store, tier, client = mk_client(mean_interarrival=100.0)
        ctx = store.views[0].ctx
        for _ in range(20):
            client.step(ctx)
        assert client.served == 20
        assert store.wal.records_appended > 0
        assert tier.stats.get("serve_admitted") == 20
