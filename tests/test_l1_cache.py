"""Unit tests for the L1 data cache request paths."""

import pytest

from repro.sim.config import CacheGeometry, SoCParams
from repro.tilelink.permissions import Perm
from repro.uarch.cpu import Instr
from repro.uarch.l1 import FireStatus
from repro.uarch.requests import MemOp, MemRequest
from repro.uarch.soc import Soc

LINE = 0x8000


def soc_with_resident_line(dirty=True, **kwargs):
    soc = Soc(SoCParams(**kwargs))
    program = [Instr.store(LINE, 42)]
    if not dirty:
        program += [Instr.clean(LINE), Instr.fence()]
    soc.run_programs([program])
    soc.drain()
    return soc


class TestLoads:
    def test_load_hit_returns_data(self):
        soc = soc_with_resident_line()
        outcome = soc.l1s[0].fire(MemRequest(MemOp.LOAD, LINE), soc.engine.cycle)
        assert outcome.status is FireStatus.OK_NOW
        assert outcome.value == 42

    def test_load_miss_allocates_mshr(self):
        soc = Soc()
        outcome = soc.l1s[0].fire(MemRequest(MemOp.LOAD, 0x9000), 1)
        assert outcome.status is FireStatus.OK_LATER
        assert any(m.busy for m in soc.l1s[0].mshrs)

    def test_load_word_granularity(self):
        soc = Soc()
        soc.run_programs([[Instr.store(LINE, 1), Instr.store(LINE + 8, 2)]])
        soc.drain()
        l1 = soc.l1s[0]
        assert l1.fire(MemRequest(MemOp.LOAD, LINE), 1).value == 1
        assert l1.fire(MemRequest(MemOp.LOAD, LINE + 8), 1).value == 2

    def test_unaligned_word_rejected(self):
        with pytest.raises(ValueError):
            MemRequest(MemOp.LOAD, LINE + 3)

    def test_secondary_load_rides_mshr(self):
        soc = Soc()
        l1 = soc.l1s[0]
        first = l1.fire(MemRequest(MemOp.LOAD, 0x9000), 1)
        second = l1.fire(MemRequest(MemOp.LOAD, 0x9008), 1)
        assert first.status is FireStatus.OK_LATER
        assert second.status is FireStatus.OK_LATER
        assert sum(m.busy for m in l1.mshrs) == 1  # one MSHR, two requests

    def test_store_cannot_ride_load_mshr(self):
        """RPQ permission rule (§3.3): store secondary on a load MSHR nacks."""
        soc = Soc()
        l1 = soc.l1s[0]
        l1.fire(MemRequest(MemOp.LOAD, 0x9000), 1)
        outcome = l1.fire(MemRequest(MemOp.STORE, 0x9008, data=1), 1)
        assert outcome.status is FireStatus.NACK

    def test_load_rides_store_mshr(self):
        soc = Soc()
        l1 = soc.l1s[0]
        l1.fire(MemRequest(MemOp.STORE, 0x9000, data=1), 1)
        outcome = l1.fire(MemRequest(MemOp.LOAD, 0x9008), 1)
        assert outcome.status is FireStatus.OK_LATER


class TestStores:
    def test_store_hit_dirties(self):
        soc = soc_with_resident_line(dirty=False)
        l1 = soc.l1s[0]
        outcome = l1.fire(MemRequest(MemOp.STORE, LINE, data=9), 1)
        assert outcome.status is FireStatus.OK_NOW
        perm, dirty, skip = l1.line_state(LINE)
        assert perm is Perm.TRUNK and dirty and not skip

    def test_store_to_shared_line_upgrades(self):
        soc = Soc()
        # core 0 and 1 both read -> both BRANCH
        soc.run_programs([[Instr.load(LINE)], [Instr.load(LINE)]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE)[0] is Perm.BRANCH
        soc.run_programs([[Instr.store(LINE, 5)]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE)[0] is Perm.TRUNK
        assert soc.l1s[1].line_state(LINE) is None  # revoked by the probe
        assert soc.l1s[0].stats.get("store_upgrades") == 1

    def test_mshr_exhaustion_nacks(self):
        soc = Soc()
        l1 = soc.l1s[0]
        for i in range(soc.params.num_l1_mshrs):
            assert l1.fire(
                MemRequest(MemOp.STORE, 0xA000 + i * 64, data=i), 1
            ).ok
        outcome = l1.fire(MemRequest(MemOp.STORE, 0xF000, data=0), 1)
        assert outcome.status is FireStatus.NACK
        assert l1.stats.get("mshr_full_nack") == 1


class TestEviction:
    def test_capacity_eviction_writes_back(self):
        # tiny L1: 2 sets x 2 ways
        params = SoCParams(
            l1=CacheGeometry(size_bytes=256, ways=2), num_l1_mshrs=2
        )
        soc = Soc(params)
        stride = params.l1.num_sets * 64  # same set
        program = [Instr.store(0x10000 + i * stride, i) for i in range(3)]
        soc.run_programs([program])
        soc.drain()
        assert soc.l1s[0].wbu.evictions >= 1
        # the evicted dirty line made it to L2 intact
        victim = 0x10000
        assert soc.coherent_value(victim) == 0

    def test_eviction_data_survives_roundtrip(self):
        params = SoCParams(l1=CacheGeometry(size_bytes=256, ways=2))
        soc = Soc(params)
        stride = params.l1.num_sets * 64
        addresses = [0x20000 + i * stride for i in range(4)]
        soc.run_programs([[Instr.store(a, i + 1) for i, a in enumerate(addresses)]])
        soc.drain()
        soc.run_programs([[Instr.load(a) for a in addresses]])
        soc.drain()
        for i, a in enumerate(addresses):
            assert soc.coherent_value(a) == i + 1


class TestCboFiring:
    def test_cbo_racing_own_mshr_nacks(self):
        soc = Soc()
        l1 = soc.l1s[0]
        l1.fire(MemRequest(MemOp.STORE, 0x9000, data=1), 1)
        outcome = l1.fire(MemRequest(MemOp.CBO_FLUSH, 0x9000), 1)
        assert outcome.status is FireStatus.NACK
        assert l1.stats.get("cbo_nack_mshr") == 1

    def test_cbo_miss_still_accepted(self):
        """A missing line still sends RootRelease (§5.2): dirty data may
        exist elsewhere in the hierarchy."""
        soc = Soc()
        outcome = soc.l1s[0].fire(MemRequest(MemOp.CBO_FLUSH, 0xB000), 1)
        assert outcome.status is FireStatus.OK_NOW
        soc.drain()
        assert soc.l2.stats.get("root_release_flush") == 1

    def test_flush_invalidates_line(self):
        soc = soc_with_resident_line()
        soc.run_programs([[Instr.flush(LINE), Instr.fence()]])
        soc.drain()
        assert soc.l1s[0].line_state(LINE) is None

    def test_clean_keeps_line_resident(self):
        soc = soc_with_resident_line()
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        perm, dirty, _ = soc.l1s[0].line_state(LINE)
        assert perm is Perm.TRUNK and not dirty
