"""Functional tests of the four persistent set structures.

Each structure is checked against a Python ``set`` reference model under
every (policy, optimizer) pairing the paper benchmarks, plus targeted
shape tests per structure.
"""

import random

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer, OPTIMIZER_NAMES
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures import STRUCTURES
from repro.persist.structures.base import persisted_reader
from repro.persist.structures.skiplist import MAX_LEVEL, deterministic_height
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def build(structure_name, optimizer_name="plain", policy_name="manual"):
    system = TimingSystem(
        TimingParams(num_threads=1, skip_it=optimizer_name == "skipit")
    )
    heap = SimHeap()
    optimizer = make_optimizer(optimizer_name, heap)
    policy = make_policy(policy_name)
    cls = STRUCTURES[structure_name]
    structure = cls(heap, field_stride=optimizer.field_stride)
    view = PMemView(system.threads[0], policy, optimizer)
    structure.initialize(view)
    return structure, view, system


@pytest.mark.parametrize("structure_name", sorted(STRUCTURES))
class TestBasicSetSemantics:
    def test_insert_then_contains(self, structure_name):
        s, view, _ = build(structure_name)
        assert s.insert(view, 10)
        assert s.contains(view, 10)
        assert not s.contains(view, 11)

    def test_duplicate_insert_rejected(self, structure_name):
        s, view, _ = build(structure_name)
        assert s.insert(view, 5)
        assert not s.insert(view, 5)

    def test_delete(self, structure_name):
        s, view, _ = build(structure_name)
        s.insert(view, 7)
        assert s.delete(view, 7)
        assert not s.contains(view, 7)
        assert not s.delete(view, 7)

    def test_delete_missing(self, structure_name):
        s, view, _ = build(structure_name)
        assert not s.delete(view, 99)

    def test_nonpositive_keys_rejected(self, structure_name):
        s, view, _ = build(structure_name)
        with pytest.raises(ValueError):
            s.insert(view, 0)

    def test_many_keys(self, structure_name):
        s, view, _ = build(structure_name)
        keys = random.Random(3).sample(range(1, 500), 120)
        for k in keys:
            assert s.insert(view, k)
        for k in keys:
            assert s.contains(view, k)

    def test_reference_model_fuzz(self, structure_name):
        s, view, _ = build(structure_name)
        reference = set()
        rng = random.Random(99)
        for _ in range(400):
            key = rng.randint(1, 60)
            op = rng.random()
            if op < 0.45:
                assert s.insert(view, key) == (key not in reference)
                reference.add(key)
            elif op < 0.8:
                assert s.delete(view, key) == (key in reference)
                reference.discard(key)
            else:
                assert s.contains(view, key) == (key in reference)
        for key in range(1, 61):
            assert s.contains(view, key) == (key in reference)


@pytest.mark.parametrize("optimizer_name", OPTIMIZER_NAMES)
@pytest.mark.parametrize("policy_name", ["automatic", "nvtraverse", "manual"])
class TestAllConfigurations:
    """The full §7.4 matrix stays functionally correct."""

    def test_list_under_configuration(self, optimizer_name, policy_name):
        s, view, _ = build("list", optimizer_name, policy_name)
        reference = set()
        rng = random.Random(11)
        for _ in range(120):
            key = rng.randint(1, 30)
            if rng.random() < 0.5:
                assert s.insert(view, key) == (key not in reference)
                reference.add(key)
            else:
                assert s.delete(view, key) == (key in reference)
                reference.discard(key)
        for key in range(1, 31):
            assert s.contains(view, key) == (key in reference)


class TestSkipListShape:
    def test_height_bounds(self):
        for key in range(1, 2000):
            assert 1 <= deterministic_height(key) <= MAX_LEVEL

    def test_height_distribution_geometric_ish(self):
        heights = [deterministic_height(k) for k in range(1, 4096)]
        ones = heights.count(1)
        twos = heights.count(2)
        assert ones > twos  # taller towers are rarer

    def test_upper_levels_subset_of_bottom(self):
        s, view, _ = build("skiplist")
        for k in random.Random(5).sample(range(1, 300), 60):
            s.insert(view, k)
        read = lambda addr: view.ctx.system.arch.get(addr, 0)
        bottom = set()
        node = read(s._field(s._head.base, 2))
        while node:
            bottom.add(read(s._field(node, 0)))
            node = read(s._field(node, 2))
        for level in range(1, MAX_LEVEL):
            node = read(s._field(s._head.base, 2 + level))
            while node:
                assert read(s._field(node, 0)) in bottom
                node = read(s._field(node, 2 + level))


class TestBstShape:
    def test_pointer_tagging_declared(self):
        assert STRUCTURES["bst"].uses_pointer_tagging

    def test_external_property(self):
        """All real keys live in leaves; internal nodes only route."""
        s, view, _ = build("bst")
        keys = random.Random(4).sample(range(1, 200), 40)
        for k in keys:
            s.insert(view, k)
        recovered = s.recover_keys(
            persisted_reader(view.ctx.system.arch)
        )
        assert recovered == set(keys)


class TestRecoverKeysOnArch:
    @pytest.mark.parametrize("structure_name", sorted(STRUCTURES))
    def test_recover_matches_live_set(self, structure_name):
        s, view, _ = build(structure_name)
        keys = random.Random(8).sample(range(1, 400), 50)
        for k in keys:
            s.insert(view, k)
        for k in keys[:20]:
            s.delete(view, k)
        live = set(keys[20:])
        recovered = s.recover_keys(persisted_reader(view.ctx.system.arch))
        assert recovered == live
