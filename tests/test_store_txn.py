"""Unit tests for :mod:`repro.store.txn` — multi-key atomic transactions.

Covers the buffered :class:`Transaction` handle, the contiguous-run WAL
encoding (``OP_TXN``* + ``OP_TXN_COMMIT``), recovery's all-or-nothing
replay on both the private and the shared log, and the serve-tier
``transact`` path's ticket bookkeeping.
"""

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store import (
    OP_TXN,
    OP_TXN_COMMIT,
    DurableStore,
    SharedLogStore,
    Transaction,
    TxnAborted,
    TxnTicket,
    recover,
    ticket_lsns,
)
from repro.store.layout import F_LSN
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def mk_store(optimizer="skipit", **kwargs):
    params = TimingParams(num_threads=1, skip_it=(optimizer == "skipit"))
    system = TimingSystem(params)
    heap = SimHeap(params.line_bytes)
    view = PMemView(
        system.threads[0], make_policy("none"), make_optimizer(optimizer, heap)
    )
    kwargs.setdefault("log_capacity", 64)
    kwargs.setdefault("num_buckets", 16)
    store = DurableStore(heap, view, **kwargs)
    return system, heap, view, store


def mk_shared(optimizer="skipit", threads=3, **kwargs):
    params = TimingParams(num_threads=threads, skip_it=(optimizer == "skipit"))
    system = TimingSystem(params)
    heap = SimHeap(params.line_bytes)
    opt = make_optimizer(optimizer, heap)
    policy = make_policy("none")
    views = [PMemView(ctx, policy, opt) for ctx in system.threads[:threads]]
    kwargs.setdefault("log_capacity", 128)
    kwargs.setdefault("num_buckets", 16)
    store = SharedLogStore(heap, views, **kwargs)
    return system, heap, views, store


def recovered(system, store, at=None, **kwargs):
    return recover(
        persisted_reader(system.persisted_image(at)), store.layout, **kwargs
    )


class TestTransactionBuffer:
    def test_reads_see_own_buffered_writes(self):
        system, heap, view, store = mk_store()
        store.put(1, 11)
        txn = store.begin()
        assert txn.get(1) == 11  # falls through to the store
        txn.put(1, 99)
        assert txn.get(1) == 99  # own write wins
        txn.delete(1)
        assert txn.get(1) is None  # buffered delete reads as absent
        assert store.get(1) == 11  # nothing published yet

    def test_buffered_writes_do_not_touch_the_log(self):
        system, heap, view, store = mk_store()
        before = store.wal.records_appended
        txn = store.begin()
        txn.put(1, 11)
        txn.put(2, 22)
        assert store.wal.records_appended == before

    def test_put_validates_like_the_store(self):
        system, heap, view, store = mk_store()
        txn = store.begin()
        with pytest.raises(ValueError, match="keys"):
            txn.put(0, 1)
        with pytest.raises(ValueError, match="values"):
            txn.put(1, 0)
        with pytest.raises(ValueError, match="keys"):
            txn.delete(-3)

    def test_finished_txn_rejects_further_use(self):
        system, heap, view, store = mk_store()
        txn = store.begin()
        txn.abort()
        for call in (
            lambda: txn.get(1),
            lambda: txn.put(1, 1),
            lambda: txn.delete(1),
            lambda: txn.commit(),
            lambda: txn.abort(),
        ):
            with pytest.raises(TxnAborted):
                call()

    def test_abort_discards_and_counts(self):
        system, heap, view, store = mk_store()
        before = store.wal.records_appended
        txn = store.begin()
        txn.put(5, 55)
        txn.abort()
        assert store.get(5) is None
        assert store.wal.records_appended == before
        assert store.stats.get("store_txn_aborts") == 1


class TestCommitEncoding:
    def test_commit_appends_contiguous_run_and_applies(self):
        system, heap, view, store = mk_store(batch_size=8)
        txn = store.begin()
        txn.put(1, 11)
        txn.put(2, 22)
        txn.delete(3)
        ticket = txn.commit()
        assert ticket.records == 3
        assert list(ticket_lsns(ticket)) == list(
            range(ticket.first_lsn, ticket.lsn + 1)
        )
        assert ticket.lsn - ticket.first_lsn == 3  # 3 payload + commit
        # applied to the memtable immediately (reads see it pre-ack)
        assert store.get(1) == 11 and store.get(2) == 22
        assert store.stats.get("store_txns") == 1
        assert store.stats.get("store_txn_records") == 3

    def test_run_ops_are_txn_then_commit(self):
        system, heap, view, store = mk_store(batch_size=8)
        seen = []
        store.wal.on_append = lambda lsn, op, key, value: seen.append(
            (lsn, op, key, value)
        )
        txn = store.begin()
        txn.put(7, 77)
        txn.delete(8)
        ticket = txn.commit()
        assert [op for _, op, _, _ in seen] == [OP_TXN, OP_TXN, OP_TXN_COMMIT]
        assert seen[0][2:] == (7, 77)
        assert seen[1][2:] == (8, 0)  # delete encodes as VALUE 0
        assert seen[2][2:] == (ticket.txn_id, 2)  # commit carries the count
        assert [lsn for lsn, _, _, _ in seen] == list(ticket_lsns(ticket))

    def test_empty_txn_commits_without_logging(self):
        system, heap, view, store = mk_store(batch_size=8)
        before = store.wal.records_appended
        ticket = store.begin().commit()
        assert ticket.acked and ticket.records == 0
        assert store.wal.records_appended == before
        assert list(ticket_lsns(ticket)) == []

    def test_txn_is_one_ticket_toward_the_epoch(self):
        system, heap, view, store = mk_store(batch_size=2)
        first = store.begin()
        first.put(1, 11)
        first.put(2, 22)
        first.put(3, 33)
        t1 = first.commit()
        assert not t1.acked  # 3 writes, still only 1 of 2 batch tickets
        second = store.begin()
        second.put(4, 44)
        t2 = second.commit()
        assert t1.acked and t2.acked  # 2nd ticket sealed the epoch
        assert store.stats.get("store_fences") == 1

    def test_oversized_txn_rejected(self):
        system, heap, view, store = mk_store(batch_size=2, log_capacity=16)
        txn = store.begin()
        for key in range(1, 16):
            txn.put(key, key + 10)
        with pytest.raises(ValueError, match="capacity|fit"):
            txn.commit()

    def test_large_txn_forces_checkpoint_for_room(self):
        system, heap, view, store = mk_store(
            batch_size=2, log_capacity=32, checkpoint_every=1000
        )
        i = 0
        while store.wal.next_lsn + 11 - store.watermark <= 32:
            i += 1  # fill until an 11-slot run cannot fit any more
            store.put(i % 8 + 1, 100 + i)
        checkpoints = store.stats.get("store_checkpoints")
        txn = store.begin()
        for key in range(1, 11):
            txn.put(key, 900 + key)
        ticket = txn.commit()  # needs an 11-slot run: must make room
        assert store.stats.get("store_checkpoints") > checkpoints
        assert ticket.records == 10

    def test_ticket_lsns_single_slot_for_plain_tickets(self):
        system, heap, view, store = mk_store()
        ticket = store.put(1, 11)
        assert list(ticket_lsns(ticket)) == [ticket.lsn]
        txn_ticket = TxnTicket(lsn=9, txn_id=1, first_lsn=5, records=4)
        assert list(ticket_lsns(txn_ticket)) == [5, 6, 7, 8, 9]


class TestTxnRecovery:
    def test_committed_txn_replays_whole(self):
        system, heap, view, store = mk_store(batch_size=4)
        store.put(1, 11)
        txn = store.begin()
        txn.put(2, 22)
        txn.put(3, 33)
        txn.delete(1)
        txn.commit()
        store.sync()
        state = recovered(system, store)
        assert state.items == {2: 22, 3: 33}
        assert state.replayed_txns == 1
        assert state.rolled_back_txns == 0

    def test_unsealed_txn_rolls_back_whole(self):
        system, heap, view, store = mk_store(batch_size=8)
        store.put(1, 11)
        store.sync()
        txn = store.begin()
        txn.put(2, 22)
        txn.put(3, 33)
        txn.commit()  # epoch not sealed: no marker, not durable
        system.persist_all()  # records reach pmem, the marker never does
        state = recovered(system, store)
        assert state.items == {1: 11}  # all of the txn, or none: none
        assert state.applied_lsn == store.acked_lsn  # nothing acked, nothing applied
        assert state.applied_lsn < store.wal.next_lsn - 1

    def test_torn_commit_record_rolls_back_the_prefix(self):
        system, heap, view, store = mk_store(batch_size=8)
        store.put(1, 11)
        store.sync()
        txn = store.begin()
        txn.put(2, 22)
        txn.put(3, 33)
        ticket = txn.commit()
        store.sync()
        # crash image torn mid-run: zero the commit record's LSN field
        image = dict(system.persisted_image())
        image[store.layout.field_addr(store.layout.slot_of(ticket.lsn), F_LSN)] = 0
        state = recover(persisted_reader(image), store.layout)
        assert state.items == {1: 11}
        assert state.rolled_back_txns == 1

    def test_txn_partial_flag_applies_torn_prefix(self):
        # the seeded txn_partial_replay mutant: same torn image, but the
        # surviving payload prefix leaks into the recovered state
        system, heap, view, store = mk_store(batch_size=8)
        store.put(1, 11)
        store.sync()
        txn = store.begin()
        txn.put(2, 22)
        txn.put(3, 33)
        ticket = txn.commit()
        store.sync()
        image = dict(system.persisted_image())
        image[store.layout.field_addr(store.layout.slot_of(ticket.lsn), F_LSN)] = 0
        state = recover(persisted_reader(image), store.layout, txn_partial=True)
        assert state.items == {1: 11, 2: 22, 3: 33}  # the bug, visibly

    def test_mixed_plain_and_txn_round_trip(self):
        system, heap, view, store = mk_store(batch_size=4)
        store.put(1, 11)
        txn = store.begin()
        txn.put(2, 22)
        txn.commit()
        store.put(3, 33)
        aborted = store.begin()
        aborted.put(4, 44)
        aborted.abort()
        store.sync()
        state = recovered(system, store)
        assert state.items == {1: 11, 2: 22, 3: 33}
        assert state.applied_lsn == store.acked_lsn


class TestSharedTxn:
    def test_run_is_contiguous_under_interleaving(self):
        system, heap, views, store = mk_shared(threads=3, batch_size=8)
        txn = store.begin(1)
        txn.put(1, 11)
        txn.put(2, 22)
        # other threads write between begin and commit: buffering means
        # the run is reserved only at commit, so it stays contiguous
        store.put(0, 5, 55)
        store.put(2, 6, 66)
        ticket = txn.commit()
        assert ticket.tid == 1
        assert ticket.lsn - ticket.first_lsn == 2
        store.sync()
        state = recovered(system, store)
        assert state.items == {1: 11, 2: 22, 5: 55, 6: 66}
        assert state.replayed_txns == 1

    def test_one_seal_makes_whole_txn_durable(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=8)
        txn = store.begin(0)
        for key in range(1, 5):
            txn.put(key, key * 11)
        ticket = txn.commit()
        assert not ticket.acked
        fences = store.stats.get("store_fences")
        store.sync(0)
        assert ticket.acked and ticket.durable_now is not None
        assert store.stats.get("store_fences") == fences + 1

    def test_txn_read_sees_other_threads_unacked_writes(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=8)
        store.put(0, 9, 99)
        txn = store.begin(1)
        assert txn.get(9) == 99  # shared memtable, pre-ack


class TestServeTierTransact:
    def mk_tier(self, **kwargs):
        from repro.serve.tier import ServeTier

        system, heap, views, store = mk_shared(threads=2, batch_size=4)
        tier = ServeTier(store, **kwargs)
        return system, store, tier

    def test_transact_advances_floor_only_at_commit(self):
        system, store, tier = self.mk_tier()
        session = tier.session(1, tid=0)
        status, ticket = tier.transact(session, {1: 11, 2: 22, 3: 0})
        assert status == "ok"
        assert ticket.records == 3
        assert session.lsn_floor == ticket.lsn  # the commit record, not
        # an intermediate payload LSN
        assert tier.stats.get("serve_txns") == 1
        assert tier.inflight == 1

    def test_transact_harvests_after_drain(self):
        system, store, tier = self.mk_tier()
        session = tier.session(1, tid=0)
        tier.transact(session, {1: 11})
        tier.drain(0)
        assert tier.inflight == 0
        assert tier.stats.get("serve_completed") == 1
        assert tier.ack_latency.count == 1

    def test_empty_transact_completes_immediately(self):
        system, store, tier = self.mk_tier()
        session = tier.session(1, tid=0)
        status, ticket = tier.transact(session, {})
        assert status == "ok" and ticket.acked
        assert tier.inflight == 0
        assert tier.stats.get("serve_completed") == 1

    def test_shed_transact_leaves_no_trace(self):
        system, store, tier = self.mk_tier(high_water=1, low_water=0)
        session = tier.session(1, tid=0)
        records = store.wal.records_appended
        status, ticket = tier.transact(
            session, {1: 11, 2: 22}, backlog=50
        )
        assert status == "shed" and ticket is None
        assert tier.stats.get("serve_rejected") == 1
        # no begin, no append, no memtable write: the txn never happened
        assert store.get(0, 1) is None
        assert store.stats.get("store_txns") == 0
