"""Tests for the interconnect tracer — and trace-level protocol checks."""

from repro.sim.trace import TraceRecorder
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINE = 0x9000


class TestRecorder:
    def test_records_acquire_grant_grantack(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.load(LINE)]])
        soc.drain()
        # two Acquires: L1->L2 and L2->DRAM
        assert trace.count(message_type="Acquire", address=LINE) == 2
        assert trace.count(message_type="GrantData", address=LINE) >= 1
        assert trace.count(message_type="GrantAck", address=LINE) == 1

    def test_filter_by_channel(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.load(LINE)]])
        soc.drain()
        l1_side = trace.filter(channel="l10.a")
        assert all(e.channel == "l10.a" for e in l1_side)
        assert l1_side  # the acquire went out on core 0's A channel

    def test_dump_and_clear(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.load(LINE)]])
        assert "Acquire" in trace.dump()
        trace.clear()
        assert trace.events == []

    def test_event_str_format(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.load(LINE)]])
        text = str(trace.events[0])
        assert "Acquire" in text and hex(LINE) in text


class TestProtocolViaTrace:
    def test_skipped_cbo_produces_no_root_release(self):
        """The whole point of Skip It: nothing leaves the L1."""
        soc = Soc()
        soc.run_programs(
            [[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]]
        )
        soc.drain()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        root_releases = [
            e for e in trace.filter(message_type="ProbeAck") if "FLUSH" in e.detail or "CLEAN" in e.detail
        ]
        assert root_releases == []

    def test_naive_cbo_produces_root_release(self):
        soc = Soc(Soc().params.with_skip_it(False))
        soc.run_programs(
            [[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]]
        )
        soc.drain()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([[Instr.clean(LINE), Instr.fence()]])
        soc.drain()
        root_releases = [
            e for e in trace.filter(message_type="ProbeAck") if "CLEAN" in e.detail
        ]
        assert len(root_releases) == 1

    def test_dirty_flush_carries_line_payload(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs(
            [[Instr.store(LINE, 1), Instr.flush(LINE), Instr.fence()]]
        )
        soc.drain()
        flushes = [
            e for e in trace.filter(message_type="ProbeAck") if "FLUSH" in e.detail
        ]
        assert len(flushes) == 1
        assert "data[64B]" in flushes[0].detail

    def test_every_grant_is_acknowledged(self):
        soc = Soc()
        trace = TraceRecorder.attach(soc)
        program = [Instr.store(0x9000 + i * 64, i) for i in range(10)]
        soc.run_programs([program, [Instr.load(0x9000)]])
        soc.drain()
        grants = trace.count(message_type="GrantData", channel="l1")
        acks = trace.count(message_type="GrantAck")
        assert grants == acks
