"""Unit tests for the RISC-V CMO/FENCE instruction encodings."""

import pytest

from repro.core.encodings import (
    CboInstruction,
    CboOp,
    FenceInstruction,
    MISC_MEM_OPCODE,
    decode,
    disassemble,
    encode_cbo,
    encode_fence,
)


class TestCboEncoding:
    @pytest.mark.parametrize(
        "op,selector",
        [(CboOp.INVAL, 0), (CboOp.CLEAN, 1), (CboOp.FLUSH, 2), (CboOp.ZERO, 4)],
    )
    def test_selector_values(self, op, selector):
        word = encode_cbo(op, rs1=10)
        assert (word >> 20) & 0xFFF == selector

    def test_opcode_and_funct3(self):
        word = encode_cbo(CboOp.FLUSH, rs1=5)
        assert word & 0x7F == MISC_MEM_OPCODE
        assert (word >> 12) & 0x7 == 0b010
        assert (word >> 7) & 0x1F == 0  # rd = x0

    def test_known_word(self):
        # cbo.flush 0(x10): imm=2, rs1=10, funct3=010, rd=0, opcode=0001111
        assert encode_cbo(CboOp.FLUSH, 10) == (2 << 20) | (10 << 15) | (2 << 12) | 0xF

    def test_roundtrip(self):
        for op in CboOp:
            for rs1 in (0, 1, 15, 31):
                decoded = decode(encode_cbo(op, rs1))
                assert isinstance(decoded, CboInstruction)
                assert decoded.op is op and decoded.rs1 == rs1

    def test_invalid_register(self):
        with pytest.raises(ValueError):
            encode_cbo(CboOp.CLEAN, rs1=32)

    def test_unknown_selector_decodes_none(self):
        bogus = (3 << 20) | (1 << 15) | (0b010 << 12) | MISC_MEM_OPCODE
        assert decode(bogus) is None


class TestFenceEncoding:
    def test_default_is_fence_rw_rw(self):
        word = encode_fence()
        decoded = decode(word)
        assert isinstance(decoded, FenceInstruction)
        assert decoded.pred == 0b0011 and decoded.succ == 0b0011

    def test_roundtrip_all_strengths(self):
        for pred in range(16):
            for succ in range(16):
                decoded = decode(encode_fence(pred, succ))
                assert decoded.pred == pred and decoded.succ == succ

    def test_field_bounds(self):
        with pytest.raises(ValueError):
            FenceInstruction(pred=16).encode()


class TestDecodeAndDisassemble:
    def test_non_misc_mem_decodes_none(self):
        assert decode(0x0000_0033) is None  # an ADD

    def test_unknown_funct3_decodes_none(self):
        word = (0b011 << 12) | MISC_MEM_OPCODE
        assert decode(word) is None

    def test_disassemble_cbo(self):
        assert disassemble(encode_cbo(CboOp.CLEAN, 7)) == "cbo.clean 0(x7)"
        assert disassemble(encode_cbo(CboOp.FLUSH, 31)) == "cbo.flush 0(x31)"

    def test_disassemble_fence(self):
        assert disassemble(encode_fence()) == "fence rw,rw"

    def test_disassemble_unknown(self):
        assert disassemble(0x33) is None
