"""Tests for :mod:`repro.store.shared` — the shared-log store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.attach import shared_store_registry
from repro.persist.api import PMemView
from repro.persist.flushopt import OPTIMIZER_NAMES, make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store import SharedLogStore, recover
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.workloads.store import SharedStoreBenchmark, StoreBenchmark


def mk_shared(optimizer="skipit", threads=3, **kwargs):
    params = TimingParams(num_threads=threads, skip_it=(optimizer == "skipit"))
    system = TimingSystem(params)
    heap = SimHeap(params.line_bytes)
    opt = make_optimizer(optimizer, heap)
    policy = make_policy("none")
    views = [
        PMemView(ctx, policy, opt) for ctx in system.threads[:threads]
    ]
    kwargs.setdefault("log_capacity", 128)
    kwargs.setdefault("num_buckets", 16)
    store = SharedLogStore(heap, views, **kwargs)
    return system, heap, views, store


def recovered(system, store, at=None, **kwargs):
    return recover(
        persisted_reader(system.persisted_image(at)), store.layout, **kwargs
    )


class TestConstruction:
    def test_requires_views(self):
        params = TimingParams(num_threads=1)
        TimingSystem(params)
        heap = SimHeap(params.line_bytes)
        with pytest.raises(ValueError, match="at least one"):
            SharedLogStore(heap, [])

    def test_mixed_strides_rejected(self):
        system, heap, views, store = mk_shared("plain", threads=2)
        flit_view = PMemView(
            views[0].ctx,
            make_policy("none"),
            make_optimizer("flit-adjacent", heap),
        )
        with pytest.raises(ValueError, match="stride"):
            SharedLogStore(heap, [views[0], flit_view])

    def test_epoch_must_fit_the_log(self):
        with pytest.raises(ValueError, match="fit"):
            mk_shared(threads=4, batch_size=16, log_capacity=64)


class TestSharedCommit:
    def test_one_fence_acks_all_threads(self):
        system, heap, views, store = mk_shared(threads=4, batch_size=2)
        tickets = []
        for i in range(2):
            for tid in range(4):
                tickets.append(store.put(tid, 100 * (tid + 1) + i, 7000 + i))
        # the 8th record fires the epoch trigger; depending on which
        # thread lands it, the seal happens there or one grace round
        # later — either way exactly one fence has retired
        store.sync()
        assert all(t.acked for t in tickets)
        assert store.stats.get("store_fences") <= 2  # seal (+ maybe sync)
        assert store.stats.get("store_commits") >= 1
        assert {t.tid for t in tickets} == {0, 1, 2, 3}

    def test_lsns_are_globally_ordered_across_threads(self):
        system, heap, views, store = mk_shared(threads=3, batch_size=4)
        lsns = [
            store.put(tid, 10 + i, 1000 + i).lsn
            for i, tid in enumerate([0, 1, 2, 2, 1, 0, 1, 0])
        ]
        # CAS-bumped tail: submission order IS LSN order, no gaps
        assert lsns == list(range(lsns[0], lsns[0] + len(lsns)))

    def test_cas_tail_word_tracks_reservation(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=4)
        for i in range(5):
            store.put(i % 2, 10 + i, 100 + i)
        tail = views[0].read(store.wal.tail_addr)
        assert tail == store.wal.next_lsn - 1
        assert store.wal.tail_cas_failures == 0  # atomic scheduler steps

    def test_reads_see_unacked_writes_of_other_threads(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=8)
        ticket = store.put(0, 5, 55)
        assert not ticket.acked
        assert store.get(1, 5) == 55  # shared memtable

    def test_handle_binds_tid(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=2)
        handle = store.handle(1)
        ticket = handle.put(9, 99)
        assert ticket.tid == 1
        assert handle.get(9) == 99
        handle.delete(9)
        assert handle.get(9) is None

    def test_handle_sync_seals_partial_epoch(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=8)
        handle = store.handle(1)
        ticket = handle.put(3, 33)
        assert not ticket.acked
        handle.sync()  # charged to the handle's own thread
        assert ticket.acked
        assert store.acked_lsn == store.initiated_lsn

    def test_handle_checkpoint_advances_watermark(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=2)
        handle = store.handle(1)
        handle.put(3, 33)
        handle.put(4, 44)
        before = store.watermark
        handle.checkpoint()
        assert store.watermark > before
        assert store.stats.get("store_checkpoints") == 1

    def test_handle_begin_binds_txn_tid(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=2)
        handle = store.handle(1)
        txn = handle.begin()
        txn.put(5, 55)
        txn.put(6, 66)
        ticket = txn.commit()
        assert ticket.tid == 1
        assert store.get(0, 5) == 55 and store.get(0, 6) == 66

    def test_cycle_budget_seals_partial_epoch(self):
        system, heap, views, store = mk_shared(
            threads=2, batch_size=16, cycle_budget=10_000
        )
        first = store.put(0, 1, 11)
        assert not first.acked
        views[0].ctx.now += 10_000
        second = store.put(0, 2, 12)  # leader lands the expired budget
        assert first.acked and second.acked
        assert store.stats.get("store_commits") == 1


class TestLeaderHandoff:
    def test_follower_takes_over_an_absent_leader(self):
        # thread 0 (the initial leader) never submits: the trigger fires
        # on followers, which defer for one round, then CAS leadership
        system, heap, views, store = mk_shared(threads=3, batch_size=2)
        tickets = [
            store.put(1 + i % 2, 20 + i, 2000 + i) for i in range(12)
        ]
        store.sync(1)
        assert all(t.acked for t in tickets)
        assert store.stats.get("store_leader_takeovers") >= 1
        assert store.leader_tid != 0
        assert store.stats.get("store_seals_deferred") >= 1

    def test_leader_word_in_shared_memory(self):
        system, heap, views, store = mk_shared(threads=3, batch_size=2)
        assert views[0].read(store.leader_addr) == 1  # tid 0, 1-based
        for i in range(12):
            store.put(1, 20 + i, 2000 + i)
        assert views[2].read(store.leader_addr) == store.leader_tid + 1


class TestAckLatency:
    def test_per_thread_histograms_cover_all_tickets(self):
        system, heap, views, store = mk_shared(threads=3, batch_size=2)
        n = 12
        for i in range(n):
            store.put(i % 3, 30 + i, 3000 + i)
        store.sync()
        counts = [h.count for h in store.ack_latency]
        assert sum(counts) == store.ack_latency_all.count == n
        assert all(c > 0 for c in counts)

    def test_latency_is_nonnegative_and_ordered(self):
        system, heap, views, store = mk_shared(threads=4, batch_size=4)
        for i in range(32):
            store.put(i % 4, 1 + i % 9, 4000 + i)
        store.sync()
        hist = store.ack_latency_all
        assert all(sample >= 0 for sample in hist.samples)
        assert hist.p50() <= hist.p99()
        # a follower's op waits for the epoch to fill + seal: strictly
        # positive latency for at least most tickets
        assert hist.p99() > 0

    def test_registry_exports_ack_latency_histograms(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=2)
        registry = shared_store_registry(store)
        for i in range(8):
            store.put(i % 2, 40 + i, 400 + i)
        store.sync()
        snap = registry.snapshot()
        assert snap["store"]["ack_latency"]["count"] == 8
        assert snap["store"]["ack_latency"]["p99"] >= (
            snap["store"]["ack_latency"]["p50"]
        )
        assert snap["store"]["ack_latency"]["t0"]["count"] > 0
        assert snap["store"]["ack_latency"]["t1"]["count"] > 0
        assert snap["store"]["leader_tid"] == store.leader_tid
        assert snap["store"]["wal"]["tail_cas_failures"] == 0


class TestRecovery:
    @pytest.mark.parametrize("optimizer", OPTIMIZER_NAMES)
    def test_interleaved_round_trip_on_every_filter(self, optimizer):
        system, heap, views, store = mk_shared(
            optimizer, threads=3, batch_size=4, checkpoint_every=3
        )
        for i in range(1, 60):
            tid = i % 3
            store.put(tid, i % 10 + 1, 100 * (tid + 1) + i)
            if i % 7 == 0:
                store.delete(tid, i % 5 + 1)
        store.sync()
        state = recovered(system, store)
        assert state.items == store.memtable
        assert state.applied_lsn == store.acked_lsn

    def test_open_epoch_is_atomic(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=8)
        store.put(0, 1, 11)
        store.put(1, 2, 22)  # epoch open: no marker yet
        state = recovered(system, store)
        assert state.items == {}
        store.sync()
        views[store.leader_tid].ctx.fence()
        state = recovered(system, store)
        assert state.items == {1: 11, 2: 22}

    def test_wrap_pressure_forces_checkpoint(self):
        system, heap, views, store = mk_shared(
            threads=2, batch_size=4, log_capacity=32
        )
        for i in range(1, 80):
            store.put(i % 2, i % 7 + 1, 1000 + i)
        store.sync()
        assert store.stats.get("store_checkpoints") >= 1
        state = recovered(system, store)
        assert state.items == store.memtable

    def test_adopt_then_second_crash_round_trips(self):
        system, heap, views, store = mk_shared(
            threads=2, batch_size=4, log_capacity=48
        )
        for i in range(1, 40):
            store.put(i % 2, i % 9 + 1, 2000 + i)
        store.sync()
        store.put(0, 77, 7777)  # left pending: discarded by the crash
        system.crash(at=None)
        state = recovered(system, store)
        assert 77 not in state.items
        assert state.applied_lsn == store.acked_lsn

        reopened = SharedLogStore(
            heap, views, batch_size=4, layout=store.layout
        )
        reopened.adopt(state, tid=1)
        assert reopened.memtable == state.items
        for i in range(1, 30):
            reopened.put(i % 2, 50 + i % 11, 3000 + i)
        reopened.sync()
        system.crash(at=None)
        second = recovered(system, reopened)
        assert second.items == reopened.memtable
        assert second.applied_lsn == reopened.acked_lsn

    def test_adopt_requires_fresh_instance(self):
        system, heap, views, store = mk_shared(threads=2, batch_size=1)
        store.put(0, 1, 11)
        state = recovered(system, store)
        with pytest.raises(RuntimeError, match="fresh"):
            store.adopt(state)


class TestResetMeasurement:
    def test_counters_and_all_clocks_zeroed(self):
        system, heap, views, store = mk_shared(threads=3, batch_size=2)
        for i in range(12):
            store.put(i % 3, 60 + i, 600 + i)
        store.sync()
        memtable = dict(store.memtable)
        store.reset_measurement()
        assert store.stats.as_dict() == {}
        assert store.ack_latency_all.count == 0
        assert all(h.count == 0 for h in store.ack_latency)
        assert store.wal.records_appended == 0
        for view in views:
            assert view.flush_requests == 0
            assert view.ctx.now == 0 and not view.ctx.outstanding
        assert store.memtable == memtable


class TestReserveProperties:
    """Hypothesis: the CAS-reserved tail under randomized interleavings.

    ``reserve()`` must hand out dense, globally ordered LSNs (submission
    order IS LSN order) with no slot double-reservation, for any thread
    interleaving — including under wrap pressure, where the circular log
    recycles slots across checkpoints.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        tids=st.lists(
            st.integers(min_value=0, max_value=2), min_size=1, max_size=60
        )
    )
    def test_interleaved_reservations_are_dense_and_unique(self, tids):
        system, heap, views, store = mk_shared(threads=3, batch_size=4)
        wal = store.wal
        lsns = [wal.reserve(views[tid]) for tid in tids]
        # dense: no gaps, no duplicates, handed out in submission order
        assert lsns == list(range(lsns[0], lsns[0] + len(lsns)))
        # distinct LSNs within one capacity window -> distinct slots
        slots = {store.layout.slot_of(lsn) for lsn in lsns}
        assert len(slots) == len(lsns)
        # every view agrees on the shared tail word
        for view in views:
            assert view.read(wal.tail_addr) == lsns[-1]
        assert wal.next_lsn == lsns[-1] + 1
        assert wal.tail_cas_failures == 0

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 1), st.integers(1, 7)),
            min_size=24,
            max_size=72,
        )
    )
    def test_wrap_pressure_keeps_order_and_round_trips(self, ops):
        system, heap, views, store = mk_shared(
            threads=2, batch_size=4, log_capacity=32
        )
        expected = {}
        lsns = []
        for i, (tid, key) in enumerate(ops):
            lsns.append(store.put(tid, key, 9000 + i).lsn)
            expected[key] = 9000 + i
        sealed_during = store.stats.get("store_commits")
        store.sync()
        # submission order IS LSN order; the only gaps are the seal
        # markers (one reserved LSN per epoch commit)
        gaps = [b - a for a, b in zip(lsns, lsns[1:])]
        assert all(gap in (1, 2) for gap in gaps)
        assert gaps.count(2) <= sealed_during
        assert len(set(lsns)) == len(lsns)
        assert store.memtable == expected
        state = recovered(system, store)
        assert state.items == expected
        assert state.applied_lsn == store.acked_lsn
        assert store.wal.tail_cas_failures == 0

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 2),  # tid
                st.integers(0, 3),  # 0-1: plain put, 2: commit, 3: abort
                st.integers(1, 7),  # base key
            ),
            min_size=12,
            max_size=48,
        )
    )
    def test_interleaved_txns_round_trip_atomically(self, ops):
        """Txn + plain ops mixed across 3 threads survive recovery whole.

        Committed transactions apply every write, aborted ones none, and
        the contiguous-run reservation keeps ticket LSNs globally ordered
        across the interleaving — all after a full seal + recover cycle.
        """
        system, heap, views, store = mk_shared(
            threads=3, batch_size=2, log_capacity=96
        )
        expected = {}
        ticket_lsn_order = []
        committed_txns = 0
        for i, (tid, action, key) in enumerate(ops):
            value = 9000 + i * 10
            if action <= 1:  # plain put
                ticket_lsn_order.append(store.put(tid, key, value).lsn)
                expected[key] = value
            else:
                txn = store.begin(tid)
                writes = {
                    1 + (key + j - 1) % 7: value + j for j in range(2 + i % 2)
                }
                for wkey, wvalue in writes.items():
                    txn.put(wkey, wvalue)
                if action == 2:
                    ticket_lsn_order.append(txn.commit().lsn)
                    expected.update(writes)
                    committed_txns += 1
                else:
                    txn.abort()  # buffered only: no log traffic at all
        store.sync()
        # submission order IS LSN order, txn runs included
        assert ticket_lsn_order == sorted(ticket_lsn_order)
        assert len(set(ticket_lsn_order)) == len(ticket_lsn_order)
        assert store.memtable == expected
        state = recovered(system, store)
        assert state.items == expected
        assert state.applied_lsn == store.acked_lsn
        assert state.replayed_txns == committed_txns
        assert state.rolled_back_txns == 0  # aborts never reached the log
        assert store.wal.tail_cas_failures == 0


class TestAcceptance:
    """ISSUE 5 acceptance: shared beats sharded on fences/op at t=4, gc=8."""

    @pytest.mark.parametrize("optimizer", OPTIMIZER_NAMES)
    def test_strictly_fewer_fences_per_op_than_sharded(self, optimizer):
        duration = 12_000
        sharded = StoreBenchmark(optimizer, 8, threads=4).run(duration)
        shared = SharedStoreBenchmark(optimizer, 8, threads=4).run(duration)
        assert sharded.total_ops > 0 and shared.total_ops > 0
        sharded_fpo = sharded.fences / sharded.total_ops
        shared_fpo = shared.fences / shared.total_ops
        assert shared_fpo < sharded_fpo, (
            f"{optimizer}: shared {shared_fpo:.4f} fences/op not below "
            f"sharded {sharded_fpo:.4f}"
        )

    def test_benchmark_reports_ack_percentiles(self):
        result = SharedStoreBenchmark("skipit", 8, threads=2).run(10_000)
        assert result.ack_p99 >= result.ack_p50 > 0
        assert result.fences_per_kop > 0
        assert result.metrics["store.shared"]["store"]["ack_latency"][
            "count"
        ] > 0
