"""Unit tests for the flush unit: offer policy, Skip It, counters (§5, §6)."""

import pytest

from repro.core.flush_queue import CboKind
from repro.core.flush_unit import OfferResult
from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

LINE = 0x4000


def warm_soc(skip_it=True, dirty=True, **kwargs):
    """A SoC whose core 0 holds LINE (dirty or clean) in its L1."""
    params = SoCParams(**kwargs).with_skip_it(skip_it)
    soc = Soc(params)
    program = [Instr.store(LINE, 7)]
    if not dirty:
        program += [Instr.clean(LINE), Instr.fence()]
    soc.run_programs([program])
    soc.drain()
    return soc


class TestOffer:
    def test_accept_enqueues_and_counts(self):
        soc = warm_soc()
        fu = soc.l1s[0].flush_unit
        hit = soc.l1s[0].meta.lookup(LINE)
        assert fu.offer(LINE, CboKind.FLUSH, hit=hit) is OfferResult.ACCEPTED
        assert fu.flush_counter == 1
        assert fu.flushing

    def test_skip_it_drops_persisted_line(self):
        soc = warm_soc(dirty=False)  # clean completed: line persisted
        l1 = soc.l1s[0]
        perm, dirty, skip = l1.line_state(LINE)
        assert not dirty and skip
        fu = l1.flush_unit
        result = fu.offer(LINE, CboKind.CLEAN, hit=l1.meta.lookup(LINE))
        assert result is OfferResult.SKIPPED
        assert fu.flush_counter == 0  # drops never enter the queue

    def test_skip_disabled_always_executes(self):
        soc = warm_soc(skip_it=False, dirty=False)
        l1 = soc.l1s[0]
        result = l1.flush_unit.offer(LINE, CboKind.CLEAN, hit=l1.meta.lookup(LINE))
        assert result is OfferResult.ACCEPTED

    def test_dirty_line_never_skipped(self):
        soc = warm_soc(dirty=True)
        l1 = soc.l1s[0]
        result = l1.flush_unit.offer(LINE, CboKind.CLEAN, hit=l1.meta.lookup(LINE))
        assert result is OfferResult.ACCEPTED

    def test_same_kind_coalesces(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        assert fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE)) is OfferResult.ACCEPTED
        assert fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE)) is OfferResult.COALESCED
        assert fu.flush_counter == 1  # coalesced requests do not re-count

    def test_different_kind_nacks(self):
        """A clean may not coalesce with a pending flush (§5.3)."""
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        assert fu.offer(LINE, CboKind.CLEAN, l1.meta.lookup(LINE)) is OfferResult.NACK

    def test_queue_full_nacks(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        depth = soc.params.flush_unit.flush_queue_depth
        for i in range(depth):
            address = 0x100000 + i * 64
            assert fu.offer(address, CboKind.FLUSH, None) is OfferResult.ACCEPTED
        assert fu.offer(0x900000, CboKind.FLUSH, None) is OfferResult.NACK


class TestSignals:
    def test_flush_rdy_low_while_fshr_active(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        assert fu.flush_rdy
        fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        # tick until the request is dequeued into an FSHR
        for _ in range(4):
            soc.engine.step()
            if not fu.flush_rdy:
                break
        assert not fu.flush_rdy
        soc.drain()
        assert fu.flush_rdy

    def test_flush_counter_drains_on_ack(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        soc.drain()
        assert fu.flush_counter == 0
        assert fu.stats.get("acks") == 1


class TestStoreLoadInterlocks:
    """The §5.3 rules, exercised through the public query API."""

    def test_store_blocked_by_queued_flush(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        l1.flush_unit.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        assert not l1.flush_unit.store_may_proceed(LINE)

    def test_store_allowed_after_clean_buffer_fill(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.CLEAN, l1.meta.lookup(LINE))
        # run until the FSHR has filled its buffer
        for _ in range(20):
            soc.engine.step()
            fshr = fu.fshr_for(LINE)
            if fshr is not None and fshr.buffer_filled:
                break
        else:
            pytest.fail("FSHR never filled its buffer")
        assert fu.store_may_proceed(LINE)

    def test_load_forward_from_filled_buffer(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        for _ in range(20):
            soc.engine.step()
            fshr = fu.fshr_for(LINE)
            if fshr is not None and fshr.buffer_filled:
                break
        data = fu.load_forward(LINE)
        assert data is not None
        assert int.from_bytes(data[:8], "little") == 7

    def test_load_must_wait_while_queued(self):
        soc = warm_soc()
        l1 = soc.l1s[0]
        l1.flush_unit.offer(LINE, CboKind.FLUSH, l1.meta.lookup(LINE))
        assert l1.flush_unit.load_must_wait(LINE)

    def test_unrelated_line_unaffected(self):
        soc = warm_soc()
        fu = soc.l1s[0].flush_unit
        fu.offer(LINE, CboKind.FLUSH, soc.l1s[0].meta.lookup(LINE))
        other = LINE + 0x1000
        assert fu.store_may_proceed(other)
        assert not fu.load_must_wait(other)
        assert not fu.pending_for(other)


class TestSkipBitLifecycle:
    def test_clean_completion_sets_skip(self):
        soc = warm_soc(dirty=False)
        _, _, skip = soc.l1s[0].line_state(LINE)
        assert skip

    def test_store_clears_skip(self):
        soc = warm_soc(dirty=False)
        soc.run_programs([[Instr.store(LINE, 8)]])
        soc.drain()
        _, dirty, skip = soc.l1s[0].line_state(LINE)
        assert dirty and not skip

    def test_grant_data_dirty_leaves_skip_unset(self):
        """Cross-core: a line dirty in L2 arrives with GrantDataDirty (§6.1)."""
        soc = warm_soc()  # core 0 holds LINE dirty
        soc.run_programs([[], [Instr.load(LINE)]])
        soc.drain()
        # core 0 was probed toB: its dirty data moved to L2 (L2 now dirty)
        assert soc.l2.line_dirty(LINE) is True
        _, dirty, skip = soc.l1s[1].line_state(LINE)
        assert not dirty and not skip

    def test_grant_data_clean_sets_skip(self):
        soc = warm_soc(dirty=False)  # persisted everywhere
        soc.run_programs([[], [Instr.load(LINE)]])
        soc.drain()
        _, dirty, skip = soc.l1s[1].line_state(LINE)
        assert not dirty and skip
