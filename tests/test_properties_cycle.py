"""Property-based tests of the cycle-level model against the §4 oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantics import WritebackOracle
from repro.uarch.cpu import Instr
from repro.uarch.requests import MemOp
from repro.uarch.soc import Soc

# a small pool of lines, some sharing L1 sets, to provoke interference
LINES = [0x1000 + i * 64 for i in range(4)] + [0x1000 + 64 * 64, 0x1000 + 65 * 64]


def instr_strategy():
    address = st.sampled_from(LINES)
    value = st.integers(min_value=1, max_value=2**32)
    return st.one_of(
        st.builds(Instr.store, address, value),
        st.builds(Instr.load, address),
        st.builds(Instr.clean, address),
        st.builds(Instr.flush, address),
        st.just(Instr.fence()),
    )


def oracle_for(program):
    oracle = WritebackOracle()
    for instr in program:
        if instr.op is MemOp.STORE:
            oracle.write(instr.address, instr.data)
        elif instr.op.is_cbo:
            oracle.writeback(instr.address)
        elif instr.op is MemOp.FENCE:
            oracle.fence()
    return oracle


class TestSingleCoreSemanticsProperty:
    @settings(max_examples=30, deadline=None)
    @given(program=st.lists(instr_strategy(), min_size=1, max_size=25))
    def test_fence_requirements_hold(self, program):
        """After any program, everything the §4 oracle requires persisted
        is in main memory, and loads observe coherent values."""
        soc = Soc()
        soc.run_programs([program])
        soc.drain()
        oracle = oracle_for(program)
        assert oracle.check_memory(soc.persisted_value) == []

    @settings(max_examples=30, deadline=None)
    @given(program=st.lists(instr_strategy(), min_size=1, max_size=25))
    def test_loads_read_latest_store(self, program):
        """Single-core, in-order stores: every load sees the most recent
        same-address store that precedes it in program order."""
        soc = Soc()
        soc.run_programs([program])
        latest = {}
        for index, instr in enumerate(program):
            if instr.op is MemOp.STORE:
                latest[instr.address] = instr.data
            elif instr.op is MemOp.LOAD:
                expected = latest.get(instr.address, 0)
                assert soc.cores[0].load_result(index) == expected

    @settings(max_examples=20, deadline=None)
    @given(program=st.lists(instr_strategy(), min_size=1, max_size=25))
    def test_drain_reaches_quiescence(self, program):
        soc = Soc()
        soc.run_programs([program])
        soc.drain()
        assert soc.quiescent_check()


class TestTwoCoreProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        p0=st.lists(instr_strategy(), min_size=1, max_size=15),
        p1=st.lists(instr_strategy(), min_size=1, max_size=15),
    )
    def test_no_deadlock_and_invariants(self, p0, p1):
        """Contended random programs never deadlock (watchdog would fire),
        and the hierarchy ends inclusive with an accurate directory."""
        soc = Soc()
        soc.run_programs([p0, p1])
        soc.drain()
        # inclusion
        for l1 in soc.l1s:
            for set_idx, way, entry in l1.meta.iter_valid():
                address = l1.meta.address_of(set_idx, entry)
                assert address in soc.l2.lines
        # directory accuracy + single-writer
        for address, line in soc.l2.lines.items():
            writers = 0
            for client in range(len(soc.l1s)):
                state = soc.l1s[client].line_state(address)
                assert (state is not None) == line.directory.holds(client)
                if state is not None and state[0].writable:
                    writers += 1
                    assert line.directory.owner == client
            assert writers <= 1

    @settings(max_examples=15, deadline=None)
    @given(
        p0=st.lists(instr_strategy(), min_size=1, max_size=12),
        p1=st.lists(instr_strategy(), min_size=1, max_size=12),
    )
    def test_fenced_writebacks_persist_some_store(self, p0, p1):
        """Under contention, a fenced flush persists *a* value that some
        thread actually stored (no corruption / made-up data)."""
        soc = Soc()
        soc.run_programs([p0, p1])
        soc.drain()
        stored = {}
        for program in (p0, p1):
            for instr in program:
                if instr.op is MemOp.STORE:
                    stored.setdefault(instr.address, set()).add(instr.data)
        for address in LINES:
            value = soc.persisted_value(address)
            if value != 0:
                assert value in stored.get(address, set())
