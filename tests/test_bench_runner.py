"""Parallel benchmark runner and machine-readable baselines."""

import json

import pytest

from repro.bench import (
    FIGURES,
    MICRO_FIGURES,
    RANGE_FIGURES,
    SERVE_FIGURES,
    SHARED_STORE_FIGURES,
    STORE_FIGURES,
    THROUGHPUT_FIGURES,
    TXN_FIGURES,
    baseline,
)
from repro.bench.micro import MicroRow
from repro.bench.runner import (
    BenchPoint,
    BenchPointError,
    FigureRun,
    decompose,
    execute_point,
    point_seed,
    run_figures,
)
from repro.bench.structures import ThroughputRow


class TestDecomposition:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_points_are_canonical_and_unique(self, figure):
        first = decompose(figure, quick=True)
        second = decompose(figure, quick=True)
        assert first == second, "decomposition must be deterministic"
        assert [p.index for p in first] == list(range(len(first)))
        labels = [p.label for p in first]
        assert len(labels) == len(set(labels)), "labels must be unique"

    @pytest.mark.parametrize("figure", sorted(THROUGHPUT_FIGURES))
    def test_throughput_points_carry_coordinate_seeds(self, figure):
        for point in decompose(figure, quick=True):
            kwargs = dict(point.kwargs)
            assert kwargs["seed"] == point_seed(figure, point.label)

    def test_point_seed_is_pure_and_positive(self):
        a = point_seed(14, "list,automatic,plain")
        assert a == point_seed(14, "list,automatic,plain")
        assert a != point_seed(14, "list,automatic,skipit")
        assert a > 0

    def test_points_are_picklable(self):
        import pickle

        for figure in sorted(FIGURES):
            for point in decompose(figure, quick=True):
                assert pickle.loads(pickle.dumps(point)) == point


class TestRunner:
    def test_serial_runner_matches_direct_call_fig11(self):
        runs = run_figures([11], quick=True, jobs=1)
        assert runs[11].rows == FIGURES[11](quick=True)
        assert runs[11].points == len(decompose(11, quick=True))
        assert runs[11].elapsed > 0

    def test_parallel_rows_identical_to_serial_fig11(self):
        serial = run_figures([11], quick=True, jobs=1)
        parallel = run_figures([11], quick=True, jobs=2)
        assert serial[11].rows == parallel[11].rows

    def test_progress_reports_every_point(self):
        messages = []
        runs = run_figures([11], quick=True, jobs=1, progress=messages.append)
        # one line per point plus the closing summary line
        assert len(messages) == runs[11].points + 1
        assert all("fig 11" in m for m in messages[:-1])

    def test_point_failure_is_reported_with_label(self, monkeypatch):
        def boom(**kwargs):
            raise RuntimeError("injected point failure")

        monkeypatch.setitem(FIGURES, 11, boom)
        with pytest.raises(BenchPointError) as excinfo:
            run_figures([11], quick=True, jobs=1)
        assert "injected point failure" in str(excinfo.value)
        assert "fig 11" in str(excinfo.value)
        assert excinfo.value.failures

    def test_execute_point_captures_traceback(self, monkeypatch):
        def boom(**kwargs):
            raise ValueError("bad cell")

        monkeypatch.setitem(FIGURES, 9, boom)
        result = execute_point(BenchPoint(9, 0, "x", (("quick", True),)))
        assert result.rows is None
        assert "bad cell" in result.error


def _micro_run():
    return FigureRun(
        figure=9,
        rows=[
            MicroRow(9, "1-thread flush", 64, 1, 403.0, 0.0),
            MicroRow(9, "1-thread flush", 512, 1, 775.0, 1.5),
        ],
        elapsed=1.25,
        points=2,
    )


def _throughput_run():
    return FigureRun(
        figure=14,
        rows=[
            ThroughputRow(14, "list", "none", "plain", 5, 1.875, 0, 0, 0),
            ThroughputRow(14, "list", "automatic", "skipit", 5, 1.5, 12, 30, 18),
            ThroughputRow(14, "queue", "manual", "plain", 5, None),
        ],
        elapsed=3.5,
        points=3,
    )


class TestBaseline:
    def test_snapshot_round_trips_through_json(self, tmp_path):
        runs = {9: _micro_run(), 14: _throughput_run()}
        document = baseline.snapshot(runs, quick=True, jobs=2)
        path = tmp_path / "bench.json"
        baseline.write(str(path), document)
        loaded = baseline.load(str(path))
        assert loaded == json.loads(json.dumps(document))
        assert loaded["schema"] == baseline.SCHEMA_VERSION
        assert loaded["figures"]["9"]["points"] == 2

    def test_identical_snapshots_pass_check(self):
        runs = {9: _micro_run(), 14: _throughput_run()}
        document = baseline.snapshot(runs, quick=True, jobs=1)
        assert baseline.check(document, document) == []

    def test_drift_beyond_tolerance_fails(self):
        document = baseline.snapshot({9: _micro_run()}, quick=True, jobs=1)
        drifted = json.loads(json.dumps(document))
        drifted["figures"]["9"]["rows"][0]["median_cycles"] *= 1.10
        problems = baseline.check(drifted, document, rel_tol=0.02)
        assert any("median_cycles drifted" in p for p in problems)
        # a generous band absorbs the same drift
        assert baseline.check(drifted, document, rel_tol=0.25) == []

    def test_missing_and_extra_rows_fail(self):
        document = baseline.snapshot({9: _micro_run()}, quick=True, jobs=1)
        shrunk = json.loads(json.dumps(document))
        shrunk["figures"]["9"]["rows"].pop()
        problems = baseline.check(shrunk, document)
        assert any("missing from current run" in p for p in problems)
        problems = baseline.check(document, shrunk)
        assert any("not in baseline" in p for p in problems)

    def test_none_throughput_must_stay_none(self):
        document = baseline.snapshot({14: _throughput_run()}, quick=True, jobs=1)
        changed = json.loads(json.dumps(document))
        changed["figures"]["14"]["rows"][2]["throughput_mops"] = 2.0
        assert any(
            "throughput_mops drifted" in p
            for p in baseline.check(changed, document)
        )

    def test_mode_mismatch_rejected(self):
        quick = baseline.snapshot({9: _micro_run()}, quick=True, jobs=1)
        full = baseline.snapshot({9: _micro_run()}, quick=False, jobs=1)
        assert any("mode mismatch" in p for p in baseline.check(quick, full))

    def test_partial_run_checks_its_slice_only(self):
        both = baseline.snapshot(
            {9: _micro_run(), 14: _throughput_run()}, quick=True, jobs=1
        )
        only9 = baseline.snapshot({9: _micro_run()}, quick=True, jobs=1)
        assert baseline.check(only9, both) == []
        assert baseline.check(only9, both, figures=[9]) == []
        assert any(
            "no common figures" in p
            for p in baseline.check(only9, both, figures=[14])
        )

    def test_wall_clock_never_compared(self):
        document = baseline.snapshot({9: _micro_run()}, quick=True, jobs=1)
        slower = json.loads(json.dumps(document))
        slower["figures"]["9"]["elapsed_seconds"] = 9999.0
        assert baseline.check(slower, document) == []


class TestCliDispatch:
    def test_row_type_sets_partition_all_figures(self):
        assert (
            MICRO_FIGURES
            | THROUGHPUT_FIGURES
            | STORE_FIGURES
            | SHARED_STORE_FIGURES
            | SERVE_FIGURES
            | TXN_FIGURES
            | RANGE_FIGURES
        ) == set(FIGURES)
        assert not MICRO_FIGURES & THROUGHPUT_FIGURES
        assert not STORE_FIGURES & (MICRO_FIGURES | THROUGHPUT_FIGURES)
        assert not SHARED_STORE_FIGURES & (
            MICRO_FIGURES | THROUGHPUT_FIGURES | STORE_FIGURES
        )
        assert not SERVE_FIGURES & (
            MICRO_FIGURES
            | THROUGHPUT_FIGURES
            | STORE_FIGURES
            | SHARED_STORE_FIGURES
        )
        assert not TXN_FIGURES & (
            MICRO_FIGURES
            | THROUGHPUT_FIGURES
            | STORE_FIGURES
            | SHARED_STORE_FIGURES
            | SERVE_FIGURES
        )
        assert not RANGE_FIGURES & (
            MICRO_FIGURES
            | THROUGHPUT_FIGURES
            | STORE_FIGURES
            | SHARED_STORE_FIGURES
            | SERVE_FIGURES
            | TXN_FIGURES
        )

    def test_empty_micro_figure_prints_micro_header(self, monkeypatch, capsys):
        """Empty row lists must still dispatch on the figure's row type."""
        from repro.bench import cli, runner

        def fake_run_figures(figures, quick=False, jobs=1, progress=None):
            return {fig: FigureRun(figure=fig) for fig in figures}

        monkeypatch.setattr(runner, "run_figures", fake_run_figures)
        assert cli.main(["--fig", "9"]) == 0
        out = capsys.readouterr().out
        assert "median cycles" in out  # micro table header, not throughput

    def test_json_and_check_round_trip_via_cli(self, monkeypatch, tmp_path):
        from repro.bench import cli, runner

        def fake_run_figures(figures, quick=False, jobs=1, progress=None):
            return {fig: _micro_run() for fig in figures}

        monkeypatch.setattr(runner, "run_figures", fake_run_figures)
        path = tmp_path / "BENCH_test.json"
        assert cli.main(["--fig", "9", "--quick", "--json", str(path)]) == 0
        assert cli.main(
            ["--fig", "9", "--quick", "--check", str(path)]
        ) == 0
        # a full-mode run must not pass against the quick baseline
        assert cli.main(["--fig", "9", "--check", str(path)]) == 1
