"""Crash-recovery durability matrix for CBO.CLEAN / CBO.FLUSH.

The writeback instructions must persist the *newest* copy of a line no
matter which level of the hierarchy holds it dirty — the paper's whole
crash-consistency story rests on it.  The matrix crosses
{clean, flush} x dirty-in-{own L1, other L1, L2, victim L3} x Skip It
on/off, dirties exactly one location, issues one CBO plus a fence, then
crashes and checks the stored value survived.  The L3 x clean cell is a
regression test for the data-loss bug where the clean path treated a
line absent from L2 as "persisted already" while the victim L3 held the
only dirty copy.
"""

import pytest

from repro.sim.config import CacheGeometry
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem

ADDR = 0x10000
VALUE = 42

LOCATIONS = ("own_l1", "other_l1", "l2", "l3")


def mk(skip_it: bool) -> TimingSystem:
    return TimingSystem(
        TimingParams(
            num_threads=2,
            skip_it=skip_it,
            l1=CacheGeometry(size_bytes=256, ways=2),
            l2=CacheGeometry(size_bytes=512, ways=2),
            l3=CacheGeometry(size_bytes=4096, ways=4),
        )
    )


def dirty_in(system: TimingSystem, location: str) -> None:
    """Leave ``ADDR`` dirty in exactly the requested level."""
    t0, t1 = system.threads
    if location == "own_l1":
        t0.store(ADDR, VALUE)
        assert system.l1s[0].get(ADDR).dirty
    elif location == "other_l1":
        t1.store(ADDR, VALUE)
        assert system.l1s[1].get(ADDR).dirty
    elif location == "l2":
        t0.store(ADDR, VALUE)
        # a reader probe pulls the dirty data down into the L2 copy
        assert t1.load(ADDR) == VALUE
        assert system.l2.get(ADDR).dirty
        assert not system.l1s[0].get(ADDR).dirty
    elif location == "l3":
        t0.store(ADDR, VALUE)
        # conflict stores push ADDR out of L1 and L2 into the victim L3
        stride = system.params.l2.num_sets * system.params.line_bytes
        for i in range(1, 5):
            t0.store(ADDR + i * stride, 0)
        assert system.l2.get(ADDR) is None
        assert ADDR in system.l3 and system.l3.get(ADDR).dirty
    else:  # pragma: no cover - parametrization guards this
        raise ValueError(location)
    assert ADDR not in system.persisted


class TestDurabilityMatrix:
    @pytest.mark.parametrize("skip_it", (False, True))
    @pytest.mark.parametrize("location", LOCATIONS)
    @pytest.mark.parametrize("op", ("clean", "flush"))
    def test_cbo_persists_dirty_data(self, op, location, skip_it):
        system = mk(skip_it)
        dirty_in(system, location)
        t0 = system.threads[0]
        getattr(t0, op)(ADDR)
        t0.fence()
        recovered = system.crash()
        assert recovered.get(ADDR) == VALUE, (
            f"{op} lost data dirty in {location} (skip_it={skip_it})"
        )
        # post-crash reload must see the stored value, not stale zeroes
        assert system.threads[0].load(ADDR) == VALUE

    @pytest.mark.parametrize("op", ("clean", "flush"))
    def test_l3_dirty_cbo_charges_dram_writeback(self, op):
        """The L3-dirty path is a DRAM writeback, not a clean round trip."""
        system = mk(skip_it=False)
        dirty_in(system, "l3")
        t0 = system.threads[0]
        getattr(t0, op)(ADDR)
        t0.fence()
        assert system.stats.get("cbo_l3_dirty_writebacks") == 1
        assert system.stats.get("cbo_dram") == 1
        assert system.stats.get("cbo_l2_clean") == 0

    def test_clean_of_persisted_line_stays_cheap(self):
        """A genuinely-clean line still takes the trivial LLC path."""
        system = mk(skip_it=False)
        t0 = system.threads[0]
        t0.store(ADDR, VALUE)
        t0.clean(ADDR)
        t0.fence()
        before = system.stats.get("cbo_l2_clean")
        t0.clean(ADDR)  # redundant: already persisted everywhere
        t0.fence()
        assert system.stats.get("cbo_l2_clean") == before + 1
        assert system.stats.get("cbo_l3_dirty_writebacks") == 0

    @pytest.mark.parametrize("skip_it", (False, True))
    @pytest.mark.parametrize("location", LOCATIONS)
    @pytest.mark.parametrize("op", ("clean", "flush"))
    def test_crash_at_every_boundary(self, op, location, skip_it):
        """The matrix again, but crashing at *every* op boundary.

        ``test_cbo_persists_dirty_data`` checks the final image;
        the injector additionally checks the mid-writeback windows —
        after the store, after the CBO issues but before its DRAM write
        completes, and after the sealing fence.
        """
        from repro.verify.cli import matrix_schedule, matrix_system
        from repro.verify.injector import TimingCrashInjector

        system = matrix_system(skip_it)
        schedule = matrix_schedule(system, op, location)
        report = TimingCrashInjector(system).run(schedule)
        assert report.ok, report.summary()
        assert report.crash_points == len(schedule)

    def test_clean_keeps_l3_copy_flush_drops_it(self):
        system_clean = mk(skip_it=False)
        dirty_in(system_clean, "l3")
        system_clean.threads[0].clean(ADDR)
        assert ADDR in system_clean.l3
        assert not system_clean.l3.get(ADDR).dirty

        system_flush = mk(skip_it=False)
        dirty_in(system_flush, "l3")
        system_flush.threads[0].flush(ADDR)
        assert ADDR not in system_flush.l3
