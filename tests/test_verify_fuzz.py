"""Differential fuzzer: generator invariants, agreement, and shrinking."""

import pytest

from repro.uarch.cpu import Instr
from repro.uarch.requests import MemOp
from repro.verify.fuzz import (
    DEFAULT_LINES,
    DiffReport,
    DifferentialFuzzer,
    ProgramGenerator,
)


class TestProgramGenerator:
    def test_store_values_unique_and_nonzero(self):
        bodies = ProgramGenerator(3, num_cores=2).generate_bodies()
        values = [
            instr.data
            for body in bodies
            for instr in body
            if instr.op is MemOp.STORE
        ]
        assert values, "generator produced no stores"
        assert 0 not in values
        assert len(values) == len(set(values))

    def test_per_core_word_ownership(self):
        """Word slot k of every line belongs to core k % num_cores."""
        generator = ProgramGenerator(5, num_cores=2)
        bodies = generator.generate_bodies()
        for core, body in enumerate(bodies):
            for instr in body:
                if instr.op is MemOp.STORE:
                    slot = (instr.address % 64) // 8
                    assert slot % 2 == core, hex(instr.address)

    def test_same_seed_same_programs(self):
        assert (
            ProgramGenerator(11).generate_bodies()
            == ProgramGenerator(11).generate_bodies()
        )

    def test_epilogue_seals_touched_lines(self):
        bodies = [[Instr.store(DEFAULT_LINES[0] + 8, 1)]]
        programs = ProgramGenerator.with_epilogue(bodies)
        ops = [instr.op for instr in programs[0]]
        assert ops == [
            MemOp.STORE,
            MemOp.FENCE,
            MemOp.CBO_CLEAN,
            MemOp.FENCE,
        ]
        assert programs[0][2].address == DEFAULT_LINES[0]

    def test_fenced_cbos_fence_every_cbo(self):
        bodies = ProgramGenerator(
            9, num_cores=1, fenced_cbos=True
        ).generate_bodies()
        for body in bodies:
            for i, instr in enumerate(body):
                if instr.op in (MemOp.CBO_CLEAN, MemOp.CBO_FLUSH):
                    assert body[i + 1].op is MemOp.FENCE

    def test_round_robin_schedule_preserves_program_order(self):
        programs = [[Instr.store(0x3000, 1), Instr.fence()], [Instr.load(0x3000)]]
        schedule = ProgramGenerator.schedule_of(programs)
        assert [tid for tid, _ in schedule] == [0, 1, 0]
        assert sum(len(p) for p in programs) == len(schedule)


class TestDifferentialFuzzer:
    @pytest.mark.parametrize("num_cores", (1, 2))
    def test_seeded_batch_agrees(self, num_cores):
        failures = DifferentialFuzzer(num_cores=num_cores).run(3, seed=0)
        assert failures == []

    def test_report_summary_counts_mismatches(self):
        report = DiffReport(seed=4, mismatches=["image[0x3000]: soc=1 timing=2"])
        assert not report.ok
        assert "seed=4" in report.summary()
        assert "1 mismatches" in report.summary()


class _PredicateFuzzer(DifferentialFuzzer):
    """Stub backend: a case 'fails' iff it still stores to the magic word.

    Exercises the delta-debugging loop without needing a buggy model.
    """

    MAGIC = DEFAULT_LINES[0] + 16

    def run_case(self, bodies, seed=None):
        report = DiffReport(seed=seed, bodies=[list(b) for b in bodies])
        hits = [
            instr
            for body in bodies
            for instr in body
            if instr.op is MemOp.STORE and instr.address == self.MAGIC
        ]
        if hits:
            report.mismatches.append(f"magic store x{len(hits)}")
        return report


class TestShrinking:
    def test_shrinks_to_single_op(self):
        fuzzer = _PredicateFuzzer(num_cores=2)
        bodies = ProgramGenerator(2, num_cores=2, ops_per_core=30).generate_bodies()
        bodies[0].insert(7, Instr.store(_PredicateFuzzer.MAGIC, 999))
        shrunk = fuzzer.shrink(bodies)
        assert sum(len(body) for body in shrunk) == 1
        assert shrunk[0] and shrunk[0][0].address == _PredicateFuzzer.MAGIC

    def test_passing_case_left_alone(self):
        fuzzer = _PredicateFuzzer(num_cores=1)
        bodies = [[Instr.store(DEFAULT_LINES[1], 5)]]
        assert fuzzer.shrink(bodies) == bodies
