"""Unit tests for main memory and the DRAM front-end."""

import pytest

from repro.mem.dram import DramModel
from repro.mem.memory import MainMemory
from repro.sim.engine import Engine
from repro.tilelink.messages import Acquire, GrantData, Release, ReleaseAck


class TestMainMemory:
    def test_untouched_reads_zero(self):
        mem = MainMemory()
        assert mem.read_line(0x1000) == bytes(64)

    def test_write_read_roundtrip(self):
        mem = MainMemory()
        data = bytes(range(64))
        mem.write_line(0x40, data)
        assert mem.read_line(0x40) == data

    def test_alignment_enforced(self):
        mem = MainMemory()
        with pytest.raises(ValueError):
            mem.read_line(0x41)
        with pytest.raises(ValueError):
            mem.write_line(0x7, bytes(64))

    def test_size_enforced(self):
        with pytest.raises(ValueError):
            MainMemory().write_line(0, b"short")

    def test_peek_does_not_count(self):
        mem = MainMemory()
        mem.peek_line(0)
        assert mem.reads == 0
        mem.read_line(0)
        assert mem.reads == 1

    def test_snapshot_is_copy(self):
        mem = MainMemory()
        mem.write_line(0, bytes(64))
        snap = mem.snapshot()
        mem.write_line(0, bytes([1] * 64))
        assert snap[0] == bytes(64)

    def test_lines_iterates_written(self):
        mem = MainMemory()
        mem.write_line(0x80, bytes(64))
        assert dict(mem.lines()) == {0x80: bytes(64)}


class TestDramModel:
    def _mk(self, latency=10):
        engine = Engine()
        memory = MainMemory()
        dram = DramModel(engine, memory, latency=latency)
        return engine, memory, dram

    def test_acquire_returns_grant_data(self):
        engine, memory, dram = self._mk()
        memory.write_line(0x100, bytes([7] * 64))
        dram.chan_a.send(Acquire(source=100, address=0x100), engine.cycle)
        grant = None
        for _ in range(40):
            engine.step()
            grant = dram.chan_d.pop_ready(engine.cycle)
            if grant:
                break
        assert isinstance(grant, GrantData)
        assert grant.data == bytes([7] * 64)
        assert not grant.dirty  # DRAM data is by definition persisted

    def test_release_writes_and_acks(self):
        engine, memory, dram = self._mk()
        payload = bytes([9] * 64)
        dram.chan_c.send(
            Release(source=100, address=0x200, data=payload), engine.cycle
        )
        ack = None
        for _ in range(40):
            engine.step()
            ack = dram.chan_d.pop_ready(engine.cycle)
            if ack:
                break
        assert isinstance(ack, ReleaseAck)
        assert memory.peek_line(0x200) == payload

    def test_latency_respected(self):
        engine, memory, dram = self._mk(latency=20)
        dram.chan_a.send(Acquire(source=100, address=0), engine.cycle)
        engine.step(15)
        assert dram.chan_d.pop_ready(engine.cycle) is None

    def test_busy_flag(self):
        engine, memory, dram = self._mk()
        assert not dram.busy
        dram.chan_a.send(Acquire(source=100, address=0), engine.cycle)
        engine.step(2)
        assert dram.busy
