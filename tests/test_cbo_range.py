"""CBO.RANGE end to end: encodings, flush-queue lifecycle, both models.

The ranged ops (`cbo.range.{clean,flush,inval}`) enter the flush queue as
one entry, sweep line by line with in-range Skip It filtering, and act as
a single ordering token.  These tests pin the encoding, the queue's
mixed per-line/ranged bookkeeping, the Soc sweep behaviors, the timing
model's pipelined semantics, and Soc-vs-timing differential agreement
with ranged ops in the fuzzer vocabulary.
"""

import pytest

from repro.core.encodings import (
    CboInstruction,
    CboOp,
    CboRangeInstruction,
    CboRangeOp,
    decode,
    disassemble,
    encode_cbo,
    encode_cbo_range,
)
from repro.core.flush_queue import (
    CboKind,
    FlushQueue,
    FlushRequest,
    RangedFlushRequest,
)
from repro.tilelink.permissions import Cap, Perm
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.verify.fuzz import DifferentialFuzzer, ProgramGenerator
from repro.verify.store import StoreCrashSweep

LINE = 64
LINES = [0x3000 + i * LINE for i in range(4)]


# ------------------------------------------------------------ encodings
class TestEncoding:
    @pytest.mark.parametrize("op", list(CboRangeOp))
    def test_round_trip(self, op):
        word = encode_cbo_range(op, rs1=5, rs2=6)
        assert decode(word) == CboRangeInstruction(op=op, rs1=5, rs2=6)

    def test_disassembly(self):
        word = encode_cbo_range(CboRangeOp.CLEAN, rs1=10, rs2=11)
        assert disassemble(word) == "cbo.range.clean 0(x10), x11"

    def test_ranged_and_plain_words_are_disjoint(self):
        """funct7 selectors sit above every ratified imm12 value."""
        plain = {encode_cbo(op, rs1=1) for op in CboOp}
        ranged = {
            encode_cbo_range(op, rs1=1, rs2=2) for op in CboRangeOp
        }
        assert not plain & ranged
        for word in plain:
            assert isinstance(decode(word), CboInstruction)
        for word in ranged:
            assert isinstance(decode(word), CboRangeInstruction)

    def test_register_bounds_checked(self):
        with pytest.raises(ValueError):
            encode_cbo_range(CboRangeOp.FLUSH, rs1=32, rs2=0)


# ----------------------------------------------------------- flush queue
def per_line_request(address, kind=CboKind.CLEAN):
    return FlushRequest(
        address=address,
        kind=kind,
        is_hit=True,
        is_dirty=True,
        way=0,
        perm=Perm.TRUNK,
    )


def ranged_request(base, lines, kind=CboKind.CLEAN):
    covered = tuple(base + i * LINE for i in range(lines))
    return RangedFlushRequest(
        address=base,
        kind=kind,
        is_hit=False,
        is_dirty=False,
        covered=covered,
        base=base,
        lines=lines,
    )


class TestFlushQueueRanged:
    def test_one_entry_covers_every_line(self):
        q = FlushQueue(depth=4)
        q.push(ranged_request(LINES[0], 3))
        assert len(q) == 1
        for line in LINES[:3]:
            assert q.has_line(line)
            assert len(q.entries_for(line)) == 1
        assert not q.has_line(LINES[3])

    def test_mixed_per_line_and_ranged_lifecycle(self):
        q = FlushQueue(depth=4)
        ranged = ranged_request(LINES[0], 3)
        per_line = per_line_request(LINES[1])
        q.push(ranged)
        q.push(per_line)
        # both entries pend on the overlapping line
        assert q.entries_for(LINES[1]) == [ranged, per_line]
        assert q.pop() is ranged
        # the per-line entry still holds its line after the range leaves
        assert q.has_line(LINES[1])
        assert not q.has_line(LINES[0])
        assert q.pop() is per_line
        assert q.empty and not q.has_line(LINES[1])

    def test_probe_downgrades_per_line_but_not_ranged(self):
        """Ranged entries sample at the cursor: probes need no downgrade."""
        q = FlushQueue(depth=4)
        ranged = ranged_request(LINES[0], 3)
        per_line = per_line_request(LINES[1])
        q.push(ranged)
        q.push(per_line)
        touched = q.probe_invalidate(LINES[1], Cap.toN)
        assert touched == 2  # both entries cover the line...
        assert not per_line.is_hit and per_line.perm is Perm.NONE
        # ...but the ranged entry's (unsampled) metadata is untouched
        assert not ranged.is_hit and ranged.lines == 3

    def test_eviction_is_noop_on_ranged_entries(self):
        q = FlushQueue(depth=4)
        ranged = ranged_request(LINES[0], 2)
        q.push(ranged)
        assert q.evict_invalidate(LINES[1]) == 1
        assert ranged.lines == 2 and ranged.cursor == 0


# ------------------------------------------------------------- Soc sweep
def run_soc(programs, skip_it=True):
    soc = Soc(Soc().params.with_skip_it(skip_it))
    soc.run_programs(programs)
    soc.drain()
    return soc


class TestSocRangedSweep:
    def test_one_queue_entry_per_range(self):
        soc = run_soc(
            [
                [
                    Instr.store(LINES[0], 1),
                    Instr.store(LINES[1], 2),
                    Instr.store(LINES[2], 3),
                    Instr.clean_range(LINES[0], 3 * LINE),
                    Instr.fence(),
                ]
            ]
        )
        stats = soc.l1s[0].flush_unit.stats
        assert stats.get("range_enqueued") == 1
        assert stats.get("range_lines") == 3
        assert stats.get("enqueued") == 0  # no per-line entries
        for line, value in zip(LINES[:3], (1, 2, 3)):
            assert soc.persisted_value(line) == value

    @pytest.mark.parametrize(
        "skip_it", (False, True), ids=("skip_off", "skip_on")
    )
    def test_in_range_skip_filter(self, skip_it):
        """A line persisted by an earlier CBO is filtered inside the sweep."""
        soc = run_soc(
            [
                [
                    Instr.store(LINES[0], 1),
                    Instr.clean(LINES[0]),
                    Instr.fence(),
                    Instr.store(LINES[1], 2),
                    Instr.clean_range(LINES[0], 2 * LINE),
                    Instr.fence(),
                ]
            ],
            skip_it=skip_it,
        )
        stats = soc.l1s[0].flush_unit.stats
        assert stats.get("range_line_skipped") == (1 if skip_it else 0)
        assert soc.persisted_value(LINES[0]) == 1
        assert soc.persisted_value(LINES[1]) == 2

    def test_range_yields_to_pending_per_line_cbo(self):
        """§5.3 dependence across the range: covered pending CBOs nack it."""
        soc = run_soc(
            [
                [
                    Instr.store(LINES[1], 1),
                    Instr.clean(LINES[1]),
                    Instr.flush_range(LINES[0], 3 * LINE),
                    Instr.fence(),
                ]
            ]
        )
        stats = soc.l1s[0].flush_unit.stats
        assert (
            stats.get("range_nacked_dependent")
            + stats.get("range_line_deferred")
        ) >= 1
        assert soc.persisted_value(LINES[1]) == 1


# ----------------------------------------------------------- timing model
def timing_thread(skip_it=True):
    system = TimingSystem(TimingParams(num_threads=1, skip_it=skip_it))
    return system, system.threads[0]


class TestTimingRanged:
    def test_single_ordering_token(self):
        system, t = timing_thread()
        for line, value in zip(LINES[:3], (1, 2, 3)):
            t.store(line, value)
        t.clean_range(LINES[0], 3 * LINE)
        assert len(t.outstanding) == 1
        assert system.stats.get("cbo_range_issued") == 1
        assert system.stats.get("cbo_range_lines") == 3
        t.fence()
        assert not t.outstanding
        for line, value in zip(LINES[:3], (1, 2, 3)):
            assert system.persisted.get(line) == value

    def test_staggered_completions(self):
        """Each unfiltered line lands at its own cursor-paced time."""
        system, t = timing_thread()
        for line, value in zip(LINES, (1, 2, 3, 4)):
            t.store(line, value)
        t.clean_range(LINES[0], 4 * LINE)
        dones = sorted(wb.done for wb in system.in_flight)
        assert len(dones) == 4
        assert len(set(dones)) == 4  # strictly staggered, no barrier

    def test_in_range_skip_filter(self):
        system, t = timing_thread()
        t.store(LINES[0], 1)
        t.clean(LINES[0])
        t.fence()
        t.store(LINES[1], 2)
        t.clean_range(LINES[0], 2 * LINE)
        t.fence()
        assert system.stats.get("cbo_range_line_skipped") == 1
        assert system.persisted.get(LINES[1]) == 2

    def test_wait_adopts_completion_semantics_without_fence(self):
        system, t = timing_thread()
        t.store(LINES[0], 1)
        t.clean_range(LINES[0], LINE, wait=True)
        assert not t.outstanding
        assert system.stats.get("fences") == 0
        assert system.stats.get("cbo_range_waits") == 1
        assert system.persisted.get(LINES[0]) == 1

    def test_await_with_nothing_outstanding_is_safe(self):
        system, t = timing_thread()
        t.await_writebacks()
        assert system.stats.get("cbo_range_waits") == 1
        assert system.stats.get("fences") == 0

    def test_zero_length_rejected(self):
        _, t = timing_thread()
        with pytest.raises(ValueError):
            t.clean_range(LINES[0], 0)


# ------------------------------------------------------------ differential
class TestDifferentialRanged:
    def test_deterministic_ranged_program_agrees(self):
        bodies = [
            [
                Instr.store(LINES[0], 1),
                Instr.store(LINES[2], 2),
                Instr.clean_range(LINES[0], 3 * LINE),
                Instr.fence(),
                Instr.store(LINES[1], 3),
                Instr.flush_range(LINES[1], 2 * LINE),
                Instr.fence(),
            ]
        ]
        report = DifferentialFuzzer(skip_it=True, num_cores=1).run_case(
            bodies
        )
        assert report.ok, report.mismatches

    def test_fuzzer_vocabulary_includes_ranged_ops(self):
        generator = ProgramGenerator(seed=3, num_cores=1, ops_per_core=64)
        ops = {i.op for body in generator.generate_bodies() for i in body}
        assert any(i.name.startswith("CBO_RANGE") for i in ops)

    @pytest.mark.slow
    def test_seeded_fuzz_runs_clean(self):
        fuzzer = DifferentialFuzzer(skip_it=True, num_cores=1)
        assert fuzzer.run(4, seed=11) == []


# ------------------------------------------------------------ crash sweep
class TestRangedSealCrashSweep:
    @pytest.mark.slow
    def test_ranged_seal_survives_every_crash_point(self):
        report = StoreCrashSweep(
            "skipit", group_commit=8, ranged_seal=True
        ).run()
        assert report.violations == []
        assert report.crash_points > 0

    @pytest.mark.slow
    def test_truncated_sweep_mutant_turns_red(self):
        report = StoreCrashSweep(
            "skipit",
            group_commit=8,
            ranged_seal=True,
            mutants=("range_skips_unreached_lines",),
        ).run()
        assert report.violations, "seeded mutant must be caught"
