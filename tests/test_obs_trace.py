"""Causal store tracing: blame attribution, zero-cost detach, export.

The contract under test is the tentpole's acceptance bar:

* for every acked op the blame buckets sum *exactly* to the raw
  submit→durable cycle count the store itself measured (cross-checked
  against the tickets, not the tracer's own arithmetic);
* with no tracer attached a benchmark run is bit-identical to a traced
  run's numbers — the hooks are pure observation;
* a recorded trace survives the JSONL → Chrome trace-event round trip
  with span nesting, flow links and monotone counter tracks intact.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.events import EventBus
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_jsonl,
)
from repro.obs.query import (
    blame_from_spans,
    format_blame,
    query_trace,
    top_slowest,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import BLAME_BUCKETS, StoreTracer
from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.store.shared import SharedLogStore
from repro.store.store import DurableStore
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.workloads.store import SharedStoreBenchmark


def _shared_store(threads=2, batch_size=4, optimizer="skipit"):
    params = TimingParams(num_threads=max(2, threads))
    system = TimingSystem(params)
    heap = SimHeap(line_bytes=params.line_bytes)
    opt = make_optimizer(optimizer, heap, 1024)
    policy = make_policy("none")
    views = [
        PMemView(ctx, policy, opt) for ctx in system.threads[:threads]
    ]
    store = SharedLogStore(heap, views, batch_size=batch_size)
    return store, system


def _private_store(batch_size=4):
    params = TimingParams(num_threads=2)
    system = TimingSystem(params)
    heap = SimHeap(line_bytes=params.line_bytes)
    opt = make_optimizer("skipit", heap, 1024)
    policy = make_policy("none")
    view = PMemView(system.threads[0], policy, opt)
    store = DurableStore(heap, view, batch_size=batch_size)
    return store, system


class TestBlameExactness:
    def test_shared_blame_sums_match_tickets_exactly(self):
        store, system = _shared_store(threads=2, batch_size=4)
        tracer = StoreTracer().attach(store, system)
        tickets = []
        for i in range(1, 25):
            tickets.append(store.put(i % 2, i, i + 100))
        store.sync()
        assert all(t.acked for t in tickets)
        by_id = {t.trace_id: t for t in tickets}
        assert len(tracer.records) == len(tickets)
        for record in tracer.records:
            ticket = by_id[record.trace_id]
            # cycle-exact: the buckets telescope to the ticket's own
            # raw submit->durable delta, not the tracer's bookkeeping
            assert sum(record.buckets.values()) == (
                ticket.durable_now - ticket.submit_now
            )
            assert record.latency == ticket.durable_now - ticket.submit_now
            assert record.submit_now == ticket.submit_now
            assert record.lsn == ticket.lsn
            assert record.tid == ticket.tid
            assert set(record.buckets) == set(BLAME_BUCKETS)

    def test_private_store_blame_sums_exactly(self):
        store, system = _private_store(batch_size=4)
        tracer = StoreTracer().attach(store, system)
        tickets = [store.put(k, k + 10) for k in range(1, 13)]
        store.sync()
        assert all(t.acked for t in tickets)
        assert len(tracer.records) == len(tickets)
        by_id = {t.trace_id: t for t in tickets}
        for record in tracer.records:
            assert record.trace_id in by_id
            assert sum(record.buckets.values()) == record.latency
            # single-view store: clocks can't run backwards
            assert record.latency >= 0 and not record.clamped

    def test_fig18_quick_run_blame_sums_exactly(self):
        tracer = StoreTracer()
        bench = SharedStoreBenchmark("skipit", 8, threads=2)
        result = bench.run(duration=20_000, tracer=tracer)
        assert result.total_ops > 0
        assert tracer.records, "quick run acked no ops"
        for record in tracer.records:
            assert sum(record.buckets.values()) == record.latency
            assert record.latency == record.durable_now - record.submit_now
        # the clamp counter agrees with the per-record clamped flags
        assert result.ack_clamped == sum(
            1 for r in tracer.records if r.clamped
        )

    def test_blame_exact_under_ack_before_fence_mutant(self):
        # the seeded bug acks followers before the fence; the identity
        # must still telescope (fence buckets simply read zero)
        store, system = _shared_store(threads=2, batch_size=4)
        store.mutants.add("shared_ack_before_fence")
        tracer = StoreTracer().attach(store, system)
        tickets = [store.put(i % 2, i, i + 5) for i in range(1, 17)]
        store.sync()
        by_id = {t.trace_id: t for t in tickets}
        assert len(tracer.records) == len(tickets)
        for record in tracer.records:
            ticket = by_id[record.trace_id]
            assert sum(record.buckets.values()) == (
                ticket.durable_now - ticket.submit_now
            )

    def test_dominant_bucket_and_metrics(self):
        store, system = _shared_store(threads=2, batch_size=4)
        tracer = StoreTracer().attach(store, system)
        for i in range(1, 9):
            store.put(i % 2, i, i + 1)
        store.sync()
        registry = MetricsRegistry()
        tracer.register_metrics(registry)
        flat = registry.flat()
        assert any("store.blame.latency" in key for key in flat)
        for record in tracer.records:
            assert record.dominant in BLAME_BUCKETS
            assert record.buckets[record.dominant] == max(
                record.buckets.values()
            )


class TestZeroCostDetached:
    FIELDS = (
        "total_ops",
        "elapsed_cycles",
        "throughput_mops",
        "fences",
        "ack_p50",
        "ack_p99",
        "cbo_issued",
        "cbo_skipped",
        "wal_records",
        "commits",
        "ack_clamped",
    )

    def test_traced_run_is_bit_identical_to_detached(self):
        # same seed, same duration: attaching the tracer must not move
        # a single cycle anywhere in the run
        plain = SharedStoreBenchmark("skipit", 8, threads=2, seed=77).run(
            duration=15_000
        )
        traced = SharedStoreBenchmark("skipit", 8, threads=2, seed=77).run(
            duration=15_000, tracer=StoreTracer()
        )
        for name in self.FIELDS:
            assert getattr(plain, name) == getattr(traced, name), name

    def test_detach_restores_store_and_system(self):
        store, system = _shared_store()
        tracer = StoreTracer().attach(store, system)
        assert store.tracer is tracer and system.obs is tracer.bus
        tracer.detach()
        assert store.tracer is None and system.obs is None


class TestQuery:
    def _traced_run(self, tmp_path):
        tracer = StoreTracer()
        SharedStoreBenchmark("skipit", 8, threads=2).run(
            duration=15_000, tracer=tracer
        )
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), tracer.bus)
        return tracer, path

    def test_jsonl_round_trip_reproduces_records(self, tmp_path):
        tracer, path = self._traced_run(tmp_path)
        _, spans = read_jsonl(str(path))
        rebuilt = {r.trace_id: r for r in blame_from_spans(spans)}
        assert len(rebuilt) == len(tracer.records)
        for record in tracer.records:
            twin = rebuilt[record.trace_id]
            assert twin.latency == record.latency
            assert twin.buckets == record.buckets
            assert twin.epoch == record.epoch
            assert twin.submit_now == record.submit_now

    def test_top_slowest_ordering(self, tmp_path):
        tracer, _ = self._traced_run(tmp_path)
        top = top_slowest(tracer.records, top=5)
        assert len(top) == min(5, len(tracer.records))
        latencies = [r.latency for r in top]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] == max(r.latency for r in tracer.records)

    def test_query_cli_output_names_dominant_bucket(self, tmp_path):
        tracer, path = self._traced_run(tmp_path)
        text = query_trace(str(path), top=5)
        assert "top 5 slowest ops" in text
        assert "dominant" in text
        slowest = top_slowest(tracer.records, top=1)[0]
        assert f"op:{slowest.trace_id}" in text
        assert slowest.dominant in text

    def test_format_blame_empty(self):
        assert "no acked ops" in format_blame([])


class TestPerfettoRoundTrip:
    def _soc_trace(self, tmp_path):
        from repro.obs.__main__ import _demo_programs
        from repro.obs.attach import Observability
        from repro.sim.config import SoCParams
        from repro.uarch.soc import Soc

        soc = Soc(SoCParams().with_cores(2))
        obs = Observability.attach(soc)
        soc.run_programs(_demo_programs(2, lines=6, redundant=2))
        soc.drain()
        path = tmp_path / "soc.jsonl"
        write_jsonl(str(path), obs.bus)
        events, spans = read_jsonl(str(path))
        trace = chrome_trace(events, spans)
        obs.detach()
        return trace

    def test_soc_round_trip_validates_and_nests(self, tmp_path):
        trace = self._soc_trace(tmp_path)
        # re-parse through JSON to prove serialisability
        trace = json.loads(json.dumps(trace))
        assert validate_chrome_trace(trace) == []
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        parents = {
            e["args"]["key"]: e
            for e in slices
            if "state" not in e.get("args", {})
        }
        nested = 0
        for entry in slices:
            state = entry.get("args", {}).get("state")
            if state is None:
                continue
            parent = parents[entry["args"]["key"]]
            assert entry["tid"] == parent["tid"]
            assert entry["ts"] >= parent["ts"]
            assert entry["ts"] + entry["dur"] <= parent["ts"] + parent["dur"]
            nested += 1
        assert nested > 0, "no state slices nested under request slices"

    def test_soc_counter_tracks_present_and_sane(self, tmp_path):
        trace = self._soc_trace(tmp_path)
        counters = {}
        for entry in trace["traceEvents"]:
            if entry["ph"] == "C":
                counters.setdefault(entry["name"], []).append(
                    (entry["ts"], entry["args"]["value"])
                )
        assert set(counters) >= {
            "flush_queue_depth",
            "outstanding_fshrs",
            "skip_filtered_cleans",
        }
        for name, samples in counters.items():
            ts = [t for t, _ in samples]
            assert ts == sorted(ts), f"{name} timestamps out of order"
            assert all(v >= 0 for _, v in samples), f"{name} went negative"
        skip_values = [v for _, v in counters["skip_filtered_cleans"]]
        assert skip_values == sorted(skip_values), (
            "cumulative skip counter must be monotone"
        )
        assert skip_values[-1] > 0

    def test_store_trace_flow_links_pair_up(self, tmp_path):
        tracer = StoreTracer()
        SharedStoreBenchmark("skipit", 8, threads=2).run(
            duration=15_000, tracer=tracer
        )
        path = tmp_path / "store.jsonl"
        write_jsonl(str(path), tracer.bus)
        events, spans = read_jsonl(str(path))
        trace = json.loads(json.dumps(chrome_trace(events, spans)))
        assert validate_chrome_trace(trace) == []
        starts = {
            e["id"]: e for e in trace["traceEvents"] if e["ph"] == "s"
        }
        ends = {e["id"]: e for e in trace["traceEvents"] if e["ph"] == "f"}
        # every flow start has exactly one end, and at least one op->epoch
        # link exists per acked op
        assert starts and set(starts) == set(ends)
        assert len(starts) >= len(tracer.records)
        slice_anchors = {
            (e["tid"], e["ts"])
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        }
        for flow_id, start in starts.items():
            end = ends[flow_id]
            assert (start["tid"], start["ts"]) in slice_anchors
            assert (end["tid"], end["ts"]) in slice_anchors


class TestCausalEventBus:
    def test_causal_scope_injects_and_restores(self):
        bus = EventBus()
        with bus.causal("op:1"):
            bus.emit(5, "cat", "inner")
            with bus.causal("op:2"):
                bus.emit(6, "cat", "nested")
            bus.emit(7, "cat", "back")
        bus.emit(8, "cat", "outside")
        causes = [e.args.get("cause") for e in bus.events]
        assert causes == ["op:1", "op:2", "op:1", None]

    def test_explicit_cause_wins_over_ambient(self):
        bus = EventBus()
        with bus.causal("ambient"):
            bus.emit(1, "cat", "n", cause="explicit")
        assert bus.events[0].args["cause"] == "explicit"
