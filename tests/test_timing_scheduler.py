"""Unit tests for the virtual-time scheduler."""

import pytest

from repro.timing.params import TimingParams
from repro.timing.scheduler import VirtualTimeScheduler
from repro.timing.system import TimingSystem


def mk(threads=2):
    return TimingSystem(TimingParams(num_threads=threads))


class TestScheduler:
    def test_runs_until_deadline(self):
        system = mk()
        sched = VirtualTimeScheduler(system)

        def step(ctx):
            ctx.load(0x40 + (ctx.ops % 8) * 64)

        result = sched.run([step, step], duration=10_000)
        assert result.total_ops > 0
        assert all(ctx.now >= 10_000 for ctx in system.threads)

    def test_fairness_between_equal_threads(self):
        system = mk()
        sched = VirtualTimeScheduler(system)

        def step(ctx):
            ctx.load(0x1000 * (ctx.tid + 1))

        result = sched.run([step, step], duration=50_000)
        a, b = result.ops_per_thread
        assert abs(a - b) <= max(a, b) * 0.05  # near-equal progress

    def test_slow_thread_does_fewer_ops(self):
        system = mk()
        sched = VirtualTimeScheduler(system)

        def fast(ctx):
            ctx.load(0x40)

        def slow(ctx):
            ctx.load(0x40)
            ctx.fence()
            ctx.now += 100

        result = sched.run([fast, slow], duration=20_000)
        assert result.ops_per_thread[0] > result.ops_per_thread[1]

    def test_warmup_not_counted(self):
        system = mk(threads=1)
        sched = VirtualTimeScheduler(system)
        calls = []

        def step(ctx):
            calls.append(1)
            ctx.now += 1000

        result = sched.run([step], duration=5_000, warmup=3)
        assert len(calls) == result.ops_per_thread[0] + 3

    def test_throughput_computation(self):
        system = mk(threads=1)
        sched = VirtualTimeScheduler(system)

        def step(ctx):
            ctx.now += 100

        result = sched.run([step], duration=10_000)
        assert result.throughput(clock_hz=50e6) == pytest.approx(
            result.total_ops * 50e6 / result.elapsed
        )

    def test_too_many_steps_rejected(self):
        system = mk(threads=1)
        sched = VirtualTimeScheduler(system)
        with pytest.raises(ValueError):
            sched.run([lambda c: None] * 2, duration=100)

    def test_zero_duration(self):
        system = mk(threads=1)
        sched = VirtualTimeScheduler(system)
        result = sched.run([lambda ctx: None], duration=0)
        assert result.total_ops == 0
