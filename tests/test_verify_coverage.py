"""FSM coverage tracking and the ``python -m repro.verify`` gate."""

import json

import pytest

from repro.obs.attach import acquire_bus, release_bus
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.verify import cli
from repro.verify.coverage import (
    FSHR_STATES,
    RANGE_STATES,
    TILELINK_OPS,
    DEFAULT_FLOOR,
    FsmCoverage,
)
from repro.verify.mutants import soc_mutant

LINE = 0x3000


def covered(programs, skip_it=True):
    soc = Soc(Soc().params.with_skip_it(skip_it))
    coverage = FsmCoverage()
    bus = acquire_bus(soc)
    coverage.attach(bus)
    try:
        soc.run_programs(programs)
        soc.drain()
    finally:
        coverage.detach()
        release_bus(soc)
    return coverage


class TestFsmCoverage:
    def test_dirty_clean_walks_writeback_states(self):
        coverage = covered(
            [[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]]
        )
        for state in ("queued", "meta_write", "fill_buffer",
                      "root_release_data", "root_release_ack"):
            assert coverage.fshr_states[state] > 0, state

    def test_clean_hit_without_data_reaches_root_release(self):
        coverage = covered(
            [
                [
                    Instr.store(LINE, 1),
                    Instr.clean(LINE),
                    Instr.fence(),
                    Instr.clean(LINE),
                    Instr.fence(),
                ]
            ],
            skip_it=False,
        )
        assert coverage.fshr_states["root_release"] > 0

    def test_idle_soc_covers_nothing(self):
        coverage = covered([[Instr.load(LINE)]])
        assert coverage.fshr_states == {}
        assert not coverage.meets_floor()
        assert coverage.missing_fshr_states() == sorted(FSHR_STATES)

    def test_merge_accumulates(self):
        a = covered([[Instr.store(LINE, 1), Instr.clean(LINE), Instr.fence()]])
        b = covered([[Instr.load(LINE)]])
        merged = b.merge(a)
        assert merged.fshr_states == a.fshr_states

    def test_floor_gating(self):
        """The floor gates the combined per-line + range universe."""
        coverage = FsmCoverage(floor=0.5)
        for state in list(FSHR_STATES)[:3]:
            coverage.fshr_states[state] = 1
        assert coverage.fshr_coverage() == 0.5
        assert coverage.range_coverage() == 0.0
        assert not coverage.meets_floor()  # 3 of 12 combined states
        for state in list(RANGE_STATES)[:3]:
            coverage.fshr_states[state] = 1
        assert coverage.total_coverage() == 0.5
        assert coverage.meets_floor()
        assert not coverage.meets_floor(0.9)

    def test_report_lists_missing(self):
        coverage = FsmCoverage()
        report = coverage.report()
        assert report["fshr_coverage"] == 0.0
        assert report["fshr_missing"] == sorted(FSHR_STATES)
        assert report["tilelink_missing"] == sorted(TILELINK_OPS)


class TestVerifyCli:
    def test_smoke_passes_with_full_coverage(self, capsys, tmp_path):
        json_path = tmp_path / "verify.json"
        status = cli.main(["--smoke", "--fuzz", "1", "--json", str(json_path)])
        out = capsys.readouterr().out
        assert status == 0, out
        assert "PASS" in out
        payload = json.loads(json_path.read_text())
        assert payload["failures"] == 0
        assert payload["coverage"]["fshr_coverage"] >= DEFAULT_FLOOR
        assert payload["coverage"]["fshr_missing"] == []
        assert payload["coverage"]["tilelink_missing"] == []

    def test_unreachable_floor_exits_2(self, capsys):
        status = cli.main(["--smoke", "--fuzz", "0", "--floor", "1.1"])
        assert status == 2
        assert "BELOW FLOOR" in capsys.readouterr().out

    def test_mutated_model_exits_1(self, capsys):
        with soc_mutant("fence_ignores_flushing"):
            status = cli.main(["--smoke", "--fuzz", "0"])
        assert status == 1
        assert "FAIL" in capsys.readouterr().out

    @pytest.mark.slow
    def test_exhaustive_passes(self, capsys):
        status = cli.main(["--exhaustive", "--fuzz", "1"])
        assert status == 0, capsys.readouterr().out
