"""Tests for the probe unit handshake (§5.4.1), on an isolated L1.

The L1 is instantiated with free-standing channels (no L2 behind them),
lines are installed directly into its arrays, and probes are injected on
channel B; the ProbeAcks are observed on channel C.
"""

from repro.core.flush_queue import CboKind
from repro.sim.config import SoCParams
from repro.sim.engine import Engine
from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import Probe
from repro.tilelink.permissions import Cap, Perm, Shrink
from repro.uarch.l1 import L1DataCache

LINE = 0xD000


def isolated_l1(skip_it=True):
    engine = Engine(watchdog_interval=0)
    params = SoCParams().with_skip_it(skip_it)
    l1 = L1DataCache(engine, agent_id=0, params=params)
    channels = [BeatChannel(n, 16) for n in "abcde"]
    l1.connect(*channels)
    return engine, l1


def install(l1, address=LINE, perm=Perm.TRUNK, dirty=True, skip=False, value=55):
    way = l1.meta.victim_way(address)
    l1.meta.install(address, way, perm=perm, dirty=dirty, skip=skip)
    l1.data.write_word(l1.geometry.set_index(address), way, 0, value)
    return way


def collect_ack(engine, l1, max_cycles=10):
    for _ in range(max_cycles):
        engine.step()
        ack = l1.chan_c.pop_ready(engine.cycle)
        if ack is not None:
            return ack
    raise AssertionError("no ProbeAck produced")


class TestProbeHandling:
    def test_probe_ton_surrenders_dirty_data(self):
        engine, l1 = isolated_l1()
        install(l1, dirty=True, value=55)
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toN), engine.cycle)
        ack = collect_ack(engine, l1)
        assert ack.shrink is Shrink.TtoN
        assert int.from_bytes(ack.data[:8], "little") == 55
        assert l1.line_state(LINE) is None

    def test_probe_tob_keeps_clean_copy_clears_skip(self):
        engine, l1 = isolated_l1()
        install(l1, dirty=True, skip=True)
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toB), engine.cycle)
        ack = collect_ack(engine, l1)
        assert ack.shrink is Shrink.TtoB
        perm, dirty, skip = l1.line_state(LINE)
        assert perm is Perm.BRANCH and not dirty
        assert not skip  # dirty data left for L2: not persisted (§6.2)

    def test_probe_tob_on_clean_line_sends_no_data(self):
        engine, l1 = isolated_l1()
        install(l1, dirty=False, skip=True)
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toB), engine.cycle)
        ack = collect_ack(engine, l1)
        assert ack.data is None
        _, _, skip = l1.line_state(LINE)
        assert skip  # clean downgrade leaves the skip bit intact

    def test_probe_to_absent_line_reports_nton(self):
        engine, l1 = isolated_l1()
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toN), engine.cycle)
        ack = collect_ack(engine, l1)
        assert ack.data is None
        assert ack.shrink is Shrink.NtoN

    def test_probe_rdy_toggles(self):
        engine, l1 = isolated_l1()
        install(l1)
        assert l1.probe_unit.probe_rdy
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toN), engine.cycle)
        engine.step()  # probe registered: rdy drops
        assert not l1.probe_unit.probe_rdy
        engine.step(3)
        assert l1.probe_unit.probe_rdy
        assert l1.probe_unit.probes_handled == 1

    def test_probe_invalidates_pending_flush_entries(self):
        engine, l1 = isolated_l1()
        way = install(l1, dirty=True)
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.FLUSH, hit=l1.meta.lookup(LINE))
        entry = fu.queue.peek()
        assert entry.is_hit and entry.is_dirty
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toN), engine.cycle)
        engine.step()  # registration cycle performs probe_invalidate (§5.4.1)
        assert not entry.is_hit and not entry.is_dirty
        assert fu.stats.get("probe_invalidated") == 1

    def test_probe_blocked_while_fshr_mutating(self):
        """flush_rdy gates probes until the FSHR reaches the ack wait."""
        engine, l1 = isolated_l1()
        install(l1, dirty=True)
        fu = l1.flush_unit
        fu.offer(LINE, CboKind.FLUSH, hit=l1.meta.lookup(LINE))
        for _ in range(3):
            engine.step()
            if not fu.flush_rdy:
                break
        assert not fu.flush_rdy
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toN), engine.cycle)
        engine.step(2)
        assert l1.probe_unit.probes_stalled_cycles > 0
        # once the FSHR sends its RootRelease (awaiting ack), probes may go
        engine.step(10)
        assert l1.probe_unit.probes_handled == 1

    def test_probe_stalled_by_replaying_mshr(self):
        """mshr_rdy (§3.3): probes wait while committed stores replay."""
        engine, l1 = isolated_l1()

        from repro.uarch.mshr import MshrState

        class FakeMshr:
            def matches(self, address):
                return address == LINE

            replaying = True
            state = MshrState.IDLE  # skipped by the MSHR stepper

        l1.mshrs.append(FakeMshr())
        install(l1, dirty=True)
        l1.chan_b.send(Probe(source=100, address=LINE, cap=Cap.toN), engine.cycle)
        engine.step(5)
        assert l1.probe_unit.probes_handled == 0
        assert l1.probe_unit.probes_stalled_cycles > 0
        l1.mshrs.pop()
        engine.step(3)
        assert l1.probe_unit.probes_handled == 1
