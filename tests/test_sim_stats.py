"""Unit tests for statistics helpers."""

import pytest

from repro.sim.stats import Histogram, StatCounter, median, stdev


class TestMedian:
    def test_odd_count(self):
        assert median([3, 1, 2]) == 2

    def test_even_count(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_single(self):
        assert median([7]) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])


class TestStdev:
    def test_constant_series(self):
        assert stdev([5, 5, 5]) == 0.0

    def test_known_value(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stdev([])


class TestStatCounter:
    def test_increment_and_get(self):
        c = StatCounter()
        c.inc("hits")
        c.inc("hits", 4)
        assert c.get("hits") == 5

    def test_missing_is_zero(self):
        assert StatCounter().get("nothing") == 0

    def test_as_dict_and_reset(self):
        c = StatCounter()
        c.inc("a")
        assert c.as_dict() == {"a": 1}
        c.reset()
        assert c.as_dict() == {}

    def test_repr_sorted(self):
        c = StatCounter()
        c.inc("b")
        c.inc("a")
        assert repr(c) == "StatCounter(a=1, b=1)"


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram()
        h.extend([1, 2, 3, 4, 5])
        assert h.count == 5
        assert h.median() == 3
        assert h.mean() == 3
        assert h.percentile(0) == 1
        assert h.percentile(100) == 5

    def test_percentile_bounds(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().median()
        with pytest.raises(ValueError):
            Histogram().mean()

    def test_empty_percentiles_well_defined(self):
        # percentiles (unlike mean/median) are consumed by reports and
        # metric snapshots on histograms that may have no samples at
        # all; they return 0.0 instead of raising, matching summary()
        h = Histogram()
        assert h.percentile(50) == 0.0
        assert h.p50() == 0.0
        assert h.p99() == 0.0
        assert h.summary()["count"] == 0
        assert h.summary()["p99"] == 0.0
        # the bounds check still applies even when empty
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_samples_copy(self):
        h = Histogram()
        h.add(1)
        samples = h.samples
        samples.append(99)
        assert h.count == 1

    def test_p50_p99_helpers(self):
        h = Histogram()
        h.extend(range(1, 101))
        assert h.p50() == h.percentile(50.0) == 51
        assert h.p99() == h.percentile(99.0) == 99

    def test_p99_small_histogram_is_max(self):
        h = Histogram()
        h.extend([10, 30, 20])
        assert h.p99() == 30

    def test_p50_matches_summary(self):
        h = Histogram()
        h.extend([4, 8, 15, 16, 23, 42])
        assert h.summary()["p50"] == h.p50()
        assert h.summary()["p99"] == h.p99()
