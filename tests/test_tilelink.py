"""Unit tests for TileLink permissions, messages and channels."""

import pytest

from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import (
    Acquire,
    GrantData,
    Probe,
    ProbeAck,
    ProbeAckParam,
    Release,
    ReleaseAck,
    ReleaseAckParam,
    root_release,
    root_release_ack,
)
from repro.tilelink.permissions import (
    Cap,
    Grow,
    Perm,
    Shrink,
    grow_target,
    probe_shrink,
    shrink_result,
)


class TestPermissions:
    def test_perm_ordering(self):
        assert Perm.NONE < Perm.BRANCH < Perm.TRUNK

    def test_readable_writable(self):
        assert not Perm.NONE.readable
        assert Perm.BRANCH.readable and not Perm.BRANCH.writable
        assert Perm.TRUNK.readable and Perm.TRUNK.writable

    @pytest.mark.parametrize(
        "grow,target",
        [(Grow.NtoB, Perm.BRANCH), (Grow.NtoT, Perm.TRUNK), (Grow.BtoT, Perm.TRUNK)],
    )
    def test_grow_targets(self, grow, target):
        assert grow_target(grow) is target

    @pytest.mark.parametrize(
        "shrink,result",
        [
            (Shrink.TtoB, Perm.BRANCH),
            (Shrink.TtoN, Perm.NONE),
            (Shrink.BtoN, Perm.NONE),
            (Shrink.TtoT, Perm.TRUNK),
            (Shrink.BtoB, Perm.BRANCH),
            (Shrink.NtoN, Perm.NONE),
        ],
    )
    def test_shrink_results(self, shrink, result):
        assert shrink_result(shrink) is result

    @pytest.mark.parametrize(
        "current,cap,expected",
        [
            (Perm.TRUNK, Cap.toN, Shrink.TtoN),
            (Perm.TRUNK, Cap.toB, Shrink.TtoB),
            (Perm.TRUNK, Cap.toT, Shrink.TtoT),
            (Perm.BRANCH, Cap.toN, Shrink.BtoN),
            (Perm.BRANCH, Cap.toB, Shrink.BtoB),
            (Perm.BRANCH, Cap.toT, Shrink.BtoB),
            (Perm.NONE, Cap.toN, Shrink.NtoN),
            (Perm.NONE, Cap.toT, Shrink.NtoN),
        ],
    )
    def test_probe_shrink(self, current, cap, expected):
        assert probe_shrink(current, cap) is expected

    def test_cap_perm(self):
        assert Cap.toT.perm is Perm.TRUNK
        assert Cap.toB.perm is Perm.BRANCH
        assert Cap.toN.perm is Perm.NONE


class TestMessages:
    def test_root_release_encoding(self):
        msg = root_release(
            1, 0x1000, param=ProbeAckParam.CLEAN, shrink=Shrink.TtoT, data=None
        )
        assert isinstance(msg, ProbeAck)
        assert msg.param is ProbeAckParam.CLEAN
        assert msg.is_root_release

    def test_root_release_flush_encoding(self):
        msg = root_release(
            0, 0x40, param=ProbeAckParam.FLUSH, shrink=Shrink.TtoN, data=b"\0" * 64
        )
        assert msg.param is ProbeAckParam.FLUSH
        assert msg.has_data

    def test_root_release_normal_param_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            root_release(
                0, 0x40, param=ProbeAckParam.NORMAL, shrink=Shrink.NtoN
            )

    def test_plain_probe_ack_is_not_root(self):
        assert not ProbeAck(source=0, address=0).is_root_release

    def test_root_release_ack_encoding(self):
        ack = root_release_ack(100, 0x80)
        assert isinstance(ack, ReleaseAck)
        assert ack.param is ReleaseAckParam.ROOT

    def test_normal_release_ack_param(self):
        assert ReleaseAck(source=0, address=0).param is ReleaseAckParam.NORMAL

    def test_grant_data_dirty_flag(self):
        grant = GrantData(source=0, address=0, data=b"\0" * 64, dirty=True)
        assert grant.dirty  # GrantDataDirty (§6)

    def test_txn_ids_unique(self):
        a = Acquire(source=0, address=0)
        b = Acquire(source=0, address=0)
        assert a.txn != b.txn

    def test_has_data(self):
        assert not Acquire(source=0, address=0).has_data
        assert Release(source=0, address=0, data=b"x" * 64).has_data
        assert not Probe(source=0, address=0).has_data


class TestBeatChannel:
    def test_dataless_message_single_beat(self):
        chan = BeatChannel("t", bus_bytes=16)
        msg = Probe(source=0, address=0)
        deliver_at = chan.send(msg, now=0)
        assert deliver_at == 1
        assert chan.pop_ready(0) is None
        assert chan.pop_ready(1) is msg

    def test_line_payload_takes_four_beats(self):
        chan = BeatChannel("t", bus_bytes=16)
        msg = Release(source=0, address=0, data=b"\0" * 64)
        assert chan.beats_for(msg) == 4
        deliver_at = chan.send(msg, now=0)
        assert deliver_at == 4

    def test_serialization_of_back_to_back_payloads(self):
        chan = BeatChannel("t", bus_bytes=16)
        m1 = Release(source=0, address=0, data=b"\0" * 64)
        m2 = Release(source=0, address=64, data=b"\0" * 64)
        chan.send(m1, now=0)
        deliver_at = chan.send(m2, now=0)
        assert deliver_at == 8  # waits behind the first 4-beat transfer

    def test_in_order_delivery(self):
        chan = BeatChannel("t", bus_bytes=16)
        m1 = Probe(source=0, address=0)
        m2 = Probe(source=0, address=64)
        chan.send(m1, now=0)
        chan.send(m2, now=0)
        assert chan.drain_ready(10) == [m1, m2]

    def test_idle_property(self):
        chan = BeatChannel("t")
        assert chan.idle
        chan.send(Probe(source=0, address=0), now=0)
        assert not chan.idle
        chan.drain_ready(10)
        assert chan.idle

    def test_invalid_bus_width(self):
        with pytest.raises(ValueError):
            BeatChannel("t", bus_bytes=0)

    def test_wider_bus_fewer_beats(self):
        wide = BeatChannel("t", bus_bytes=64)
        msg = Release(source=0, address=0, data=b"\0" * 64)
        assert wide.beats_for(msg) == 1
