"""Tests for :mod:`repro.verify.serve` — the stage-7 session oracle."""

from types import SimpleNamespace

from repro.store.layout import OP_PUT
from repro.verify.serve import ServeCrashSweep, SessionOracle


def ticket(lsn, acked=False):
    return SimpleNamespace(lsn=lsn, acked=acked)


class TestSessionOracleReads:
    def mk(self):
        oracle = SessionOracle()
        for lsn, key, value in ((1, 5, 100), (2, 5, 101), (3, 6, 200)):
            oracle.observe_append(lsn, OP_PUT, key, value)
        return oracle

    def test_unknown_value_is_flagged(self):
        oracle = self.mk()
        oracle.observe_read(0, 5, 999, "memtable")
        assert [v.kind for v in oracle.online] == ["session_unknown_value"]

    def test_read_your_writes_violation(self):
        oracle = self.mk()
        oracle.observe_write(0, 5, ticket(2))
        oracle.observe_read(0, 5, 100, "snapshot")  # lsn 1 < own write 2
        kinds = [v.kind for v in oracle.online]
        assert "session_ryw" in kinds

    def test_absence_after_own_write_is_a_ryw_violation(self):
        oracle = self.mk()
        oracle.observe_write(0, 5, ticket(2))
        oracle.observe_read(0, 5, None, "snapshot")
        assert any(v.kind == "session_ryw" for v in oracle.online)

    def test_monotonic_reads_violation(self):
        oracle = self.mk()
        oracle.observe_read(0, 5, 101, "memtable")  # observes lsn 2
        assert oracle.online == []
        oracle.observe_read(0, 5, 100, "snapshot")  # back to lsn 1
        assert [v.kind for v in oracle.online] == ["session_monotonic"]

    def test_fresh_reads_raise_the_seen_floor(self):
        oracle = self.mk()
        oracle.observe_read(0, 5, 100, "memtable")
        oracle.observe_read(0, 5, 101, "memtable")
        assert oracle.online == []
        assert oracle.session_seen[(0, 5)] == 2

    def test_sessions_are_independent(self):
        oracle = self.mk()
        oracle.observe_write(0, 5, ticket(2))
        # a different session never wrote key 5: the old value is fine
        oracle.observe_read(1, 5, 100, "snapshot")
        assert oracle.online == []


class TestSessionOracleShed:
    def test_acked_shed_op_is_flagged_once(self):
        oracle = SessionOracle()
        oracle.observe_shed(7, ticket(4, acked=True))
        first = oracle.shed_check(applied_lsn=0, at="p1")
        assert [v.kind for v in first] == ["shed_acked"]
        assert oracle.shed_check(applied_lsn=0, at="p2") == []

    def test_recovered_shed_op_is_flagged(self):
        oracle = SessionOracle()
        oracle.observe_shed(7, ticket(4))
        assert oracle.shed_check(applied_lsn=3, at="p") == []
        out = oracle.shed_check(applied_lsn=4, at="p")
        assert [v.kind for v in out] == ["shed_acked"]

    def test_honest_shed_is_vacuous(self):
        oracle = SessionOracle()
        oracle.observe_shed(7, None)  # rejected before ticketing
        assert oracle.shed_check(applied_lsn=10**9, at="p") == []


class TestServeCrashSweep:
    def test_unmutated_point_is_green(self):
        report = ServeCrashSweep("skipit", 8, ops=32).run()
        assert report.ok, report.violations[:3]
        assert report.crash_points > 0
        assert report.recoveries == report.crash_points
        assert report.config == "serve/skipit/gc=8/s=2"

    def test_sweep_exercises_every_request_kind(self):
        sweep = ServeCrashSweep("plain", 4, ops=48)
        report = sweep.run()
        assert report.ok, report.violations[:3]
        # the sweep is only as strong as what it drives: the mixed phase
        # must produce writes, shed decisions were possible (low high
        # water), and the RYW tail produced snapshot reads
        assert report.boundaries > 0
