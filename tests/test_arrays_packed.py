"""Packed-array equivalence suite.

Pins the packed flat-array :mod:`repro.uarch.arrays` against the retained
object-per-line reference (:mod:`repro.uarch.arrays_ref`) with randomized
differential tests, covers the ``write_word``/``read_word`` bounds fix
(the reference implementation silently *grew* the line on an
out-of-range offset), and checks engine-level bit-identity of one quick
figure-9 point and one quick figure-18 point against the committed
``baselines/quick.json``.
"""

import json
import random
from pathlib import Path

import pytest

from repro.sim.config import CacheGeometry
from repro.tilelink.permissions import Perm
from repro.uarch.arrays import DataArray, MetaArray
from repro.uarch.arrays_ref import RefDataArray, RefMetaArray

BASELINE = Path(__file__).resolve().parent.parent / "baselines" / "quick.json"

PERMS = [Perm.NONE, Perm.BRANCH, Perm.TRUNK]


def geometry():
    # 8 sets x 4 ways of 64B lines
    return CacheGeometry(size_bytes=2048, ways=4)


def random_address(rng, g):
    # a handful of tags per set so hits, misses and conflicts all occur
    return rng.randrange(0, 8 * g.num_sets) * g.line_bytes


def assert_meta_equal(packed, ref, g):
    """Full-state comparison: every slot plus the victim choice per set."""
    for set_idx in range(g.num_sets):
        for way in range(g.ways):
            address = set_idx * g.line_bytes  # any address in the set
            pe = packed.way_entry(address, way)
            re = ref.way_entry(address, way)
            assert pe.valid == re.valid, (set_idx, way)
            if pe.valid:
                assert pe.tag == re.tag, (set_idx, way)
                assert pe.perm is re.perm, (set_idx, way)
                assert pe.dirty == re.dirty, (set_idx, way)
                assert pe.skip == re.skip, (set_idx, way)
        for exclude in (None, {0}, {1, 3}, set(range(g.ways))):
            address = set_idx * g.line_bytes
            assert packed.victim_way(address, exclude) == ref.victim_way(
                address, exclude
            ), (set_idx, exclude)


class TestMetaDifferential:
    def test_random_operation_stream(self):
        g = geometry()
        rng = random.Random(0xC0FFEE)
        packed, ref = MetaArray(g), RefMetaArray(g)
        for step in range(4000):
            op = rng.randrange(6)
            address = random_address(rng, g)
            if op == 0:  # install over the reference's victim choice
                way = ref.victim_way(address)
                perm = rng.choice([Perm.BRANCH, Perm.TRUNK])
                dirty, skip = rng.random() < 0.5, rng.random() < 0.3
                packed.install(address, way, perm, dirty=dirty, skip=skip)
                ref.install(address, way, perm, dirty=dirty, skip=skip)
            elif op == 1:  # touch on a hit
                hit = ref.lookup(address)
                if hit is not None:
                    packed.touch(address, hit[0])
                    ref.touch(address, hit[0])
            elif op == 2:  # lookup agreement
                ph, rh = packed.lookup(address), ref.lookup(address)
                assert (ph is None) == (rh is None), step
                if ph is not None:
                    assert ph[0] == rh[0]
            elif op == 3:  # invalidate through the entry proxy
                entry = packed.entry(address)
                if entry is not None:
                    entry.invalidate()
                    ref.entry(address).invalidate()
            elif op == 4:  # mutate dirty/skip through the entry proxy
                hit = ref.lookup(address)
                if hit is not None:
                    way = hit[0]
                    pe = packed.way_entry(address, way)
                    re = ref.way_entry(address, way)
                    pe.dirty = re.dirty = rng.random() < 0.5
                    pe.skip = re.skip = rng.random() < 0.5
            else:  # iter_valid agreement
                pv = [(s, w) for s, w, _ in packed.iter_valid()]
                rv = [(s, w) for s, w, _ in ref.iter_valid()]
                assert pv == rv, step
            if step % 250 == 0:
                assert_meta_equal(packed, ref, g)
        assert_meta_equal(packed, ref, g)

    def test_victim_sequence_matches_reference(self):
        """Install-evict churn: stamp LRU == list LRU at every step."""
        g = geometry()
        rng = random.Random(7)
        packed, ref = MetaArray(g), RefMetaArray(g)
        for _ in range(2000):
            address = random_address(rng, g)
            hit = ref.lookup(address)
            if hit is not None:
                packed.touch(address, hit[0])
                ref.touch(address, hit[0])
                continue
            pv = packed.victim_way(address)
            rv = ref.victim_way(address)
            assert pv == rv
            packed.install(address, pv, Perm.TRUNK)
            ref.install(address, rv, Perm.TRUNK)

    def test_address_of_roundtrip(self):
        g = geometry()
        packed = MetaArray(g)
        address = 5 * g.num_sets * g.line_bytes + 3 * g.line_bytes
        entry = packed.install(address, way=2, perm=Perm.BRANCH)
        assert packed.address_of(g.set_index(address), entry) == address


class TestDataDifferential:
    def test_random_word_and_line_stream(self):
        g = geometry()
        rng = random.Random(42)
        packed, ref = DataArray(g), RefDataArray(g)
        words = g.line_bytes // 8
        for _ in range(3000):
            set_idx = rng.randrange(g.num_sets)
            way = rng.randrange(g.ways)
            op = rng.randrange(4)
            if op == 0:
                value = rng.getrandbits(64)
                offset = rng.randrange(words) * 8
                packed.write_word(set_idx, way, offset, value)
                ref.write_word(set_idx, way, offset, value)
            elif op == 1:
                payload = bytes(rng.getrandbits(8) for _ in range(g.line_bytes))
                packed.write_line(set_idx, way, payload)
                ref.write_line(set_idx, way, payload)
            elif op == 2:
                offset = rng.randrange(words) * 8
                assert packed.read_word(set_idx, way, offset) == ref.read_word(
                    set_idx, way, offset
                )
            else:
                assert packed.read_line(set_idx, way) == ref.read_line(
                    set_idx, way
                )
        for set_idx in range(g.num_sets):
            for way in range(g.ways):
                assert packed.read_line(set_idx, way) == ref.read_line(
                    set_idx, way
                )


class TestWordBounds:
    """Regression for the out-of-range word access bug.

    The reference implementation spliced past the end of the line: a
    64-byte line silently grew to 68 bytes on ``write_word(..., 60, v)``
    and reads past the end returned a short (mis-decoded) word.  The
    packed arrays raise ``ValueError`` instead.
    """

    def test_write_word_rejects_past_end(self):
        data = DataArray(geometry())
        with pytest.raises(ValueError, match="out of range"):
            data.write_word(0, 0, 60, 1)  # would straddle the line end

    def test_write_word_rejects_at_line_bytes(self):
        data = DataArray(geometry())
        with pytest.raises(ValueError, match="out of range"):
            data.write_word(0, 0, 64, 1)

    def test_write_word_rejects_negative(self):
        data = DataArray(geometry())
        with pytest.raises(ValueError, match="out of range"):
            data.write_word(0, 0, -8, 1)

    def test_read_word_rejects_past_end(self):
        data = DataArray(geometry())
        with pytest.raises(ValueError, match="out of range"):
            data.read_word(0, 0, 57)

    def test_last_word_still_accessible(self):
        g = geometry()
        data = DataArray(g)
        data.write_word(0, 0, g.line_bytes - 8, 0xA5A5)
        assert data.read_word(0, 0, g.line_bytes - 8) == 0xA5A5

    def test_reference_grow_bug_is_why(self):
        # documents the reference behaviour the fix removes: the line grew
        ref = RefDataArray(geometry())
        ref.write_word(0, 0, 60, 0xFFFFFFFFFFFFFFFF)
        assert len(ref._lines[(0, 0)]) == 68  # silently oversized


class TestEngineBitIdentity:
    """The packed rewrite must not move a single simulated cycle.

    Re-runs one quick-mode figure-9 point and one quick-mode figure-18
    point and compares them field-for-field against the committed
    ``baselines/quick.json`` (recorded with the original object-per-line
    arrays).
    """

    @pytest.fixture(scope="class")
    def baseline(self):
        with open(BASELINE) as fh:
            return json.load(fh)

    def test_fig9_point_bit_identical(self, baseline):
        from repro.bench.micro import run_fig09

        rows = run_fig09(quick=True, sizes=[512], threads=[1])
        assert len(rows) == 1
        row = rows[0]
        want = next(
            r
            for r in baseline["figures"]["9"]["rows"]
            if r["size_bytes"] == 512 and r["threads"] == 1
        )
        assert row.median_cycles == want["median_cycles"]
        assert row.stdev_cycles == want["stdev_cycles"]

    def test_fig18_point_bit_identical(self, baseline):
        from repro.bench.runner import point_seed
        from repro.bench.shared import run_fig18

        # the baseline snapshot runs each point with its canonical seed
        rows = run_fig18(
            quick=True,
            optimizers=["plain"],
            threads=[1],
            seed=point_seed(18, "plain,t=1"),
        )
        assert len(rows) == 1
        row = rows[0]
        want = next(
            r
            for r in baseline["figures"]["18"]["rows"]
            if r["optimizer"] == "plain" and r["threads"] == 1
        )
        assert row.throughput_mops == want["throughput_mops"]
        assert row.fences == want["fences"]
        assert row.ack_p50 == want["ack_p50"]
        assert row.ack_p99 == want["ack_p99"]
        assert row.cbo_issued == want["cbo_issued"]
        assert row.cbo_skipped == want["cbo_skipped"]
        assert row.wal_records == want["wal_records"]
        assert row.wal_bytes == want["wal_bytes"]
        assert row.commits == want["commits"]
        assert row.mean_batch == want["mean_batch"]
