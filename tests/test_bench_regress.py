"""Perf-regression tracking: direction-aware baseline comparison.

Red/green semantics under test: identical documents are green, a
seeded simulator slowdown (fence cost doubled) turns the check red
with a ``regression``-kind delta, helpful movement is reported as an
``improvement`` without failing, and neutral-field movement is
``drift`` (red: the runs are no longer comparable).
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import baseline as baseline_mod
from repro.bench import regress
from repro.bench.shared import run_fig18
from repro.timing.params import TimingParams


def _doc(rows, quick=True):
    from dataclasses import asdict

    return {
        "schema": baseline_mod.SCHEMA_VERSION,
        "benchmark": "skipit-bench",
        "quick": quick,
        "jobs": 1,
        "figures": {
            "18": {"points": len(rows), "rows": [asdict(r) for r in rows]}
        },
    }


def _one_point(**kwargs):
    return run_fig18(
        quick=True,
        optimizers=["plain"],
        threads=[2],
        duration=10_000,
        seed=7,
        **kwargs,
    )


class TestCompareSemantics:
    def _rows(self):
        return _one_point()

    def test_green_on_identical_documents(self):
        doc = _doc(self._rows())
        report = regress.compare(doc, copy.deepcopy(doc))
        assert report.passed
        assert report.deltas == [] and report.problems == []
        assert report.rows_compared == 1
        assert "PASS" in report.format()

    def test_throughput_drop_is_a_regression(self):
        base = _doc(self._rows())
        cur = copy.deepcopy(base)
        row = cur["figures"]["18"]["rows"][0]
        row["throughput_mops"] *= 0.8
        report = regress.compare(cur, base)
        assert not report.passed
        kinds = {(d.field, d.kind) for d in report.deltas}
        assert ("throughput_mops", "regression") in kinds
        assert "REGRESSION" in report.format()

    def test_latency_drop_is_an_improvement_and_stays_green(self):
        base = _doc(self._rows())
        cur = copy.deepcopy(base)
        row = cur["figures"]["18"]["rows"][0]
        row["ack_p99"] *= 0.5
        report = regress.compare(cur, base)
        assert report.passed
        kinds = {(d.field, d.kind) for d in report.deltas}
        assert ("ack_p99", "improvement") in kinds

    def test_neutral_field_movement_is_drift_and_red(self):
        base = _doc(self._rows())
        cur = copy.deepcopy(base)
        row = cur["figures"]["18"]["rows"][0]
        row["wal_records"] = int(row["wal_records"] * 1.5) + 10
        report = regress.compare(cur, base)
        assert not report.passed
        assert any(d.kind == "drift" for d in report.deltas)

    def test_missing_row_is_structural(self):
        base = _doc(self._rows())
        cur = copy.deepcopy(base)
        cur["figures"]["18"]["rows"] = []
        report = regress.compare(cur, base)
        assert not report.passed
        assert any("missing" in p for p in report.problems)

    def test_mode_mismatch_is_structural(self):
        base = _doc(self._rows(), quick=True)
        cur = _doc(self._rows(), quick=False)
        report = regress.compare(cur, base)
        assert not report.passed
        assert any("mode mismatch" in p for p in report.problems)

    def test_report_round_trips_through_json(self):
        base = _doc(self._rows())
        cur = copy.deepcopy(base)
        cur["figures"]["18"]["rows"][0]["throughput_mops"] *= 0.5
        report = regress.compare(cur, base)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["passed"] is False
        assert doc["deltas"][0]["kind"] == "regression"


class TestSeededSlowdown:
    def test_slower_fences_turn_red(self, monkeypatch):
        base = _doc(_one_point())

        def slow_params(**kwargs):
            kwargs.setdefault("fence_base", TimingParams.fence_base * 8)
            return TimingParams(**kwargs)

        # the mutant: every fence costs 8x the baseline cycles (fences
        # amortize over group-commit epochs, so a mild bump hides
        # inside the tolerance band — the check flags what matters)
        monkeypatch.setattr(
            "repro.workloads.store.TimingParams", slow_params
        )
        cur = _doc(_one_point())
        report = regress.compare(cur, base)
        assert not report.passed
        regressions = {d.field for d in report.of_kind("regression")}
        # slower fences must surface as worse throughput and/or latency
        assert regressions & {"throughput_mops", "ack_p50", "ack_p99"}

    def test_same_seed_rerun_stays_green(self):
        # determinism guard for the test above: without the mutant the
        # same point re-run compares clean at the default tolerance
        report = regress.compare(_doc(_one_point()), _doc(_one_point()))
        assert report.passed and not report.deltas


class TestAgainstCommittedBaseline:
    def test_run_and_compare_green_on_committed_quick_baseline(self):
        # acceptance: regress is green on the committed baselines (and
        # this doubles as the tracing-detached bit-identity check at
        # figure granularity — no tracer is attached anywhere here)
        report = regress.run_and_compare(
            "baselines/quick.json", figures=[18], jobs=1
        )
        assert report.passed, report.format()
        # 15 figure rows + the baseline's sim-speed selftest sample
        assert report.rows_compared == 16
        assert report.figures == [18]

    def test_requesting_figure_not_in_baseline(self):
        report = regress.run_and_compare(
            "baselines/quick.json", figures=[99]
        )
        assert not report.passed
        assert any("none of which" in p for p in report.problems)


class TestSelftestComparison:
    """The sim-speed selftest rides in the baseline as a tracked field."""

    @staticmethod
    def _st(rate):
        return {
            "size_bytes": 16384,
            "threads": 1,
            "repeats": 3,
            "median_cycles": 3006.0,
            "engine_cycles": 35640,
            "engine_seconds": 0.5,
            "engine_cycles_per_sec": rate,
            "wall_seconds": 0.6,
            "cycles_per_sec": rate / 4,
        }

    def _docs(self, base_rate, cur_rate):
        rows = _one_point()
        base = _doc(rows)
        cur = copy.deepcopy(base)
        base["selftest"] = self._st(base_rate)
        cur["selftest"] = self._st(cur_rate)
        return cur, base

    def test_within_generous_band_is_green(self):
        # -30% is inside SELFTEST_REL_TOL: host noise, not a regression
        cur, base = self._docs(60_000.0, 42_000.0)
        report = regress.compare(cur, base)
        assert report.passed
        assert report.rows_compared == 2  # figure row + selftest

    def test_large_slowdown_turns_red(self):
        cur, base = self._docs(60_000.0, 6_000.0)
        report = regress.compare(cur, base)
        assert not report.passed
        (delta,) = report.of_kind("regression")
        assert delta.row == "selftest"
        assert delta.field == "engine_cycles_per_sec"

    def test_speedup_is_an_improvement_and_green(self):
        cur, base = self._docs(6_000.0, 60_000.0)
        report = regress.compare(cur, base)
        assert report.passed
        assert report.of_kind("improvement")

    def test_missing_current_selftest_is_structural(self):
        cur, base = self._docs(60_000.0, 60_000.0)
        del cur["selftest"]
        report = regress.compare(cur, base)
        assert not report.passed
        assert any("selftest" in p for p in report.problems)

    def test_baseline_without_selftest_ignores_current(self):
        cur, base = self._docs(60_000.0, 6_000.0)
        del base["selftest"]
        report = regress.compare(cur, base)
        assert report.passed
