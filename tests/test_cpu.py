"""Tests for the simplified BOOM core (ROB/LSU ordering rules)."""

from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.requests import MemOp
from repro.uarch.soc import Soc


class TestInstrBuilders:
    def test_builders(self):
        assert Instr.load(0x40).op is MemOp.LOAD
        assert Instr.store(0x40, 1).op is MemOp.STORE
        assert Instr.clean(0x40).op is MemOp.CBO_CLEAN
        assert Instr.flush(0x40).op is MemOp.CBO_FLUSH
        assert Instr.fence().op is MemOp.FENCE

    def test_stq_classification(self):
        assert not MemOp.LOAD.is_stq
        assert MemOp.STORE.is_stq
        assert MemOp.CBO_CLEAN.is_stq and MemOp.CBO_FLUSH.is_stq
        assert MemOp.FENCE.is_stq
        assert MemOp.CBO_FLUSH.is_cbo and not MemOp.STORE.is_cbo


class TestExecution:
    def test_program_completes(self):
        soc = Soc()
        cycles = soc.run_programs([[Instr.store(0x40, 1), Instr.load(0x40)]])
        assert soc.cores[0].done
        assert cycles > 0
        assert soc.cores[0].load_result(1) == 1

    def test_store_load_forwarding_through_cache(self):
        soc = Soc()
        program = [Instr.store(0x100, 0xAB), Instr.load(0x100)]
        soc.run_programs([program])
        assert soc.cores[0].load_result(1) == 0xAB

    def test_loads_can_pass_unrelated_stores(self):
        """LDQ requests fire out of order past independent stores (§3.2)."""
        soc = Soc()
        # warm the load's line so it hits while the store misses
        soc.run_programs([[Instr.load(0x200)]])
        soc.drain()
        program = [Instr.store(0x9000, 1), Instr.load(0x200)]
        soc.run_programs([program])
        core = soc.cores[0]
        assert core.load_result(1) == 0

    def test_load_blocked_by_same_line_store(self):
        soc = Soc()
        program = [Instr.store(0x300, 42), Instr.load(0x300)]
        soc.run_programs([program])
        assert soc.cores[0].load_result(1) == 42  # never reads stale 0

    def test_fence_waits_for_flush_counter(self):
        soc = Soc()
        program = [
            Instr.store(0x400, 1),
            Instr.flush(0x400),
            Instr.fence(),
        ]
        soc.run_programs([program])
        # at fence commit the writeback must have fully completed
        assert soc.persisted_value(0x400) == 1
        assert soc.cores[0].stats.get("fences") == 1
        assert soc.cores[0].stats.get("fence_wait_flush") > 0

    def test_cbo_commits_before_writeback_completes(self):
        """CBO.X commit only needs buffering (§5.2): later independent
        instructions proceed while the writeback is in flight."""
        soc = Soc()
        soc.run_programs([[Instr.store(0x500, 1), Instr.store(0x600, 2)]])
        soc.drain()
        program = [Instr.flush(0x500), Instr.load(0x600)]
        cycles = soc.run_programs([program])
        # the load is a hit: the program finishes long before a full
        # writeback round trip would allow if the CBO were synchronous
        assert cycles < 60
        soc.drain()
        assert soc.persisted_value(0x500) == 1

    def test_nack_retry_eventually_succeeds(self):
        params = SoCParams(
            flush_unit=SoCParams().flush_unit.__class__(
                num_fshrs=1, flush_queue_depth=1
            )
        )
        soc = Soc(params)
        lines = [0x7000 + i * 64 for i in range(6)]
        soc.run_programs([[Instr.store(a, i) for i, a in enumerate(lines)]])
        soc.drain()
        program = [Instr.flush(a) for a in lines] + [Instr.fence()]
        soc.run_programs([program])
        soc.drain()
        for i, a in enumerate(lines):
            assert soc.persisted_value(a) == i
        assert soc.cores[0].stats.get("nacks") > 0

    def test_run_programs_rejects_too_many(self):
        soc = Soc()
        try:
            soc.run_programs([[], [], []])
            assert False
        except ValueError:
            pass

    def test_multiple_programs_sequentially(self):
        soc = Soc()
        soc.run_programs([[Instr.store(0x40, 1)]])
        soc.drain()
        soc.run_programs([[Instr.load(0x40)]])
        assert soc.cores[0].load_result(0) == 1


class TestLoadBypassOrdering:
    """Pin the fire-ordering specification (§3.1-§3.2) via ``_eligible``.

    ``tick`` enforces these rules with carried-forward state;
    ``_eligible`` is the retained per-slot reference form.  These tests
    also cover the fixed guard: the same-line check must consult the
    *older op's* address, and only STQ-resident ops (stores, CBO.X,
    fences) may block a younger load.
    """

    @staticmethod
    def _core_with(program):
        soc = Soc()
        core = soc.cores[0]
        core.run_program(program)
        return core

    def test_older_same_line_store_blocks_load(self):
        core = self._core_with([Instr.store(0x100, 1), Instr.load(0x108)])
        assert not core._eligible(1, core.slots[1])

    def test_older_fence_blocks_load(self):
        core = self._core_with([Instr.fence(), Instr.load(0x2000)])
        assert not core._eligible(1, core.slots[1])

    def test_older_other_line_store_does_not_block_load(self):
        core = self._core_with([Instr.store(0x100, 1), Instr.load(0x9000)])
        assert core._eligible(1, core.slots[1])

    def test_older_same_line_cbo_blocks_load(self):
        core = self._core_with([Instr.flush(0x140), Instr.load(0x148)])
        assert not core._eligible(1, core.slots[1])

    def test_done_older_store_unblocks_load(self):
        from repro.uarch.cpu import _Status

        core = self._core_with([Instr.store(0x100, 1), Instr.load(0x108)])
        core.slots[0].status = _Status.DONE
        assert core._eligible(1, core.slots[1])

    def test_older_load_never_blocks_load(self):
        core = self._core_with([Instr.load(0x300), Instr.load(0x308)])
        assert core._eligible(1, core.slots[1])

    def test_stq_requires_all_older_done(self):
        from repro.uarch.cpu import _Status

        core = self._core_with([Instr.load(0x400), Instr.store(0x9000, 1)])
        assert not core._eligible(1, core.slots[1])
        core.slots[0].status = _Status.DONE
        assert core._eligible(1, core.slots[1])

    def test_bypass_result_matches_in_order_value(self):
        """End to end: the bypassing load still returns the right data."""
        soc = Soc()
        soc.run_programs([[Instr.store(0x500, 7)]])
        soc.drain()
        # same-line load after a store must observe the new value even
        # though an unrelated miss is in flight ahead of it
        program = [
            Instr.store(0xA000, 1),  # miss, long latency
            Instr.store(0x500, 9),  # hit line
            Instr.load(0x508),  # same line as older store: must wait
            Instr.load(0x500),
        ]
        soc.run_programs([program])
        core = soc.cores[0]
        assert core.load_result(3) == 9
