"""Tests for the Markdown report generator and the CLI --report flag."""

import os

from repro.bench.cli import main
from repro.bench.report import _markdown_table, build_report


class TestMarkdownTable:
    def test_headers_and_separator(self):
        out = _markdown_table(["a", "b"], [(1, 2)])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_none_renders_na(self):
        assert "n/a" in _markdown_table(["x"], [(None,)])

    def test_float_formatting(self):
        assert "1.500" in _markdown_table(["x"], [(1.5,)])


class TestBuildReport:
    def test_single_micro_figure(self):
        text = build_report([13], quick=True)
        assert "# Measured figure reproductions" in text
        assert "## Figure 13" in text
        assert "Skip It" in text
        assert "| series |" in text

    def test_single_throughput_figure(self):
        text = build_report([16], quick=True)
        assert "## Figure 16" in text
        assert "skipit" in text


class TestCliReport:
    def test_report_written(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["--fig", "13", "--quick", "--report", str(target)]) == 0
        assert target.exists()
        content = target.read_text()
        assert "Figure 13" in content
        out = capsys.readouterr().out
        assert "report written" in out
