"""Unit tests for the cycle engine and its watchdog."""

import pytest

from repro.sim.engine import Engine, SimulationDeadlock


class TickCounter:
    def __init__(self, engine=None, progress=False):
        self.engine = engine
        self.progress = progress
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1
        if self.progress and self.engine is not None:
            self.engine.note_progress()


class TestEngine:
    def test_step_advances_cycle(self):
        engine = Engine()
        engine.step(5)
        assert engine.cycle == 5

    def test_components_tick_once_per_cycle(self):
        engine = Engine()
        a, b = TickCounter(), TickCounter()
        engine.register(a)
        engine.register(b)
        engine.step(7)
        assert a.ticks == 7
        assert b.ticks == 7

    def test_components_tick_in_registration_order(self):
        engine = Engine()
        order = []

        class Recorder:
            def __init__(self, name):
                self.name = name

            def tick(self, cycle):
                order.append(self.name)

        engine.register(Recorder("first"))
        engine.register(Recorder("second"))
        engine.step()
        assert order == ["first", "second"]

    def test_run_until_returns_cycles_consumed(self):
        engine = Engine()
        target = {}

        class Setter:
            def tick(self, cycle):
                if cycle == 12:
                    target["done"] = True

        engine.register(Setter())
        engine.register(TickCounter(engine, progress=True))
        consumed = engine.run_until(lambda: target.get("done", False))
        assert consumed == 12

    def test_run_until_max_cycles(self):
        engine = Engine()
        engine.register(TickCounter(engine, progress=True))
        with pytest.raises(SimulationDeadlock):
            engine.run_until(lambda: False, max_cycles=50)

    def test_watchdog_fires_without_progress(self):
        engine = Engine(watchdog_interval=10)
        engine.register(TickCounter())
        with pytest.raises(SimulationDeadlock):
            engine.step(100)

    def test_watchdog_quiet_with_progress(self):
        engine = Engine(watchdog_interval=10)
        engine.register(TickCounter(engine, progress=True))
        engine.step(100)  # no exception

    def test_watchdog_disabled(self):
        engine = Engine(watchdog_interval=0)
        engine.register(TickCounter())
        engine.step(1000)  # no exception
        assert engine.cycle == 1000
