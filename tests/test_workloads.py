"""Tests for the microbenchmark workload generators.

These run small instances and assert the *shape* claims of §7.2-§7.4 that
the figures report, which is the real contract of the harness.
"""

import pytest

from repro.workloads.datastructs import DataStructureBenchmark
from repro.workloads.redundant import redundant_writeback_latency
from repro.workloads.reread import clean_vs_flush_reread
from repro.workloads.sweep import writeback_sweep

KIB = 1024


class TestWritebackSweep:
    def test_single_line_latency_near_100_cycles(self):
        """§7.2: one CBO.X to one line costs about 100 cycles."""
        result = writeback_sweep(64, threads=1, repeats=3)
        assert 70 <= result.median <= 140

    def test_latency_grows_with_size(self):
        small = writeback_sweep(64, repeats=2).median
        large = writeback_sweep(4 * KIB, repeats=2).median
        assert large > small * 3

    def test_threads_reduce_latency(self):
        """§7.2: splitting the flush across threads approaches linear."""
        one = writeback_sweep(8 * KIB, threads=1, repeats=2).median
        four = writeback_sweep(8 * KIB, threads=4, repeats=2).median
        assert four < one / 2

    def test_clean_and_flush_equal_in_isolation(self):
        """§7.2: CBO.CLEAN and CBO.FLUSH are equivalent in isolation."""
        flush = writeback_sweep(2 * KIB, clean=False, repeats=2).median
        clean = writeback_sweep(2 * KIB, clean=True, repeats=2).median
        assert clean == pytest.approx(flush, rel=0.1)

    def test_samples_counted(self):
        result = writeback_sweep(64, repeats=4)
        assert len(result.samples) == 4


class TestCleanVsFlushReread:
    def test_clean_reread_faster(self):
        """Figure 10: re-read after clean ~2x faster than after flush."""
        clean = clean_vs_flush_reread(512, clean=True, repeats=2).median
        flush = clean_vs_flush_reread(512, clean=False, repeats=2).median
        assert flush > clean * 1.5

    def test_op_label(self):
        assert clean_vs_flush_reread(64, clean=True, repeats=1).op == "clean"


class TestRedundantWriteback:
    def test_skip_it_beats_naive(self):
        """Figure 13: Skip It removes the redundant-writeback cost."""
        naive = redundant_writeback_latency(512, skip_it=False, repeats=2).median
        skipit = redundant_writeback_latency(512, skip_it=True, repeats=2).median
        assert skipit < naive * 0.9

    def test_gap_grows_with_redundancy(self):
        naive_0 = redundant_writeback_latency(
            256, skip_it=False, redundant=0, repeats=2
        ).median
        naive_10 = redundant_writeback_latency(
            256, skip_it=False, redundant=10, repeats=2
        ).median
        skip_10 = redundant_writeback_latency(
            256, skip_it=True, redundant=10, repeats=2
        ).median
        assert naive_10 > naive_0  # redundant CBOs cost the naive design
        assert skip_10 < naive_10


class TestDataStructureBenchmark:
    def test_applicability_matrix(self):
        assert not DataStructureBenchmark("bst", "manual", "link-and-persist").applicable
        assert DataStructureBenchmark("bst", "manual", "skipit").applicable
        assert DataStructureBenchmark("list", "manual", "link-and-persist").applicable

    def test_inapplicable_run_raises(self):
        bench = DataStructureBenchmark("bst", "manual", "link-and-persist")
        with pytest.raises(ValueError):
            bench.run(duration=1000)

    def test_unknown_structure_rejected(self):
        with pytest.raises(ValueError):
            DataStructureBenchmark("btree", "manual", "plain")

    def test_result_fields(self):
        bench = DataStructureBenchmark(
            "hashtable", "manual", "skipit", key_range=256
        )
        result = bench.run(duration=20_000, warmup_ops=20)
        assert result.total_ops > 0
        assert result.elapsed_cycles >= 20_000
        assert result.throughput_mops > 0

    def test_skip_it_filters_redundant_flushes(self):
        bench = DataStructureBenchmark(
            "hashtable", "automatic", "skipit", key_range=256
        )
        result = bench.run(duration=30_000, warmup_ops=50)
        assert result.cbo_skipped > result.cbo_issued

    def test_plain_issues_every_request(self):
        bench = DataStructureBenchmark(
            "hashtable", "automatic", "plain", key_range=256
        )
        result = bench.run(duration=20_000, warmup_ops=20)
        assert result.cbo_skipped == 0
        assert result.cbo_issued > 0
