"""Unit tests for the persistence policies and the PMemView frame."""

import pytest

from repro.persist.api import PMemView
from repro.persist.flushopt import Plain
from repro.persist.policies import (
    Automatic,
    Manual,
    NonPersistent,
    NVTraverse,
    make_policy,
)
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem


def view_for(policy):
    system = TimingSystem(TimingParams(num_threads=1))
    return PMemView(system.threads[0], policy, Plain()), system


class TestPolicyMatrices:
    def test_automatic_flushes_everything(self):
        p = Automatic()
        assert p.flush_on_read(False) and p.flush_on_read(True)
        assert p.flush_on_write(False) and p.flush_on_write(True)
        assert p.fence_on_op_end(False) and p.fence_on_op_end(True)

    def test_nvtraverse_flushes_critical_reads_all_writes(self):
        p = NVTraverse()
        assert not p.flush_on_read(False)
        assert p.flush_on_read(True)
        assert p.flush_on_write(False) and p.flush_on_write(True)
        assert p.fence_on_op_end(False)

    def test_manual_flushes_critical_writes_only(self):
        p = Manual()
        assert not p.flush_on_read(True)
        assert not p.flush_on_write(False)
        assert p.flush_on_write(True)
        assert p.fence_on_op_end(True) and not p.fence_on_op_end(False)

    def test_none_policy(self):
        p = NonPersistent()
        assert not p.flush_on_read(True)
        assert not p.flush_on_write(True)
        assert not p.fence_on_op_end(True)

    def test_factory(self):
        for name in ("automatic", "nvtraverse", "manual", "none"):
            assert make_policy(name).name == name
        with pytest.raises(ValueError):
            make_policy("bogus")


class TestPMemView:
    def test_automatic_read_triggers_flush(self):
        view, system = view_for(Automatic())
        view.ctx.store(0x40, 1)  # direct store: line dirty
        view.read(0x40)
        assert view.flush_requests == 1
        assert system.stats.get("cbo_issued") == 1

    def test_manual_read_never_flushes(self):
        view, system = view_for(Manual())
        view.read(0x40)
        assert view.flush_requests == 0

    def test_write_critical_flag_respected(self):
        view, system = view_for(Manual())
        view.write(0x40, 1, critical=False)
        assert view.flush_requests == 0
        view.write(0x40, 2, critical=True)
        assert view.flush_requests == 1

    def test_op_frame_fences_updates_only(self):
        view, system = view_for(Manual())
        view.op_begin()
        view.read(0x40)
        view.op_end()
        assert system.stats.get("fences") == 0
        view.op_begin()
        view.write(0x40, 1, critical=True)
        view.op_end()
        assert system.stats.get("fences") == 1

    def test_nvtraverse_critical_read_flushes(self):
        view, system = view_for(NVTraverse())
        view.ctx.store(0x40, 1)
        view.read(0x40)  # traversal read: no flush
        assert view.flush_requests == 0
        view.read(0x40, critical=True)
        assert view.flush_requests == 1
        assert system.stats.get("cbo_issued") == 1

    def test_automatic_critical_read_flushes(self):
        view, system = view_for(Automatic())
        view.ctx.store(0x40, 1)
        view.read(0x40, critical=True)
        assert view.flush_requests == 1

    def test_cas_failure_is_not_an_update(self):
        view, system = view_for(Manual())
        view.ctx.store(0x40, 5)
        view.op_begin()
        assert not view.cas(0x40, 99, 1)
        view.op_end()
        assert system.stats.get("fences") == 0

    def test_cas_failure_never_flushes_or_marks_update(self):
        # even under the most aggressive policy a failed CAS must not
        # flush (nothing changed) nor arm the op-end fence
        view, system = view_for(Automatic())
        view.ctx.store(0x40, 5)
        view.op_begin()
        assert not view.cas(0x40, 99, 1)
        assert view.flush_requests == 0
        assert not view._did_update
        assert view.read(0x40) == 5  # value untouched

    def test_clean_counts_as_flush_request(self):
        view, system = view_for(Manual())
        view.ctx.store(0x40, 5)
        view.clean(0x40)
        assert view.flush_requests == 1
        assert system.stats.get("cbo_issued") == 1

    def test_cas_success_flushes_and_fences(self):
        view, system = view_for(Manual())
        view.ctx.store(0x40, 5)
        view.op_begin()
        assert view.cas(0x40, 5, 6)
        view.op_end()
        assert view.flush_requests == 1
        assert system.stats.get("fences") == 1
