"""Self-test of the verification harness: known bugs must be caught.

A fault-injection harness that never fails is indistinguishable from one
that checks nothing.  These tests re-introduce the known-bad model
variants from :mod:`repro.verify.mutants` — including the PR 2 L3-dirty
data-loss bug — and assert the crash-point injectors report violations
for every one of them, with the expected violation kind.  Plus unit
tests for the durability oracle itself (floors, ghosts, ceilings).
"""

import pytest

from repro.sim.config import CacheGeometry
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.verify.injector import SocCrashInjector, TimingCrashInjector
from repro.verify.mutants import (
    SERVE_MUTANTS,
    SHARED_STORE_MUTANTS,
    SOC_MUTANTS,
    STORE_MUTANTS,
    TIMING_MUTANTS,
    TXN_MUTANTS,
    soc_mutant,
    timing_mutant,
)
from repro.verify.oracle import DurabilityOracle, WordHistory
from repro.verify.serve import ServeCrashSweep
from repro.verify.store import SharedStoreCrashSweep, StoreCrashSweep
from repro.verify.txn import SharedTxnCrashSweep, TxnCrashSweep

ADDR = 0x10000


def mk(skip_it: bool = True) -> TimingSystem:
    return TimingSystem(
        TimingParams(
            num_threads=2,
            skip_it=skip_it,
            l1=CacheGeometry(size_bytes=256, ways=2),
            l2=CacheGeometry(size_bytes=512, ways=2),
            l3=CacheGeometry(size_bytes=4096, ways=4),
        )
    )


def timing_schedule(system: TimingSystem, mutant: str):
    """A schedule that exercises the code path the mutant breaks."""
    if mutant == "l3_dirty_clean_lost":
        # dirty ADDR into the victim L3 via conflict stores, then clean
        stride = system.params.l2.num_sets * system.params.line_bytes
        return (
            [(0, Instr.store(ADDR, 42))]
            + [
                (0, Instr.store(ADDR + i * stride, 100 + i))
                for i in range(1, 5)
            ]
            + [(0, Instr.clean(ADDR)), (0, Instr.fence())]
        )
    if mutant == "clean_forgets_l2_dirty":
        # reader probe leaves the dirty copy in L2, then clean it
        return [
            (0, Instr.store(ADDR, 42)),
            (1, Instr.load(ADDR)),
            (0, Instr.clean(ADDR)),
            (0, Instr.fence()),
        ]
    if mutant == "store_keeps_skip":
        # clean sets the skip bit; the re-dirtying store must clear it
        return [
            (0, Instr.store(ADDR, 42)),
            (0, Instr.clean(ADDR)),
            (0, Instr.fence()),
            (0, Instr.store(ADDR, 43)),
        ]
    if mutant == "skip_dirty_grant":
        # t1 fills from t0's dirty line; the grant is dirty, no skip bit
        return [
            (0, Instr.store(ADDR, 42)),
            (1, Instr.load(ADDR)),
        ]
    if mutant == "fence_forgets_writebacks":
        return [
            (0, Instr.store(ADDR, 42)),
            (0, Instr.clean(ADDR)),
            (0, Instr.fence()),
        ]
    if mutant == "range_skips_unreached_lines":
        # the truncated sweep never reaches the tail lines; their
        # stores are lost once the fence retires the range's token
        line = system.params.line_bytes
        return [
            (0, Instr.store(ADDR + i * line, 50 + i)) for i in range(4)
        ] + [
            (0, Instr.clean_range(ADDR, 4 * line)),
            (0, Instr.fence()),
        ]
    raise ValueError(mutant)


EXPECTED_KIND = {
    "l3_dirty_clean_lost": "lost",
    "clean_forgets_l2_dirty": "skip_unsound",
    "store_keeps_skip": "skip_unsound",
    "skip_dirty_grant": "skip_unsound",
    "fence_forgets_writebacks": "lost",
    "range_skips_unreached_lines": "lost",
}


class TestTimingMutantsCaught:
    @pytest.mark.parametrize("mutant", sorted(TIMING_MUTANTS))
    def test_mutant_reported(self, mutant):
        system = mk()
        schedule = timing_schedule(system, mutant)
        with timing_mutant(system, mutant):
            report = TimingCrashInjector(system).run(schedule)
        assert not report.ok, f"{mutant} not caught"
        kinds = {violation.kind for violation in report.violations}
        assert EXPECTED_KIND[mutant] in kinds, report.violations

    @pytest.mark.parametrize("mutant", sorted(TIMING_MUTANTS))
    def test_unmutated_run_is_green(self, mutant):
        system = mk()
        schedule = timing_schedule(system, mutant)
        report = TimingCrashInjector(system).run(schedule)
        assert report.ok, report.summary()


class TestSocMutantsCaught:
    L, M, M2 = 0x3000, 0x8000, 0x9000

    def _programs(self, mutant):
        if mutant == "grant_dirty_sets_skip":
            # c0 busy-waits through two fenced cleans so c1's store lands
            # first; c0's load then fills from the dirty data c1 left
            return [
                [
                    Instr.store(self.M, 1),
                    Instr.clean(self.M),
                    Instr.fence(),
                    Instr.store(self.M2, 2),
                    Instr.clean(self.M2),
                    Instr.fence(),
                    Instr.load(self.L),
                ],
                [Instr.store(self.L, 7)],
            ]
        return [
            [
                Instr.store(self.L, 1),
                Instr.clean(self.L),
                Instr.fence(),
            ]
        ]

    @pytest.mark.parametrize("mutant", sorted(SOC_MUTANTS))
    def test_mutant_reported(self, mutant):
        programs = self._programs(mutant)
        with soc_mutant(mutant):
            soc = Soc()
            report = SocCrashInjector(soc).run(programs)
        assert not report.ok, f"{mutant} not caught"

    @pytest.mark.parametrize("mutant", sorted(SOC_MUTANTS))
    def test_unmutated_run_is_green(self, mutant):
        report = SocCrashInjector(Soc()).run(self._programs(mutant))
        assert report.ok, report.summary()


#: violation kinds each store mutant must produce somewhere in the sweep
STORE_EXPECTED_KIND = {
    "store_ack_before_fence": "lost",
    "store_replay_trusts_crc": "ghost",  # stale markers replay as fresh
}


class TestStoreMutantsCaught:
    """The store crash sweep's own false-negative guarantee.

    ``ops=60`` guarantees the log wraps (capacity defaults to ~40
    slots), which the replay mutant needs: only a wrapped log leaves
    CRC-valid stale records in the replay path.
    """

    @pytest.mark.parametrize("mutant", sorted(STORE_MUTANTS))
    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_mutant_turns_sweep_red(self, mutant, optimizer):
        report = StoreCrashSweep(
            optimizer, group_commit=8, ops=60, mutants=(mutant,)
        ).run()
        assert not report.ok, f"{mutant} not caught on {optimizer}"
        kinds = {violation.kind for violation in report.violations}
        assert STORE_EXPECTED_KIND[mutant] in kinds, report.violations

    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_unmutated_sweep_is_green(self, optimizer):
        report = StoreCrashSweep(optimizer, group_commit=8, ops=60).run()
        assert report.ok, report.summary()


#: violation kinds each shared-log mutant must produce in the sweep
SHARED_STORE_EXPECTED_KIND = {
    "shared_ack_before_fence": "lost",
}


class TestSharedStoreMutantsCaught:
    """False-negative guarantee of the shared-log crash sweep.

    The seeded leader bug acks *follower* tickets before the epoch's
    fence retires; the sweep's windowed crash images at ``epoch_flushed``
    must surface the acknowledged-but-still-in-flight records as lost
    updates.  ``group_commit=4`` with 3 threads keeps epochs frequent
    enough that several seal windows are crashed.
    """

    @pytest.mark.parametrize("mutant", sorted(SHARED_STORE_MUTANTS))
    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_mutant_turns_sweep_red(self, mutant, optimizer):
        report = SharedStoreCrashSweep(
            optimizer, group_commit=4, threads=3, ops=60, mutants=(mutant,)
        ).run()
        assert not report.ok, f"{mutant} not caught on {optimizer}"
        kinds = {violation.kind for violation in report.violations}
        assert SHARED_STORE_EXPECTED_KIND[mutant] in kinds, report.violations

    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_unmutated_sweep_is_green(self, optimizer):
        report = SharedStoreCrashSweep(
            optimizer, group_commit=4, threads=3, ops=60
        ).run()
        assert report.ok, report.summary()


#: violation kinds each serving-tier mutant must produce in the sweep
SERVE_EXPECTED_KIND = {
    "stale_snapshot_read": "session_ryw",
    "shed_acked_op": "shed_acked",
}


class TestServeMutantsCaught:
    """False-negative guarantee of the stage-7 session sweep.

    ``group_commit=8`` with 2 sessions gives 16-record epochs, so the
    write backlog crosses the sweep's low ``high_water`` and admission
    control actually sheds — the precondition for ``shed_acked_op``
    to have anything to lie about.  Each session's closing
    put-then-snapshot-read pairs pin the ``stale_snapshot_read``
    window regardless of the random mixed phase.
    """

    @pytest.mark.parametrize("mutant", sorted(SERVE_MUTANTS))
    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_mutant_turns_sweep_red(self, mutant, optimizer):
        report = ServeCrashSweep(
            optimizer, group_commit=8, mutants=(mutant,)
        ).run()
        assert not report.ok, f"{mutant} not caught on {optimizer}"
        kinds = {violation.kind for violation in report.violations}
        assert SERVE_EXPECTED_KIND[mutant] in kinds, report.violations

    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    @pytest.mark.parametrize("group_commit", [1, 8])
    def test_unmutated_sweep_is_green(self, optimizer, group_commit):
        report = ServeCrashSweep(optimizer, group_commit=group_commit).run()
        assert report.ok, report.summary()


#: violation kinds each transaction mutant must produce in the sweep
TXN_EXPECTED_KIND = {
    "txn_partial_replay": "txn_partial",
    "txn_commit_before_fence": "lost",
}


class TestTxnMutantsCaught:
    """False-negative guarantee of the stage-8 transaction sweeps.

    ``txn_partial_replay`` only bites when a crash image tears a
    transaction's commit record off a surviving payload prefix — the
    ``txn_record_appended`` probes between a run's appends crash inside
    exactly that window.  ``txn_commit_before_fence`` acks the ticket at
    the commit record, so the very next crash image shows acked > applied.
    """

    @pytest.mark.parametrize("mutant", sorted(TXN_MUTANTS))
    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_mutant_turns_private_sweep_red(self, mutant, optimizer):
        report = TxnCrashSweep(
            optimizer, group_commit=8, mutants=(mutant,)
        ).run()
        assert not report.ok, f"{mutant} not caught on {optimizer}"
        kinds = {violation.kind for violation in report.violations}
        assert TXN_EXPECTED_KIND[mutant] in kinds, report.violations

    @pytest.mark.parametrize("mutant", sorted(TXN_MUTANTS))
    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    def test_mutant_turns_shared_sweep_red(self, mutant, optimizer):
        report = SharedTxnCrashSweep(
            optimizer, group_commit=8, threads=3, mutants=(mutant,)
        ).run()
        assert not report.ok, f"{mutant} not caught on {optimizer}"
        kinds = {violation.kind for violation in report.violations}
        assert TXN_EXPECTED_KIND[mutant] in kinds, report.violations

    @pytest.mark.parametrize("optimizer", ["plain", "skipit"])
    @pytest.mark.parametrize("group_commit", [1, 8])
    def test_unmutated_sweeps_are_green(self, optimizer, group_commit):
        private = TxnCrashSweep(optimizer, group_commit=group_commit).run()
        assert private.ok, private.summary()
        shared = SharedTxnCrashSweep(
            optimizer, group_commit=group_commit, threads=3
        ).run()
        assert shared.ok, shared.summary()


class TestWordHistory:
    def test_versions_round_trip(self):
        history = WordHistory()
        assert history.observe(ADDR, 10) == 1
        assert history.observe(ADDR, 20) == 2
        assert history.version_of(ADDR, 0) == 0
        assert history.version_of(ADDR, 10) == 1
        assert history.version_of(ADDR, 20) == 2
        assert history.version_of(ADDR, 99) is None
        assert history.value_of(ADDR, 2) == 20

    def test_duplicate_values_rejected(self):
        history = WordHistory()
        history.observe(ADDR, 10)
        history.observe(ADDR, 20)
        with pytest.raises(ValueError):
            history.observe(ADDR, 10)

    def test_unchanged_value_is_not_a_write(self):
        history = WordHistory()
        history.observe(ADDR, 10)
        assert history.observe(ADDR, 10) is None
        assert history.latest_version(ADDR) == 1


class TestDurabilityOracle:
    def _oracle(self):
        oracle = DurabilityOracle()
        oracle.history.observe(ADDR, 10)
        oracle.history.observe(ADDR, 20)
        return oracle

    def test_unsealed_words_may_hold_any_version(self):
        oracle = self._oracle()
        for value in (0, 10, 20):
            assert oracle.check_image({ADDR: value}) == []

    def test_sealed_floor_flags_older_versions(self):
        oracle = self._oracle()
        oracle.seal({ADDR: 2})
        violations = oracle.check_image({ADDR: 10})
        assert [v.kind for v in violations] == ["lost"]
        assert oracle.check_image({ADDR: 20}) == []

    def test_never_written_value_is_a_ghost(self):
        oracle = self._oracle()
        violations = oracle.check_image({ADDR: 999})
        assert [v.kind for v in violations] == ["ghost"]

    def test_ceiling_flags_future_versions(self):
        oracle = self._oracle()
        violations = oracle.check_image({ADDR: 20}, ceiling={ADDR: 1})
        assert [v.kind for v in violations] == ["ghost"]
        assert oracle.check_image({ADDR: 10}, ceiling={ADDR: 1}) == []

    def test_seal_only_raises_the_floor(self):
        oracle = self._oracle()
        oracle.seal({ADDR: 2})
        oracle.seal({ADDR: 1})  # an older CBO retiring later
        assert oracle.floor[ADDR] == 2
        assert oracle.seals == 2
