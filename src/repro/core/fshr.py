"""Flush Status Holding Registers (§5.2, Figure 7).

Each FSHR executes one dequeued :class:`~repro.core.flush_queue.FlushRequest`
through the state machine::

    invalid -> meta_write -> fill_buffer -> root_release_data -> root_release_ack
            \\-> meta_write ------------------> root_release --/
            \\-> root_release ----------------------------------/

* ``meta_write`` — invalidate the line (flush) or clear its dirty bit
  (clean); one cycle.
* ``fill_buffer`` — read the whole line from the (widened) data array into
  the FSHR's data buffer; one cycle with the paper's widened array, or
  ``line_bytes / 8`` cycles without it (an ablation knob).
* ``root_release_data`` / ``root_release`` — emit the RootRelease on TL-C;
  the channel model charges four beats for the 64 B payload (16 B bus).
* ``root_release_ack`` — wait for the RootReleaseAck on TL-D.

While an FSHR is anywhere between allocation and ``root_release_ack``,
``flush_rdy`` is held low so probes and evictions cannot preempt it
(§5.4.1-§5.4.2).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.flush_queue import CboKind, FlushRequest
from repro.tilelink.messages import ProbeAckParam
from repro.tilelink.permissions import Perm, Shrink


class FshrState(enum.Enum):
    INVALID = "invalid"
    META_WRITE = "meta_write"
    FILL_BUFFER = "fill_buffer"
    ROOT_RELEASE_DATA = "root_release_data"
    ROOT_RELEASE = "root_release"
    ROOT_RELEASE_ACK = "root_release_ack"
    # CBO.RANGE sweep: a range-capable FSHR iterates the covered lines
    # with a cursor, re-planning the per-line pipeline at every line.
    # ``range_scan`` looks the cursor line up (Skip It filters here: a
    # persisted line costs the lookup and nothing else); the remaining
    # states mirror the per-line pipeline for the line under the cursor.
    RANGE_SCAN = "range_scan"
    RANGE_META_WRITE = "range_meta_write"
    RANGE_FILL_BUFFER = "range_fill_buffer"
    RANGE_RELEASE_DATA = "range_release_data"
    RANGE_RELEASE = "range_release"
    RANGE_RELEASE_ACK = "range_release_ack"


def release_shrink(request: FlushRequest) -> Shrink:
    """Shrink/report param the RootRelease carries, from the sampled state.

    A flush/inval relinquishes the line (TtoN/BtoN); a clean reports its
    retained permission (TtoT/BtoB); a miss reports NtoN.
    """
    if not request.is_hit or request.perm is Perm.NONE:
        return Shrink.NtoN
    if request.kind is CboKind.CLEAN:
        return Shrink.TtoT if request.perm is Perm.TRUNK else Shrink.BtoB
    return Shrink.TtoN if request.perm is Perm.TRUNK else Shrink.BtoN


RELEASE_PARAM = {
    CboKind.CLEAN: ProbeAckParam.CLEAN,
    CboKind.FLUSH: ProbeAckParam.FLUSH,
    CboKind.INVAL: ProbeAckParam.INVAL,
}


class Fshr:
    """One flush status holding register."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = FshrState.INVALID
        self.request: Optional[FlushRequest] = None
        self.buffer: Optional[bytes] = None
        self._fill_cycles_left = 0
        self._fill_cycles = 0  # per-line fill cost, reset at every cursor step

    # ------------------------------------------------------------- queries
    @property
    def busy(self) -> bool:
        return self.state is not FshrState.INVALID

    @property
    def address(self) -> Optional[int]:
        return self.request.address if self.request else None

    @property
    def is_clean(self) -> bool:
        return bool(self.request and self.request.is_clean)

    @property
    def buffer_filled(self) -> bool:
        return self.buffer is not None

    @property
    def awaiting_ack(self) -> bool:
        return (
            self.state is FshrState.ROOT_RELEASE_ACK
            or self.state is FshrState.RANGE_RELEASE_ACK
        )

    @property
    def holds_line_exclusive(self) -> bool:
        """True while the FSHR may still touch the line's metadata/data."""
        return self.busy and not self.awaiting_ack

    # ------------------------------------------------------------- control
    def accept(self, request: FlushRequest, fill_cycles: int) -> None:
        """Set up the execution plan for a dequeued request (Figure 7)."""
        if self.busy:
            raise RuntimeError("accept into busy FSHR")
        self.request = request
        self.buffer = None
        self._fill_cycles_left = fill_cycles
        if request.kind is CboKind.INVAL:
            # cbo.inval discards data: invalidate metadata on a hit, never
            # fill a buffer, always a dataless release
            self.state = (
                FshrState.META_WRITE if request.is_hit else FshrState.ROOT_RELEASE
            )
        elif request.is_hit and request.is_dirty:
            self.state = FshrState.META_WRITE
        elif request.is_hit and request.kind is CboKind.FLUSH:
            # clean line, CBO.FLUSH: still must invalidate metadata
            self.state = FshrState.META_WRITE
        else:
            # clean line with CBO.CLEAN, or miss: no metadata change
            self.state = FshrState.ROOT_RELEASE

    def after_meta_write(self) -> None:
        if self.request is None:  # pragma: no cover - defensive
            raise RuntimeError("FSHR has no request")
        ranged = self.state is FshrState.RANGE_META_WRITE
        if self.request.kind is CboKind.INVAL:
            # dirty data is discarded
            self.state = FshrState.RANGE_RELEASE if ranged else FshrState.ROOT_RELEASE
        elif self.request.is_dirty:
            self.state = (
                FshrState.RANGE_FILL_BUFFER if ranged else FshrState.FILL_BUFFER
            )
        else:
            self.state = FshrState.RANGE_RELEASE if ranged else FshrState.ROOT_RELEASE

    def fill_step(self, line_data: bytes) -> bool:
        """Advance the buffer fill by one cycle; True when complete."""
        ranged = self.state is FshrState.RANGE_FILL_BUFFER
        self._fill_cycles_left -= 1
        if self._fill_cycles_left <= 0:
            self.buffer = bytes(line_data)
            self.state = (
                FshrState.RANGE_RELEASE_DATA
                if ranged
                else FshrState.ROOT_RELEASE_DATA
            )
            return True
        return False

    def sent_release(self) -> None:
        self.state = (
            FshrState.RANGE_RELEASE_ACK
            if self.state
            in (FshrState.RANGE_RELEASE, FshrState.RANGE_RELEASE_DATA)
            else FshrState.ROOT_RELEASE_ACK
        )

    def complete(self) -> FlushRequest:
        """Consume the RootReleaseAck; free the FSHR and return its request."""
        if self.state is not FshrState.ROOT_RELEASE_ACK:
            raise RuntimeError(f"ack in state {self.state}")
        request = self.request
        assert request is not None
        self.state = FshrState.INVALID
        self.request = None
        self.buffer = None
        return request

    # ---------------------------------------------------- CBO.RANGE sweeps
    def accept_range(self, request: FlushRequest, fill_cycles: int) -> None:
        """Begin a ranged sweep; the cursor starts at the first line."""
        if self.busy:
            raise RuntimeError("accept into busy FSHR")
        if not request.is_range:  # pragma: no cover - defensive
            raise ValueError("accept_range needs a RangedFlushRequest")
        self.request = request
        self.buffer = None
        self._fill_cycles = fill_cycles
        self.state = FshrState.RANGE_SCAN

    def plan_range_line(self) -> None:
        """Choose the per-line plan for the line under the cursor.

        Mirrors :meth:`accept` with the metadata the scan just sampled,
        landing in the ``range_*`` twin states so observability and FSM
        coverage can tell sweep work from per-line work.
        """
        request = self.request
        assert request is not None
        self.buffer = None
        self._fill_cycles_left = self._fill_cycles
        if request.kind is CboKind.INVAL:
            self.state = (
                FshrState.RANGE_META_WRITE
                if request.is_hit
                else FshrState.RANGE_RELEASE
            )
        elif request.is_hit and request.is_dirty:
            self.state = FshrState.RANGE_META_WRITE
        elif request.is_hit and request.kind is CboKind.FLUSH:
            self.state = FshrState.RANGE_META_WRITE
        else:
            self.state = FshrState.RANGE_RELEASE

    def advance_cursor(self) -> bool:
        """One covered line is done; True when the whole range is swept."""
        request = self.request
        assert request is not None and request.is_range
        request.cursor += 1
        if request.cursor >= request.lines:
            return True
        self.state = FshrState.RANGE_SCAN
        return False

    def complete_range(self) -> FlushRequest:
        """Free the FSHR after the final covered line; return its request."""
        request = self.request
        assert request is not None
        self.state = FshrState.INVALID
        self.request = None
        self.buffer = None
        return request
