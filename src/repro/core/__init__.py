"""The paper's primary contribution.

* :mod:`repro.core.flush_queue` — the flush queue buffering CBO.X requests
  so the LSU can commit past them (§5.2);
* :mod:`repro.core.fshr` — flush status holding registers and their
  six-state FSM (Figure 7);
* :mod:`repro.core.flush_unit` — the flush unit proper: enqueue/dequeue
  policy, Skip It filtering (§6.1), coalescing (§5.3), the flush counter
  gating fences, and the probe/eviction interference machinery (§5.4);
* :mod:`repro.core.semantics` — an executable model of the writeback
  memory semantics of §4, used as a test oracle.
"""

from repro.core.flush_queue import FlushQueue, FlushRequest
from repro.core.fshr import Fshr, FshrState
from repro.core.flush_unit import FlushUnit, OfferResult

__all__ = [
    "FlushQueue",
    "FlushRequest",
    "Fshr",
    "FshrState",
    "FlushUnit",
    "OfferResult",
]
