"""RISC-V instruction encodings for the CMO extension and FENCE (§2.6).

The paper implements ``CBO.CLEAN``/``CBO.FLUSH`` from the ratified RISC-V
Base Cache Management Operation ISA extension [60].  This module provides
the bit-exact 32-bit encodings so traces and test benches can speak real
machine words:

* CBO.* : ``| imm12 | rs1 | funct3=010 | rd=00000 | opcode=0001111 |``
  with imm12 selecting the operation (0=inval, 1=clean, 2=flush, 4=zero);
* CBO.RANGE.* : ``| funct7 | rs2 | rs1 | funct3=010 | rd=00000 |
  opcode=0001111 |`` — an R-type SIMF-style ranged sweep over
  ``[rs1, rs1 + rs2)`` with funct7 selecting the operation
  (0b0100000=inval, 0b0100001=clean, 0b0100010=flush).  The funct7
  values sit above every ratified imm12 selector, so plain and ranged
  words decode unambiguously;
* FENCE : ``| fm | pred | succ | rs1 | funct3=000 | rd | opcode=0001111 |``.

All share the MISC-MEM major opcode (0b0001111).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

MISC_MEM_OPCODE = 0b0001111
CBO_FUNCT3 = 0b010
FENCE_FUNCT3 = 0b000


class CboOp(enum.IntEnum):
    """imm12 selector values from the CMO spec [60]."""

    INVAL = 0
    CLEAN = 1
    FLUSH = 2
    ZERO = 4


class CboRangeOp(enum.IntEnum):
    """funct7 selector values of the ranged CMO extension (SIMF-style)."""

    INVAL = 0b0100000
    CLEAN = 0b0100001
    FLUSH = 0b0100010


@dataclass(frozen=True)
class CboInstruction:
    """A decoded CBO.* instruction."""

    op: CboOp
    rs1: int  # base-address register

    def encode(self) -> int:
        if not 0 <= self.rs1 < 32:
            raise ValueError("rs1 must name one of x0..x31")
        return (
            (int(self.op) << 20)
            | (self.rs1 << 15)
            | (CBO_FUNCT3 << 12)
            | (0 << 7)  # rd = x0
            | MISC_MEM_OPCODE
        )


@dataclass(frozen=True)
class CboRangeInstruction:
    """A decoded CBO.RANGE.* instruction: sweep ``[rs1, rs1 + rs2)``."""

    op: CboRangeOp
    rs1: int  # base-address register
    rs2: int  # byte-length register

    def encode(self) -> int:
        for reg in (self.rs1, self.rs2):
            if not 0 <= reg < 32:
                raise ValueError("registers must name one of x0..x31")
        return (
            (int(self.op) << 25)
            | (self.rs2 << 20)
            | (self.rs1 << 15)
            | (CBO_FUNCT3 << 12)
            | (0 << 7)  # rd = x0
            | MISC_MEM_OPCODE
        )


@dataclass(frozen=True)
class FenceInstruction:
    """A decoded FENCE pred,succ instruction (§2.6).

    ``pred``/``succ`` are 4-bit sets over {I, O, R, W}; the paper uses the
    strongest practical fence, ``FENCE RW, RW`` (pred=succ=0b0011).
    """

    pred: int = 0b0011  # RW
    succ: int = 0b0011  # RW
    fm: int = 0

    def encode(self) -> int:
        for field, width in ((self.pred, 4), (self.succ, 4), (self.fm, 4)):
            if not 0 <= field < (1 << width):
                raise ValueError("fence field out of range")
        return (
            (self.fm << 28)
            | (self.pred << 24)
            | (self.succ << 20)
            | (0 << 15)  # rs1 = x0
            | (FENCE_FUNCT3 << 12)
            | (0 << 7)  # rd = x0
            | MISC_MEM_OPCODE
        )


def encode_cbo(op: CboOp, rs1: int) -> int:
    """32-bit machine word for ``cbo.<op> 0(rs1)``."""
    return CboInstruction(op, rs1).encode()


def encode_cbo_range(op: CboRangeOp, rs1: int, rs2: int) -> int:
    """32-bit machine word for ``cbo.range.<op> 0(rs1), rs2``."""
    return CboRangeInstruction(op, rs1, rs2).encode()


def encode_fence(pred: int = 0b0011, succ: int = 0b0011) -> int:
    """32-bit machine word for ``fence pred, succ``."""
    return FenceInstruction(pred, succ).encode()


def decode(word: int):
    """Decode a MISC-MEM word to a CboInstruction or FenceInstruction.

    Returns ``None`` for words outside the MISC-MEM opcode or with an
    unrecognized funct3/selector.
    """
    if word & 0x7F != MISC_MEM_OPCODE:
        return None
    funct3 = (word >> 12) & 0x7
    if funct3 == CBO_FUNCT3:
        selector = (word >> 20) & 0xFFF
        funct7 = selector >> 5
        try:
            range_op = CboRangeOp(funct7)
        except ValueError:
            range_op = None
        if range_op is not None:
            return CboRangeInstruction(
                op=range_op, rs1=(word >> 15) & 0x1F, rs2=selector & 0x1F
            )
        try:
            op = CboOp(selector)
        except ValueError:
            return None
        return CboInstruction(op=op, rs1=(word >> 15) & 0x1F)
    if funct3 == FENCE_FUNCT3:
        return FenceInstruction(
            pred=(word >> 24) & 0xF,
            succ=(word >> 20) & 0xF,
            fm=(word >> 28) & 0xF,
        )
    return None


def disassemble(word: int) -> Optional[str]:
    """Human-readable mnemonic for a MISC-MEM word, or None."""
    decoded = decode(word)
    if decoded is None:
        return None
    if isinstance(decoded, CboRangeInstruction):
        return (
            f"cbo.range.{decoded.op.name.lower()} "
            f"0(x{decoded.rs1}), x{decoded.rs2}"
        )
    if isinstance(decoded, CboInstruction):
        return f"cbo.{decoded.op.name.lower()} 0(x{decoded.rs1})"
    sets = "iorw"

    def bits(value: int) -> str:
        return "".join(c for i, c in enumerate(sets) if value & (1 << (3 - i)))

    return f"fence {bits(decoded.pred)},{bits(decoded.succ)}"
