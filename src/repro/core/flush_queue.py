"""The flush queue (§5.2).

Incoming ``CBO.X`` requests are buffered here together with the metadata
sampled at enqueue time (hit/dirty/way/permission).  Because an arbitrary
number of cycles may pass before an FSHR dequeues the entry, the sampled
metadata can be invalidated by coherence probes (§5.4.1) or evictions
(§5.4.2); the queue therefore supports targeted downgrades of pending
entries (``probe_invalidate`` / ``evict_invalidate``).
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from repro.tilelink.permissions import Cap, Perm

_flush_ids = itertools.count()


class CboKind(enum.Enum):
    """Which CBO.X a flush request executes.

    CLEAN and FLUSH are the paper's instructions (§2.6); INVAL is the
    CMO extension's cbo.inval [60], implemented here as an extension:
    it invalidates without writing back (dirty data is *discarded*).
    """

    CLEAN = "clean"
    FLUSH = "flush"
    INVAL = "inval"


@dataclass
class FlushRequest:
    """One buffered CBO.X with the cache-line bookkeeping of §5.2."""

    address: int  # line address
    kind: CboKind
    is_hit: bool
    is_dirty: bool
    way: int = -1  # L1 way at enqueue time, valid only while is_hit
    perm: Perm = Perm.NONE  # permission at enqueue, kept current by probes
    flush_id: int = field(default_factory=lambda: next(_flush_ids), compare=False)

    #: every line the entry owns in the queue's ``_line_count``; empty
    #: means "just ``address``" (per-line entries pay no tuple)
    covered: Tuple[int, ...] = ()

    # class attribute, not a field: ranged subclass flips it so the
    # queue and FSHRs can branch without isinstance checks
    is_range = False

    @property
    def is_clean(self) -> bool:
        return self.kind is CboKind.CLEAN

    def apply_downgrade(self, cap: Cap) -> None:
        """Reflect a permission downgrade (probe) on the sampled metadata.

        A probe that revokes the line (toN) turns the entry into a miss
        entry; one that downgrades to BRANCH clears the dirty bit (the
        probe response carried the dirty data to L2).
        """
        if cap is Cap.toN:
            self.is_hit = False
            self.is_dirty = False
            self.perm = Perm.NONE
            self.way = -1
        elif cap is Cap.toB:
            self.is_dirty = False
            if self.perm is Perm.TRUNK:
                self.perm = Perm.BRANCH

    def apply_eviction(self) -> None:
        """Reflect the line's eviction from L1 (writeback unit, §5.4.2)."""
        self.apply_downgrade(Cap.toN)


@dataclass
class RangedFlushRequest(FlushRequest):
    """One buffered CBO.RANGE.* sweeping ``lines`` lines from ``base``.

    Unlike per-line entries, a ranged entry samples *no* metadata at
    enqueue time: the sweeping FSHR looks each line up when the cursor
    reaches it, so probes and evictions landing on unreached lines need
    no queue downgrade — the sweep always sees fresh state ("the range
    yields to probes on lines it hasn't reached").  While the entry
    executes, ``address`` and the hit/dirty/way/perm fields track the
    line currently under the cursor; lines behind the cursor are done.
    """

    base: int = 0  # first covered line address
    lines: int = 1  # number of covered lines
    cursor: int = 0  # covered lines fully processed so far

    is_range = True

    def apply_downgrade(self, cap: Cap) -> None:
        """No-op: metadata is sampled at the cursor, never at enqueue."""

    def apply_eviction(self) -> None:
        """No-op: metadata is sampled at the cursor, never at enqueue."""


class FlushQueue:
    """Bounded FIFO of :class:`FlushRequest` with in-place invalidation."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("flush queue depth must be >= 1")
        self.depth = depth
        self._entries: Deque[FlushRequest] = deque()
        # pending entries per line, so has_line is an O(1) dict probe and
        # the targeted-downgrade scans can bail out without walking the
        # queue (downgrades never change an entry's address)
        self._line_count: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, request: FlushRequest) -> None:
        if self.full:
            raise RuntimeError("push into full flush queue")
        self._entries.append(request)
        counts = self._line_count
        for line in request.covered or (request.address,):
            counts[line] = counts.get(line, 0) + 1

    def pop(self) -> FlushRequest:
        request = self._entries.popleft()
        counts = self._line_count
        for line in request.covered or (request.address,):
            remaining = counts[line] - 1
            if remaining:
                counts[line] = remaining
            else:
                del counts[line]
        return request

    def peek(self) -> FlushRequest:
        return self._entries[0]

    @property
    def entries(self) -> List[FlushRequest]:
        """Snapshot of the queue contents (diagnostics/observability)."""
        return list(self._entries)

    def entries_for(self, address: int) -> List[FlushRequest]:
        if address not in self._line_count:
            return []
        return [
            e
            for e in self._entries
            if e.address == address or address in e.covered
        ]

    def has_line(self, address: int) -> bool:
        return address in self._line_count

    def probe_invalidate(self, address: int, cap: Cap) -> int:
        """Downgrade all pending entries for *address*; return count touched."""
        if address not in self._line_count:
            return 0
        touched = 0
        for entry in self._entries:
            if entry.address == address or address in entry.covered:
                entry.apply_downgrade(cap)
                touched += 1
        return touched

    def evict_invalidate(self, address: int) -> int:
        """Mark pending entries for *address* as misses after eviction."""
        if address not in self._line_count:
            return 0
        touched = 0
        for entry in self._entries:
            if entry.address == address or address in entry.covered:
                entry.apply_eviction()
                touched += 1
        return touched
