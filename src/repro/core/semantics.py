"""Executable model of the writeback memory semantics (§4).

The paper defines: ``writeback(c)`` guarantees that all *earlier* (program
order) writes to any location of c's cache line C are written back to
memory — eventually; a following ``fence()`` guarantees they are in memory
before anything after the fence executes.  A writeback is *not* ordered
with other writebacks, nor with later writes to the same line.

:class:`WritebackOracle` consumes a single thread's program-order event
stream and answers, at each fence, the minimal set of (address, value)
pairs that *must* be visible in main memory.  Tests run the same program
on the cycle simulator and check the simulator's memory against the
oracle.  The oracle is deliberately *minimal*: the simulator may persist
more (e.g. via evictions) but never less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class _LineHistory:
    """Per-line program-order history of word writes and writebacks."""

    # latest (seq, value) of each word address written so far
    current: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    # snapshot of `current` at the most recent writeback of this line
    at_last_writeback: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    writeback_seen: bool = False


class WritebackOracle:
    """Minimal must-be-persisted oracle for one thread (§4 semantics)."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._lines: Dict[int, _LineHistory] = {}
        self._seq = 0  # global program-order counter over writes
        # address -> full write history [(seq, value), ...] in program order
        self._writes: Dict[int, List[Tuple[int, int]]] = {}
        # address -> (seq, value) known persisted by some fence
        self._fenced: Dict[int, Tuple[int, int]] = {}

    def _line_of(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def _history(self, address: int) -> _LineHistory:
        return self._lines.setdefault(self._line_of(address), _LineHistory())

    # --------------------------------------------------------------- events
    def write(self, address: int, value: int) -> None:
        """A store in program order."""
        self._seq += 1
        entry = (self._seq, value)
        self._history(address).current[address] = entry
        self._writes.setdefault(address, []).append(entry)

    def writeback(self, address: int) -> None:
        """A CBO.CLEAN/CBO.FLUSH in program order.

        Captures exactly the writes that precede it: later writes to the
        same line are *not* covered (§4, scenario (b) discussion).
        """
        history = self._history(address)
        history.at_last_writeback = dict(history.current)
        history.writeback_seen = True

    def fence(self) -> Dict[int, int]:
        """A FENCE in program order.

        Returns (and accumulates) every (word address, value) that the
        §4 semantics now require to be in main memory: for each line with
        a prior writeback, the writes that preceded its *latest*
        writeback.
        """
        for history in self._lines.values():
            if history.writeback_seen:
                self._fenced.update(history.at_last_writeback)
        return self.required_persisted

    # -------------------------------------------------------------- queries
    @property
    def required_persisted(self) -> Dict[int, int]:
        """Everything fences so far oblige main memory to contain."""
        return {address: value for address, (_, value) in self._fenced.items()}

    def check_memory(self, read_persisted) -> List[str]:
        """Compare requirements against *read_persisted(address) -> value*.

        The oracle is a *lower bound*: memory holding the fence-required
        value is correct, and so is memory holding any value written
        *later* in program order — a post-fence writeback (or an
        eviction) legitimately lands the newer data, which is "persisting
        more", never less.  Only a value that matches no write at or
        after the fence-covered one is a violation.

        Returns a list of human-readable violations (empty when the
        implementation satisfies the semantics).
        """
        violations = []
        for address, (seq, expected) in sorted(self._fenced.items()):
            actual = read_persisted(address)
            if actual == expected:
                continue
            if any(
                s > seq and value == actual
                for s, value in self._writes.get(address, ())
            ):
                continue  # a newer program-order value: over-persistence
            violations.append(
                f"addr {address:#x}: fence requires {expected}, "
                f"memory holds {actual}"
            )
        return violations
