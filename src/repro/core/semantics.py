"""Executable model of the writeback memory semantics (§4).

The paper defines: ``writeback(c)`` guarantees that all *earlier* (program
order) writes to any location of c's cache line C are written back to
memory — eventually; a following ``fence()`` guarantees they are in memory
before anything after the fence executes.  A writeback is *not* ordered
with other writebacks, nor with later writes to the same line.

:class:`WritebackOracle` consumes a single thread's program-order event
stream and answers, at each fence, the minimal set of (address, value)
pairs that *must* be visible in main memory.  Tests run the same program
on the cycle simulator and check the simulator's memory against the
oracle.  The oracle is deliberately *minimal*: the simulator may persist
more (e.g. via evictions) but never less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class _LineHistory:
    """Per-line program-order history of word writes and writebacks."""

    # latest value of each word address written so far
    current: Dict[int, int] = field(default_factory=dict)
    # snapshot of `current` at the most recent writeback of this line
    at_last_writeback: Dict[int, int] = field(default_factory=dict)
    writeback_seen: bool = False


class WritebackOracle:
    """Minimal must-be-persisted oracle for one thread (§4 semantics)."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._lines: Dict[int, _LineHistory] = {}
        self._fenced: Dict[int, int] = {}  # address -> value known persisted

    def _line_of(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def _history(self, address: int) -> _LineHistory:
        return self._lines.setdefault(self._line_of(address), _LineHistory())

    # --------------------------------------------------------------- events
    def write(self, address: int, value: int) -> None:
        """A store in program order."""
        self._history(address).current[address] = value

    def writeback(self, address: int) -> None:
        """A CBO.CLEAN/CBO.FLUSH in program order.

        Captures exactly the writes that precede it: later writes to the
        same line are *not* covered (§4, scenario (b) discussion).
        """
        history = self._history(address)
        history.at_last_writeback = dict(history.current)
        history.writeback_seen = True

    def fence(self) -> Dict[int, int]:
        """A FENCE in program order.

        Returns (and accumulates) every (word address, value) that the
        §4 semantics now require to be in main memory: for each line with
        a prior writeback, the writes that preceded its *latest*
        writeback.
        """
        for history in self._lines.values():
            if history.writeback_seen:
                self._fenced.update(history.at_last_writeback)
        return dict(self._fenced)

    # -------------------------------------------------------------- queries
    @property
    def required_persisted(self) -> Dict[int, int]:
        """Everything fences so far oblige main memory to contain."""
        return dict(self._fenced)

    def check_memory(self, read_persisted) -> List[str]:
        """Compare requirements against *read_persisted(address) -> value*.

        Returns a list of human-readable violations (empty when the
        implementation satisfies the semantics).
        """
        violations = []
        for address, expected in sorted(self._fenced.items()):
            actual = read_persisted(address)
            if actual != expected:
                violations.append(
                    f"addr {address:#x}: fence requires {expected}, "
                    f"memory holds {actual}"
                )
        return violations
