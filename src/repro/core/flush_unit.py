"""The flush unit (§5.2-§5.4) with Skip It filtering (§6).

The flush unit lives inside the L1 data cache (Figure 8).  It owns:

* the **flush queue** buffering incoming CBO.X requests, which lets the
  LSU commit a CBO.X as soon as it is buffered;
* eight **FSHRs** executing dequeued requests asynchronously;
* the **flush counter** tracking outstanding writebacks; fences commit
  only while it is zero (``flushing`` low, §5.3);
* the interference machinery of §5.4: pending queue entries are downgraded
  when probes (``probe_invalidate``) or evictions (``evict_invalidate``)
  change line state, ``flush_rdy`` blocks probes/evictions while an FSHR
  is mutating line state, and dequeue is gated on ``probe_rdy`` and
  ``wb_rdy``.

Skip It (§6.1): when the skip bit says the line is persisted (hit, clean,
skip set), the CBO.X is dropped before it ever enters the queue — saving
the queue/FSHR occupancy and the round trip to L2.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.flush_queue import (
    CboKind,
    FlushQueue,
    FlushRequest,
    RangedFlushRequest,
)
from repro.core.fshr import RELEASE_PARAM, Fshr, FshrState, release_shrink
from repro.sim.config import SoCParams
from repro.sim.stats import StatCounter
from repro.tilelink.messages import root_release
from repro.tilelink.permissions import Cap, Perm

if TYPE_CHECKING:  # avoid a circular import with repro.uarch
    from repro.uarch.arrays import MetaEntry


class OfferResult(enum.Enum):
    """Outcome of offering a CBO.X to the flush unit."""

    ACCEPTED = "accepted"  # buffered in the flush queue
    SKIPPED = "skipped"  # dropped by Skip It (persisted line)
    COALESCED = "coalesced"  # merged with a pending same-line same-kind entry
    NACK = "nack"  # flush queue full; LSU must retry


class FlushUnit:
    """Flush queue + FSHRs + flush counter, embedded in one L1."""

    def __init__(self, l1, params: SoCParams) -> None:
        self.l1 = l1
        self.params = params
        fu = params.flush_unit
        self.queue = FlushQueue(fu.flush_queue_depth)
        self.fshrs: List[Fshr] = [Fshr(i) for i in range(fu.num_fshrs)]
        self._rr_next = 0  # round-robin allocation pointer (§5.2)
        # line address -> busy FSHR; offer() nacks dependents, so at most
        # one FSHR ever runs a given line — the map replaces the
        # per-query linear scan over all eight FSHRs
        self._fshr_by_line: Dict[int, Fshr] = {}
        self.flush_counter = 0
        self.stats = StatCounter()
        self.obs = None  # observability bus; attached via repro.obs.attach

    # ------------------------------------------------------- observability
    @property
    def _track(self) -> str:
        return f"core{self.l1.agent_id}.flush_unit"

    def _obs_instant(self, name: str, address: int, kind: CboKind) -> None:
        self.obs.emit(
            self.l1.engine.cycle,
            "cbo",
            name,
            track=self._track,
            address=address,
            kind=kind.value,
        )

    # ------------------------------------------------------------- signals
    @property
    def flushing(self) -> bool:
        """High while any CBO.X is pending; gates fence commit (§5.3)."""
        return self.flush_counter > 0

    @property
    def flush_rdy(self) -> bool:
        """Low while any FSHR may still mutate line state (§5.4.1).

        ``range_scan`` and ``range_release_ack`` are exempt like the
        per-line ack state: a scanning range FSHR has not touched the
        cursor line yet (it samples metadata fresh next cycle), so
        probes, evictions and demand-miss evictions proceed against any
        line the sweep has not reached — the in-flight range yields.
        """
        invalid = FshrState.INVALID
        ack = FshrState.ROOT_RELEASE_ACK
        scan = FshrState.RANGE_SCAN
        range_ack = FshrState.RANGE_RELEASE_ACK
        for fshr in self.fshrs:
            state = fshr.state
            if (
                state is not invalid
                and state is not ack
                and state is not scan
                and state is not range_ack
            ):
                return False
        return True

    # ------------------------------------------------------------- queries
    def pending_for(self, address: int) -> bool:
        """Any queue entry or busy FSHR for this line?"""
        return self.queue.has_line(address) or address in self._fshr_by_line

    def queue_pending_for(self, address: int) -> bool:
        return self.queue.has_line(address)

    def fshr_for(self, address: int) -> Optional[Fshr]:
        return self._fshr_by_line.get(address)

    def store_may_proceed(self, address: int) -> bool:
        """The three store conditions of §5.3.

        A store to a line with a pending CBO.X may only proceed when the
        request is already in an FSHR, that FSHR runs a CBO.CLEAN, and the
        line either was not dirty or the data buffer is already filled —
        guaranteeing the store's data is not swept up by the writeback.
        """
        if self.queue.has_line(address):
            return False
        fshr = self.fshr_for(address)
        if fshr is None:
            return True
        if not fshr.is_clean:
            return False
        request = fshr.request
        assert request is not None
        if request.is_dirty and not fshr.buffer_filled:
            return False
        return True

    def load_forward(self, address: int) -> Optional[bytes]:
        """Forward a filled FSHR buffer to a missing load (§5.3)."""
        fshr = self.fshr_for(address)
        if fshr is not None and fshr.buffer_filled:
            return fshr.buffer
        return None

    def load_must_wait(self, address: int) -> bool:
        """A missing load must be nacked while this line's CBO.X is unresolved."""
        if self.queue.has_line(address):
            return True
        fshr = self.fshr_for(address)
        return fshr is not None and not fshr.buffer_filled

    # -------------------------------------------------------------- enqueue
    def offer(
        self,
        address: int,
        kind: CboKind,
        hit: "Optional[Tuple[int, MetaEntry]]",
    ) -> OfferResult:
        """Handle a CBO.X fired from the LSU.

        *hit* is the (way, metadata) pair when the line is present, or
        ``None`` on a miss; the metadata was fetched with the request, so
        no extra metadata-array access is charged (§5.2).
        """
        if hit is not None and kind is not CboKind.INVAL:
            way, entry = hit
            # Skip It (§6.1): hit + clean + skip set => the line is
            # persisted; drop the request outright.  Never applies to
            # cbo.inval, whose invalidation is architecturally required.
            if self.params.skip_it and not entry.dirty and entry.skip:
                self.stats.inc("skipped")
                if self.obs is not None:
                    self._obs_instant("skipped", address, kind)
                return OfferResult.SKIPPED
        # Coalescing (§5.3): a same-kind CBO.X to a line already pending in
        # the queue adds nothing — the queued request will write back every
        # earlier store to the line.  (FSHR-resident requests are not
        # coalesced with: the line state may have changed since dequeue.)
        if self.params.flush_unit.coalesce:
            for entry_ in self.queue.entries_for(address):
                if entry_.kind is kind:
                    self.stats.inc("coalesced")
                    if self.obs is not None:
                        self._obs_instant("coalesced", address, kind)
                    return OfferResult.COALESCED
                if self._cross_coalesce(entry_, kind):
                    if self.obs is not None:
                        self._obs_instant("coalesced", address, kind)
                    return OfferResult.COALESCED
        # §5.3: any other CBO.X dependent on a pending same-line request
        # must nack — enqueueing it now would sample metadata that the
        # pending request is about to change (e.g. a flush invalidating
        # the line after this request recorded a hit).
        if self.pending_for(address):
            self.stats.inc("nacked_dependent")
            if self.obs is not None:
                self._obs_instant("nacked_dependent", address, kind)
            return OfferResult.NACK
        if self.queue.full:
            self.stats.inc("nacked_full")
            if self.obs is not None:
                self._obs_instant("nacked_full", address, kind)
            return OfferResult.NACK
        if hit is not None:
            way, meta = hit
            request = FlushRequest(
                address=address,
                kind=kind,
                is_hit=True,
                is_dirty=meta.dirty,
                way=way,
                perm=meta.perm,
            )
        else:
            request = FlushRequest(
                address=address, kind=kind, is_hit=False, is_dirty=False
            )
        self.queue.push(request)
        self.flush_counter += 1
        self.stats.inc("enqueued")
        if self.obs is not None:
            # one span per CBO.X: flush-queue wait, then every FSHR FSM
            # state, closed by the RootReleaseAck (§5.2, Figure 7)
            self.obs.open_span(
                self.l1.engine.cycle,
                f"cbo:{request.flush_id}",
                "cbo",
                name=f"cbo.{kind.value}",
                track=self._track,
                state="queued",
                address=address,
                kind=kind.value,
                hit=request.is_hit,
                dirty=request.is_dirty,
            )
        return OfferResult.ACCEPTED

    def offer_range(
        self, base_line: int, last_line: int, kind: CboKind
    ) -> OfferResult:
        """Handle a CBO.RANGE.* fired from the LSU: one entry, many lines.

        The whole range enters the flush queue as a *single* entry and
        holds a *single* flush-counter token — a younger fence treats
        the sweep as one ordering unit and commits once the final line's
        ack (or skip) lands.  No metadata is sampled here: the sweeping
        FSHR samples each line when its cursor arrives, so Skip It is
        consulted per line inside the sweep rather than at enqueue.
        """
        line_bytes = self.params.line_bytes
        lines = (last_line - base_line) // line_bytes + 1
        covered = tuple(base_line + i * line_bytes for i in range(lines))
        # §5.3 dependence rule, applied across the whole range: any
        # covered line with its own pending CBO.X nacks the ranged op
        # (enqueueing now would race the pending request's state change).
        for line in covered:
            if self.pending_for(line):
                self.stats.inc("range_nacked_dependent")
                if self.obs is not None:
                    self._obs_instant("range_nacked_dependent", line, kind)
                return OfferResult.NACK
        if self.queue.full:
            self.stats.inc("range_nacked_full")
            if self.obs is not None:
                self._obs_instant("range_nacked_full", base_line, kind)
            return OfferResult.NACK
        request = RangedFlushRequest(
            address=base_line,
            kind=kind,
            is_hit=False,
            is_dirty=False,
            base=base_line,
            lines=lines,
            covered=covered,
        )
        self.queue.push(request)
        self.flush_counter += 1
        self.stats.inc("range_enqueued")
        self.stats.inc("range_lines", lines)
        if self.obs is not None:
            self.obs.open_span(
                self.l1.engine.cycle,
                f"cbo:{request.flush_id}",
                "cbo",
                name=f"cbo.range.{kind.value}",
                track=self._track,
                state="queued",
                address=base_line,
                kind=kind.value,
                lines=lines,
            )
        return OfferResult.ACCEPTED

    def _cross_coalesce(self, pending: FlushRequest, kind: CboKind) -> bool:
        """Cross-kind coalescing, the future-work optimization of §5.3.

        Disabled by default (the paper leaves it to future work).  When
        enabled: a CBO.CLEAN may merge into a queued CBO.FLUSH (the flush
        already writes back and does strictly more), and a CBO.FLUSH may
        *upgrade* a queued CBO.CLEAN in place.  cbo.inval never merges
        across kinds: its discard semantics differ.
        """
        if not self.params.flush_unit.coalesce_cross_kind:
            return False
        if pending.is_range:
            # upgrading a ranged entry in place would upgrade every
            # covered line, not just this one; never merge across kinds
            return False
        if CboKind.INVAL in (pending.kind, kind):
            return False
        if pending.kind is CboKind.FLUSH and kind is CboKind.CLEAN:
            self.stats.inc("coalesced_cross")
            return True
        if pending.kind is CboKind.CLEAN and kind is CboKind.FLUSH:
            pending.kind = CboKind.FLUSH
            self.stats.inc("coalesced_cross_upgrade")
            return True
        return False

    # ------------------------------------------------- interference (§5.4)
    def probe_invalidate(self, address: int, cap: Cap) -> None:
        """Probe unit reports a downgrade of *address* (§5.4.1)."""
        if self.obs is not None:
            for entry in self.queue.entries_for(address):
                self.obs.annotate(
                    f"cbo:{entry.flush_id}", probe_downgraded=cap.name
                )
        touched = self.queue.probe_invalidate(address, cap)
        if touched:
            self.stats.inc("probe_invalidated", touched)
            if self.obs is not None:
                self.obs.emit(
                    self.l1.engine.cycle,
                    "cbo",
                    "probe_invalidated",
                    track=self._track,
                    address=address,
                    cap=cap.name,
                    touched=touched,
                )

    def evict_invalidate(self, address: int) -> None:
        """Writeback unit reports the eviction of *address* (§5.4.2)."""
        if self.obs is not None:
            for entry in self.queue.entries_for(address):
                self.obs.annotate(f"cbo:{entry.flush_id}", evict_downgraded=True)
        touched = self.queue.evict_invalidate(address)
        if touched:
            self.stats.inc("evict_invalidated", touched)
            if self.obs is not None:
                self.obs.emit(
                    self.l1.engine.cycle,
                    "cbo",
                    "evict_invalidated",
                    track=self._track,
                    address=address,
                    touched=touched,
                )

    # ---------------------------------------------------------------- tick
    def tick(self, cycle: int) -> None:
        # flush_counter == queued entries + busy FSHRs (offer increments,
        # deliver_ack decrements), so zero means both sub-steps are no-ops
        if not self.flush_counter:
            return
        self._step_fshrs(cycle)
        self._try_dequeue(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle the flush unit could act (fast-forward hook).

        An FSHR advances its FSM every tick until it awaits its ack; a
        queued request dequeues as soon as the §5.4 gates are open.  An
        ack-awaiting FSHR wakes only via channel D, which the L1 reports.
        """
        invalid = FshrState.INVALID
        ack = FshrState.ROOT_RELEASE_ACK
        range_ack = FshrState.RANGE_RELEASE_ACK
        has_free = False
        for fshr in self.fshrs:
            state = fshr.state
            if state is invalid:
                has_free = True
            elif state is not ack and state is not range_ack:
                return cycle + 1
        if (
            has_free
            and not self.queue.empty
            and self.l1.probe_unit.probe_rdy
            and self.l1.wbu.wb_rdy
        ):
            return cycle + 1
        return None

    def _try_dequeue(self, cycle: int) -> None:
        """Allocate a free FSHR for the queue head when the way is clear.

        Dequeue requires ``probe_rdy`` (no probe racing the queue, §5.4.1)
        and ``wb_rdy`` (no eviction racing it, §5.4.2).
        """
        if self.queue.empty:
            return
        if not self.l1.probe_unit.probe_rdy or not self.l1.wbu.wb_rdy:
            return
        fshr = self._free_fshr()
        if fshr is None:
            return
        request = self.queue.pop()
        fill_cycles = (
            1
            if self.params.flush_unit.wide_data_array
            else self.params.line_bytes // 8
        )
        if request.is_range:
            # the sweep claims lines one at a time: _fshr_by_line maps
            # only the line under the cursor, from plan to ack
            fshr.accept_range(request, fill_cycles)
        else:
            fshr.accept(request, fill_cycles)
            self._fshr_by_line[request.address] = fshr
        self.stats.inc("fshr_allocated")
        if self.obs is not None:
            self.obs.transition(
                cycle, f"cbo:{request.flush_id}", fshr.state.value, fshr=fshr.index
            )
        self.l1.engine.note_progress()

    def _free_fshr(self) -> Optional[Fshr]:
        n = len(self.fshrs)
        for offset in range(n):
            fshr = self.fshrs[(self._rr_next + offset) % n]
            if not fshr.busy:
                self._rr_next = (fshr.index + 1) % n
                return fshr
        return None

    def _step_fshrs(self, cycle: int) -> None:
        invalid = FshrState.INVALID
        ack = FshrState.ROOT_RELEASE_ACK
        range_ack = FshrState.RANGE_RELEASE_ACK
        for fshr in self.fshrs:
            state = fshr.state
            if state is invalid or state is ack or state is range_ack:
                continue
            request = fshr.request
            assert request is not None
            prev_state = fshr.state
            if state is FshrState.RANGE_SCAN:
                if not self._range_scan(fshr, request, cycle):
                    continue  # stalled this cycle: no action, no progress
            elif state is FshrState.META_WRITE or state is FshrState.RANGE_META_WRITE:
                self._apply_meta_write(request)
                fshr.after_meta_write()
            elif state is FshrState.FILL_BUFFER or state is FshrState.RANGE_FILL_BUFFER:
                line = self.l1.data.read_line(
                    self.l1.geometry.set_index(request.address), request.way
                )
                fshr.fill_step(line)
            elif state is FshrState.ROOT_RELEASE_DATA or state is FshrState.RANGE_RELEASE_DATA:
                self._send_release(fshr, request, with_data=True, cycle=cycle)
            elif state is FshrState.ROOT_RELEASE or state is FshrState.RANGE_RELEASE:
                self._send_release(fshr, request, with_data=False, cycle=cycle)
            if (
                self.obs is not None
                and fshr.state is not prev_state
                and fshr.state is not invalid
            ):
                self.obs.transition(
                    cycle, f"cbo:{request.flush_id}", fshr.state.value
                )
            self.l1.engine.note_progress()

    def _range_scan(self, fshr: Fshr, request: FlushRequest, cycle: int) -> bool:
        """Advance a ranged sweep by one line (one line per cycle).

        Samples the cursor line's metadata fresh — nothing was recorded
        at enqueue — and either filters it (Skip It: a persisted line
        costs this lookup and nothing else), defers it (a line with its
        own pending CBO.X is already covered by that entry's
        flush-counter token), or plans the per-line release pipeline.
        Returns False when the sweep is stalled this cycle: a probe or
        eviction is in flight, or the cursor line has an in-flight
        demand fill (``flush_rdy`` stays high in ``range_scan``, so the
        fill's own eviction cannot deadlock against this stall).
        """
        if not self.l1.probe_unit.probe_rdy or not self.l1.wbu.wb_rdy:
            return False  # yield to the probe/eviction, re-sample after
        line = request.base + request.cursor * self.params.line_bytes
        if line in self.l1._mshr_by_line:
            return False  # wait for the demand fill to land
        request.address = line
        if self.pending_for(line):
            request.is_hit = False
            request.is_dirty = False
            request.way = -1
            request.perm = Perm.NONE
            self.stats.inc("range_line_deferred")
            if self.obs is not None:
                self._obs_instant("range_line_deferred", line, request.kind)
            self._range_advance(fshr, request, cycle)
            return True
        hit = self.l1.meta.lookup(line)
        if hit is not None:
            way, entry = hit
            request.is_hit = True
            request.is_dirty = entry.dirty
            request.way = way
            request.perm = entry.perm
            if (
                request.kind is not CboKind.INVAL
                and self.params.skip_it
                and not entry.dirty
                and entry.skip
            ):
                # Skip It inside the sweep (§6.1)
                self.stats.inc("range_line_skipped")
                if self.obs is not None:
                    self._obs_instant("range_line_skipped", line, request.kind)
                self._range_advance(fshr, request, cycle)
                return True
        else:
            request.is_hit = False
            request.is_dirty = False
            request.way = -1
            request.perm = Perm.NONE
        fshr.plan_range_line()
        self._fshr_by_line[line] = fshr
        self.stats.inc("range_line_planned")
        return True

    def _range_advance(self, fshr: Fshr, request: FlushRequest, cycle: int) -> None:
        """One covered line is done; move the cursor or finish the sweep."""
        if fshr.advance_cursor():
            self.flush_counter -= 1
            self.stats.inc("range_completed")
            if self.obs is not None:
                self.obs.close_span(cycle, f"cbo:{request.flush_id}")
            fshr.complete_range()

    def _apply_meta_write(self, request: FlushRequest) -> None:
        """Invalidate (flush/inval) or clean (clear dirty) the metadata."""
        entry = self.l1.meta.way_entry(request.address, request.way)
        if request.kind is CboKind.CLEAN:
            entry.dirty = False
        else:
            entry.invalidate()
            self.l1.flush_unit_evicted_line(request.address)

    def _send_release(
        self, fshr: Fshr, request: FlushRequest, with_data: bool, cycle: int
    ) -> None:
        data = fshr.buffer if with_data else None
        message = root_release(
            source=self.l1.agent_id,
            address=request.address,
            param=RELEASE_PARAM[request.kind],
            shrink=release_shrink(request),
            data=data,
        )
        if self.obs is not None:
            # causal link: the TileLink beats this release occupies (and
            # the DRAM writeback they trigger) happened *because of* this
            # CBO.X — downstream emitters propagate the span key
            message.cause = f"cbo:{request.flush_id}"
        self.l1.send_channel_c(message, cycle)
        fshr.sent_release()
        self.stats.inc("root_release_data" if with_data else "root_release_nodata")

    # ----------------------------------------------------------------- ack
    def deliver_ack(self, address: int) -> None:
        """Consume a RootReleaseAck for *address* (its awaiting FSHR)."""
        fshr = self._fshr_by_line.get(address)
        if fshr is None or not fshr.awaiting_ack:
            raise RuntimeError(
                f"RootReleaseAck for {address:#x} with no waiting FSHR"
            )
        del self._fshr_by_line[address]
        cycle = self.l1.engine.cycle
        if fshr.state is FshrState.RANGE_RELEASE_ACK:
            # one swept line is durable; the range itself completes (and
            # releases its single flush-counter token) only with the
            # final line — lines behind the cursor are done
            request = fshr.request
            assert request is not None
            self.stats.inc("range_line_acks")
            if request.kind is CboKind.CLEAN:
                self._maybe_set_skip(request)
            self._range_advance(fshr, request, cycle)
            if self.obs is not None and fshr.busy:
                self.obs.transition(
                    cycle, f"cbo:{request.flush_id}", fshr.state.value
                )
            self.l1.engine.note_progress()
            return
        request = fshr.complete()
        self.flush_counter -= 1
        self.stats.inc("acks")
        if request.kind is CboKind.CLEAN:
            self._maybe_set_skip(request)
        if self.obs is not None:
            self.obs.close_span(cycle, f"cbo:{request.flush_id}")
        self.l1.engine.note_progress()

    def _maybe_set_skip(self, request: FlushRequest) -> None:
        """After a completed CBO.CLEAN the line is persisted end to end.

        The ack means L2 wrote the line to DRAM (§5.5), so if the line is
        still resident and has not been re-dirtied, its skip bit may be
        set — making follow-up CBO.X to the line skippable.  Guarded by
        the dirty bit: a store that squeezed in after the buffer fill
        (§5.3) re-dirties the line and must keep skip unset.
        """
        if not self.params.skip_it:
            return
        hit = self.l1.meta.lookup(request.address)
        if hit is None:
            return
        _, entry = hit
        if not entry.dirty:
            entry.skip = True
