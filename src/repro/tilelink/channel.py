"""Beat-accurate unidirectional TileLink channel.

A message that carries a full cache line over a ``bus_bytes``-wide link
occupies the channel for ``line_bytes / bus_bytes`` beats (four cycles for
64 B over the SonicBOOM's 16 B bus, Figure 3).  Messages without data take
a single beat.  The channel is in-order, which matches TileLink's
per-channel ordering guarantee.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, Tuple, TypeVar

M = TypeVar("M")


class BeatChannel(Generic[M]):
    """In-order channel with per-message beat occupancy.

    ``send`` may be called at most once per cycle per producer; the channel
    serializes messages so a 4-beat payload delays everything behind it.
    """

    def __init__(self, name: str, bus_bytes: int = 16, latency: int = 1) -> None:
        if bus_bytes < 1:
            raise ValueError("bus width must be positive")
        self.name = name
        self.bus_bytes = bus_bytes
        self.latency = latency
        self.obs = None  # observability bus; attached via repro.obs.attach
        self._busy_until = 0
        #: in-flight (deliver_at, message) FIFO; public so consumers can
        #: cheaply test truthiness before paying a drain call on an idle
        #: channel (an idle channel must cost zero Python work per cycle)
        self.pending: Deque[Tuple[int, M]] = deque()

    def beats_for(self, message: M) -> int:
        data = getattr(message, "data", None)
        if data is None:
            return 1
        return max(1, (len(data) + self.bus_bytes - 1) // self.bus_bytes)

    def send(self, message: M, now: int) -> int:
        """Enqueue *message* at cycle *now*; return its delivery cycle."""
        start = max(now, self._busy_until)
        beats = self.beats_for(message)
        self._busy_until = start + beats
        deliver_at = start + beats + self.latency - 1
        self.pending.append((deliver_at, message))
        if self.obs is not None:
            from repro.obs.events import describe_message

            extra = {}
            cause = getattr(message, "cause", None)
            if cause is not None:
                extra["cause"] = cause
            self.obs.emit(
                now,
                "tilelink",
                type(message).__name__,
                track=self.name,
                address=getattr(message, "address", 0),
                source=getattr(message, "source", -1),
                beats=beats,
                deliver_at=deliver_at,
                detail=describe_message(message),
                **extra,
            )
        return deliver_at

    def pop_ready(self, now: int) -> Optional[M]:
        """Deliver the oldest message whose transfer completed by *now*."""
        if self.pending and self.pending[0][0] <= now:
            return self.pending.popleft()[1]
        return None

    def drain_ready(self, now: int) -> List[M]:
        """Deliver every message whose transfer completed by *now*."""
        ready: List[M] = []
        while self.pending and self.pending[0][0] <= now:
            ready.append(self.pending.popleft()[1])
        return ready

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle a message becomes deliverable, or None when idle.

        Feeds the engine's event-horizon fast-forward: in-flight messages
        are FIFO with monotonically non-decreasing ``deliver_at``, so the
        head's delivery cycle is the channel's next event.
        """
        if not self.pending:
            return None
        return self.pending[0][0]

    @property
    def idle(self) -> bool:
        return not self.pending

    def __len__(self) -> int:
        return len(self.pending)
