"""A TileLink-like coherent interconnect model (TL-C subset).

This package models the parts of TileLink (§2.2) that the paper's
mechanisms exercise: the five channels A-E, the Acquire/Grant/GrantAck,
Probe/ProbeAck and Release/ReleaseAck transactions, plus the paper's
extensions (§5.1, §6):

* ``RootReleaseFlush`` / ``RootReleaseClean`` — channel C messages encoded
  as ``ProbeAck`` with params ``FLUSH`` / ``CLEAN``;
* ``RootReleaseAck`` — channel D, encoded as ``ReleaseAck`` with param
  ``ROOT``;
* ``GrantDataDirty`` — channel D, a ``GrantData`` that additionally tells
  the receiving L1 the line is *not* persisted (Skip It, §6).

Channels are beat-accurate: a message carrying a 64 B line over the 16 B
system bus occupies the channel for four beats (Figure 3 / §5.2 state
``root_release_data``).
"""

from repro.tilelink.permissions import (
    Cap,
    Grow,
    Perm,
    Shrink,
    grow_target,
    probe_shrink,
    shrink_result,
)
from repro.tilelink.messages import (
    Acquire,
    Grant,
    GrantAck,
    GrantData,
    Probe,
    ProbeAck,
    ProbeAckParam,
    Release,
    ReleaseAck,
    ReleaseAckParam,
)
from repro.tilelink.channel import BeatChannel

__all__ = [
    "Perm",
    "Grow",
    "Shrink",
    "Cap",
    "grow_target",
    "shrink_result",
    "probe_shrink",
    "Acquire",
    "Grant",
    "GrantData",
    "GrantAck",
    "Probe",
    "ProbeAck",
    "ProbeAckParam",
    "Release",
    "ReleaseAck",
    "ReleaseAckParam",
    "BeatChannel",
]
