"""TileLink message types, including the paper's encodings.

Per §5.1, the new messages reuse existing op-codes:

* ``RootReleaseFlush``/``RootReleaseClean`` are ``ProbeAck`` messages with
  params :attr:`ProbeAckParam.FLUSH` / :attr:`ProbeAckParam.CLEAN`;
* ``RootReleaseAck`` is a ``ReleaseAck`` with param
  :attr:`ReleaseAckParam.ROOT`;
* ``GrantDataDirty`` (§6) is a ``GrantData`` with ``dirty=True``.

Every message carries ``source`` (requesting agent id) and ``address``
(line-aligned).  Data-bearing messages carry the full line as ``bytes``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.tilelink.permissions import Cap, Grow, Shrink

_txn_ids = itertools.count()


def _next_txn() -> int:
    return next(_txn_ids)


class ProbeAckParam(enum.Enum):
    """Extra param space on ProbeAck used to encode RootRelease (§5.1)."""

    NORMAL = "NORMAL"
    FLUSH = "FLUSH"  # RootReleaseFlush
    CLEAN = "CLEAN"  # RootReleaseClean
    INVAL = "INVAL"  # RootReleaseInval (CBO.INVAL extension, [60])


class ReleaseAckParam(enum.Enum):
    """Extra param space on ReleaseAck used to encode RootReleaseAck."""

    NORMAL = "NORMAL"
    ROOT = "ROOT"  # RootReleaseAck


@dataclass
class _Message:
    source: int
    address: int
    txn: int = field(default_factory=_next_txn, compare=False)
    #: causal span id (e.g. ``cbo:<flush_id>``) stamped by the sender when
    #: an observability bus is attached; purely diagnostic, never compared
    cause: Optional[str] = field(default=None, compare=False)

    @property
    def has_data(self) -> bool:
        return getattr(self, "data", None) is not None


# ----------------------------------------------------------------- channel A
@dataclass
class Acquire(_Message):
    """Client requests a copy/upgrade of a line (channel A)."""

    grow: Grow = Grow.NtoB


# ----------------------------------------------------------------- channel B
@dataclass
class Probe(_Message):
    """Manager revokes/downgrades a client's permissions (channel B)."""

    cap: Cap = Cap.toN


# ----------------------------------------------------------------- channel C
@dataclass
class ProbeAck(_Message):
    """Client answers a Probe; doubles as RootRelease when param != NORMAL."""

    shrink: Shrink = Shrink.NtoN
    param: ProbeAckParam = ProbeAckParam.NORMAL
    data: Optional[bytes] = None

    @property
    def is_root_release(self) -> bool:
        return self.param is not ProbeAckParam.NORMAL


@dataclass
class Release(_Message):
    """Client voluntarily downgrades a line (channel C), e.g. on eviction."""

    shrink: Shrink = Shrink.TtoN
    data: Optional[bytes] = None


# ----------------------------------------------------------------- channel D
@dataclass
class Grant(_Message):
    """Manager grants permissions without data (channel D)."""

    grow: Grow = Grow.NtoB


@dataclass
class GrantData(_Message):
    """Manager grants permissions with line data (channel D).

    ``dirty=True`` makes this a ``GrantDataDirty`` (§6): the line is not
    persisted, so the receiving L1 must leave the skip bit unset.
    """

    grow: Grow = Grow.NtoB
    data: bytes = b""
    dirty: bool = False


@dataclass
class ReleaseAck(_Message):
    """Manager acknowledges a Release; param ROOT makes it a RootReleaseAck."""

    param: ReleaseAckParam = ReleaseAckParam.NORMAL


# ----------------------------------------------------------------- channel E
@dataclass
class GrantAck(_Message):
    """Client acknowledges a Grant (channel E), completing the Acquire."""


def root_release(
    source: int,
    address: int,
    *,
    param: ProbeAckParam,
    shrink: Shrink,
    data: Optional[bytes] = None,
) -> ProbeAck:
    """Build a RootReleaseClean/Flush/Inval message (§5.1, plus CBO.INVAL)."""
    if param is ProbeAckParam.NORMAL:
        raise ValueError("a RootRelease needs a non-NORMAL param")
    return ProbeAck(source=source, address=address, shrink=shrink, param=param, data=data)


def root_release_ack(source: int, address: int) -> ReleaseAck:
    """Build a RootReleaseAck message (§5.1)."""
    return ReleaseAck(source=source, address=address, param=ReleaseAckParam.ROOT)
