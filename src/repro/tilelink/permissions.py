"""TileLink permission lattice and transition parameters.

TileLink names the three permission levels after tree positions:

* ``NONE``  (N) - no copy of the line;
* ``BRANCH`` (B) - read-only copy, possibly shared;
* ``TRUNK`` (T) - exclusive, writable copy.

``Grow`` parameters annotate Acquire messages (what upgrade the client
wants), ``Shrink`` parameters annotate Release/ProbeAck messages (what
downgrade the client performed), and ``Cap`` parameters annotate Probe
messages (the maximum permission the client may retain).
"""

from __future__ import annotations

import enum


class Perm(enum.IntEnum):
    """Permission held on a cache line; order matches privilege."""

    NONE = 0
    BRANCH = 1
    TRUNK = 2

    @property
    def readable(self) -> bool:
        return self is not Perm.NONE

    @property
    def writable(self) -> bool:
        return self is Perm.TRUNK


class Grow(enum.Enum):
    """Acquire params: requested permission growth."""

    NtoB = "NtoB"
    NtoT = "NtoT"
    BtoT = "BtoT"


class Shrink(enum.Enum):
    """Release/ProbeAck params: performed permission shrink (or report)."""

    TtoB = "TtoB"
    TtoN = "TtoN"
    BtoN = "BtoN"
    # report params: no change, used by ProbeAck when already compliant
    TtoT = "TtoT"
    BtoB = "BtoB"
    NtoN = "NtoN"


class Cap(enum.Enum):
    """Probe params: permission ceiling imposed on the client."""

    toT = "toT"
    toB = "toB"
    toN = "toN"

    @property
    def perm(self) -> Perm:
        return {Cap.toT: Perm.TRUNK, Cap.toB: Perm.BRANCH, Cap.toN: Perm.NONE}[self]


_GROW_TARGET = {
    Grow.NtoB: Perm.BRANCH,
    Grow.NtoT: Perm.TRUNK,
    Grow.BtoT: Perm.TRUNK,
}

_SHRINK_RESULT = {
    Shrink.TtoB: Perm.BRANCH,
    Shrink.TtoN: Perm.NONE,
    Shrink.BtoN: Perm.NONE,
    Shrink.TtoT: Perm.TRUNK,
    Shrink.BtoB: Perm.BRANCH,
    Shrink.NtoN: Perm.NONE,
}


def grow_target(grow: Grow) -> Perm:
    """Permission a successful Acquire with param *grow* confers."""
    return _GROW_TARGET[grow]


def shrink_result(shrink: Shrink) -> Perm:
    """Permission the client retains after a Release/ProbeAck with *shrink*."""
    return _SHRINK_RESULT[shrink]


def is_report(shrink: Shrink) -> bool:
    """True for report params (XtoX): the client changed nothing.

    Reports must not update a directory: they can be stale.  A
    RootReleaseClean queued while the line was BRANCH reports ``BtoB``
    even if the issuing core re-acquired TRUNK before the L2 processes
    the message; acting on the report would orphan the ownership record.
    """
    return shrink in (Shrink.TtoT, Shrink.BtoB, Shrink.NtoN)


def probe_shrink(current: Perm, cap: Cap) -> Shrink:
    """The Shrink/report param a client answers a Probe with.

    A probe capping at or above the current permission elicits a report
    param (``XtoX``); otherwise the genuine shrink param.
    """
    target = min(current, cap.perm)
    table = {
        (Perm.TRUNK, Perm.TRUNK): Shrink.TtoT,
        (Perm.TRUNK, Perm.BRANCH): Shrink.TtoB,
        (Perm.TRUNK, Perm.NONE): Shrink.TtoN,
        (Perm.BRANCH, Perm.BRANCH): Shrink.BtoB,
        (Perm.BRANCH, Perm.NONE): Shrink.BtoN,
        (Perm.NONE, Perm.NONE): Shrink.NtoN,
    }
    return table[(current, Perm(target))]
