"""Unified observability layer: metrics, events, spans, exporters.

The paper's central claims are microarchitectural: §5.4 argues the
probe/flush/writeback handshake cannot deadlock, §7.4 counts the
redundant writebacks Skip It eliminates.  Checking either requires
*watching* the machine — which FSHR held a line for how many cycles,
which TileLink message was (not) emitted, which queue back-pressured.
This package makes that a subsystem instead of an afterthought:

* :mod:`repro.obs.registry` — a hierarchical :class:`MetricsRegistry`
  (``soc.core0.l1.flush_unit.*``) adopting every component's existing
  :class:`~repro.sim.stats.StatCounter`/``Histogram``, plus gauges, with
  a single JSON-serialisable ``snapshot()``;
* :mod:`repro.obs.events` — a cycle-timestamped :class:`EventBus` with
  *spans* tracking the full lifetime of each CBO.X request across the
  FSHR FSM, each L1/L2 MSHR, each probe and eviction, with per-state
  latency histograms;
* :mod:`repro.obs.export` — JSONL and Chrome trace-event exporters
  (open a run in Perfetto / ``chrome://tracing``) plus summaries;
* :mod:`repro.obs.attach` — wiring: :class:`Observability` attaches a
  bus + registry to a :class:`~repro.uarch.soc.Soc`; every hook in the
  simulator is a no-op (``if self.obs is not None``) until then;
* :mod:`repro.obs.trace` — causal store tracing: a
  :class:`StoreTracer` threads a trace id from submit through group
  commit, clean, fence and ack, decomposing every acked op's latency
  into named blame buckets;
* :mod:`repro.obs.query` — blame queries over recorded traces:
  top-K slowest ops, dominant buckets, per-bucket histograms.

``python -m repro.obs`` records, summarizes, converts and queries
traces.
"""

from repro.obs.events import Event, EventBus, Span, describe_message
from repro.obs.registry import MetricsRegistry
from repro.obs.attach import (
    Observability,
    acquire_bus,
    attach_timing,
    detach_timing,
    release_bus,
    soc_registry,
    timing_registry,
)
from repro.obs.export import (
    chrome_trace,
    hottest_lines,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import BLAME_BUCKETS, OpBlame, StoreTracer
from repro.obs.query import (
    blame_from_spans,
    format_blame,
    query_trace,
    top_slowest,
)

__all__ = [
    "BLAME_BUCKETS",
    "OpBlame",
    "StoreTracer",
    "blame_from_spans",
    "format_blame",
    "query_trace",
    "top_slowest",
    "Event",
    "EventBus",
    "Span",
    "MetricsRegistry",
    "Observability",
    "acquire_bus",
    "release_bus",
    "attach_timing",
    "detach_timing",
    "soc_registry",
    "timing_registry",
    "describe_message",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "summarize",
    "hottest_lines",
]
