"""Hierarchical metrics registry.

Adopts the simulator's existing :class:`~repro.sim.stats.StatCounter` and
:class:`~repro.sim.stats.Histogram` instances under dotted paths
(``soc.core0.l1.flush_unit``), adds callable *gauges* (queue occupancy,
FSHRs in use, the flush counter) and *providers* (callables returning a
whole dict subtree, e.g. the event bus's latency summary), and produces
one nested ``snapshot()`` dict that serialises straight to JSON.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Union

from repro.sim.stats import Histogram, StatCounter

Scalar = Union[int, float, bool, str, None]


class MetricsRegistry:
    """Maps dotted paths to counters, histograms, gauges and providers."""

    def __init__(self) -> None:
        self._counters: Dict[str, StatCounter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], Scalar]] = {}
        self._providers: Dict[str, Callable[[], Dict[str, object]]] = {}

    # --------------------------------------------------------- registration
    def _claim(self, path: str) -> None:
        if not path:
            raise ValueError("metric path must be non-empty")
        if path in self.paths():
            raise ValueError(f"metric path {path!r} already registered")

    def register_counter(self, path: str, counter: StatCounter) -> StatCounter:
        """Adopt an existing component counter under *path*."""
        self._claim(path)
        self._counters[path] = counter
        return counter

    def register_histogram(self, path: str, histogram: Histogram) -> Histogram:
        self._claim(path)
        self._histograms[path] = histogram
        return histogram

    def register_gauge(self, path: str, fn: Callable[[], Scalar]) -> None:
        """A gauge is sampled (called) at snapshot time."""
        self._claim(path)
        self._gauges[path] = fn

    def register_provider(
        self, path: str, fn: Callable[[], Dict[str, object]]
    ) -> None:
        """A provider contributes a whole dict subtree at snapshot time."""
        self._claim(path)
        self._providers[path] = fn

    def counter(self, path: str) -> StatCounter:
        """Get-or-create a registry-owned counter at *path*."""
        if path not in self._counters:
            self.register_counter(path, StatCounter())
        return self._counters[path]

    def histogram(self, path: str) -> Histogram:
        if path not in self._histograms:
            self.register_histogram(path, Histogram())
        return self._histograms[path]

    def unregister_prefix(self, prefix: str) -> int:
        """Drop every metric at or under *prefix*; return how many."""
        removed = 0
        for table in (self._counters, self._histograms, self._gauges, self._providers):
            for path in [p for p in table if p == prefix or p.startswith(prefix + ".")]:
                del table[path]
                removed += 1
        return removed

    # -------------------------------------------------------------- queries
    def paths(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._histograms)
            + list(self._gauges)
            + list(self._providers)
        )

    def get(self, path: str):
        for table in (self._counters, self._histograms, self._gauges, self._providers):
            if path in table:
                return table[path]
        raise KeyError(path)

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, object]:
        """One nested dict of everything, JSON-serialisable."""
        tree: Dict[str, object] = {}
        for path, counter in self._counters.items():
            _assign(tree, path, dict(sorted(counter.as_dict().items())))
        for path, histogram in self._histograms.items():
            _assign(tree, path, histogram.summary())
        for path, fn in self._gauges.items():
            _assign(tree, path, fn())
        for path, fn in self._providers.items():
            _assign(tree, path, fn())
        return tree

    def flat(self) -> Dict[str, Scalar]:
        """The snapshot flattened to ``{dotted.path: scalar}``."""
        out: Dict[str, Scalar] = {}
        _flatten(self.snapshot(), "", out)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=str)


def _assign(tree: Dict[str, object], path: str, value: object) -> None:
    """Place *value* at the dotted *path*, merging dicts on collision."""
    parts = path.split(".")
    node = tree
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {} if child is None else {"value": child}
            node[part] = child
        node = child
    leaf = parts[-1]
    existing = node.get(leaf)
    if isinstance(existing, dict) and isinstance(value, dict):
        existing.update(value)
    else:
        node[leaf] = value


def _flatten(node: object, prefix: str, out: Dict[str, Scalar]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(value, f"{prefix}.{key}" if prefix else str(key), out)
    else:
        out[prefix] = node  # type: ignore[assignment]
