"""Blame queries over recorded store traces: "where did those cycles go".

Consumes the per-op blame attribution :mod:`repro.obs.trace` produces —
either live (``tracer.records``) or re-parsed from a JSONL trace, where
every closed ``store.op`` span carries its ``blame`` buckets, latency
and causing epoch in its args — and answers the questions the ack
latency histograms cannot: which ops were slowest, and which pipeline
stage (batch wait, leadership, clean issue, writeback drain, fence
stall) dominated each.

``python -m repro.obs query trace.jsonl --top 5`` is the CLI entry;
:func:`register_blame_metrics` feeds the same decomposition into a
:class:`~repro.obs.registry.MetricsRegistry` as per-bucket histograms.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.obs.events import Span
from repro.obs.trace import BLAME_BUCKETS, OpBlame
from repro.sim.stats import Histogram


def blame_from_spans(spans: Iterable) -> List[OpBlame]:
    """Rebuild :class:`OpBlame` records from ``store.op`` spans.

    Accepts :class:`~repro.obs.events.Span` objects or their dict forms
    (as returned by :func:`repro.obs.export.read_jsonl`).  Open spans
    and spans without blame args (ops never acked) are skipped.
    """
    records: List[OpBlame] = []
    for span in spans:
        if isinstance(span, Span):
            span = span.to_dict()
        if span.get("category") != "store.op" or span.get("end") is None:
            continue
        args = span.get("args", {})
        buckets = args.get("blame")
        if not isinstance(buckets, dict):
            continue
        latency = int(args.get("latency", 0))
        durable_now = int(span["end"])
        key = str(span.get("key", "op:0"))
        try:
            trace_id = int(key.split(":", 1)[1])
        except (IndexError, ValueError):
            trace_id = 0
        records.append(
            OpBlame(
                trace_id=trace_id,
                tid=int(args.get("tid", 0)),
                lsn=int(args.get("lsn", 0)),
                epoch=str(args.get("epoch", "")),
                submit_now=durable_now - latency,
                durable_now=durable_now,
                latency=latency,
                clamped=bool(args.get("clamped", False)),
                buckets={k: int(v) for k, v in buckets.items()},
            )
        )
    return records


def top_slowest(records: Iterable[OpBlame], top: int = 5) -> List[OpBlame]:
    """The *top* highest-latency ops, slowest first (stable on ties)."""
    return sorted(records, key=lambda r: (-r.latency, r.trace_id))[:top]


def bucket_histograms(records: Iterable[OpBlame]) -> Dict[str, Histogram]:
    """Per-bucket cycle histograms over *records* (plus ``latency``)."""
    out: Dict[str, Histogram] = {name: Histogram() for name in BLAME_BUCKETS}
    out["latency"] = Histogram()
    for record in records:
        out["latency"].add(record.latency)
        for name in BLAME_BUCKETS:
            out[name].add(record.buckets.get(name, 0))
    return out


def register_blame_metrics(
    registry,
    records: Iterable[OpBlame],
    prefix: str = "store.blame",
) -> Dict[str, Histogram]:
    """Register the blame histograms under *prefix* in *registry*."""
    histograms = bucket_histograms(records)
    for name, histogram in histograms.items():
        registry.register_histogram(f"{prefix}.{name}", histogram)
    return histograms


def dominant_counts(records: Iterable[OpBlame]) -> Dict[str, int]:
    """How many ops each bucket dominates."""
    counts: Dict[str, int] = {}
    for record in records:
        name = record.dominant
        counts[name] = counts.get(name, 0) + 1
    return counts


def format_blame(records: List[OpBlame], top: int = 5) -> str:
    """Human-readable blame report: aggregate shares, then the top-K ops."""
    if not records:
        return "no acked ops with blame attribution in this trace"
    lines: List[str] = []
    latency = Histogram()
    totals: Dict[str, int] = {name: 0 for name in BLAME_BUCKETS}
    clamped = 0
    for record in records:
        latency.add(record.latency)
        clamped += record.clamped
        for name in BLAME_BUCKETS:
            totals[name] += record.buckets.get(name, 0)
    grand = sum(totals.values())
    lines.append(
        f"{len(records)} acked ops; ack latency p50={latency.p50():.0f} "
        f"p99={latency.p99():.0f} mean={latency.mean():.1f} cycles"
        + (f"; {clamped} clamped (cross-clock)" if clamped else "")
    )
    dominated = dominant_counts(records)
    lines.append("blame share (all ops):")
    for name in BLAME_BUCKETS:
        share = totals[name] / grand if grand else 0.0
        lines.append(
            f"  {name:<16} {totals[name]:>10} cycles  {share:>6.1%}  "
            f"dominant in {dominated.get(name, 0)} ops"
        )
    lines.append("")
    header = (
        f"{'op':>8} {'tid':>3} {'lsn':>6} {'epoch':>9} {'latency':>8} "
        f"{'dominant':<16} " + " ".join(f"{n:>10}" for n in BLAME_BUCKETS)
    )
    lines.append(f"top {min(top, len(records))} slowest ops:")
    lines.append(header)
    for record in top_slowest(records, top):
        lines.append(
            f"{'op:%d' % record.trace_id:>8} {record.tid:>3} {record.lsn:>6} "
            f"{record.epoch:>9} {record.latency:>8} {record.dominant:<16} "
            + " ".join(
                f"{record.buckets.get(n, 0):>10}" for n in BLAME_BUCKETS
            )
        )
    return "\n".join(lines)


def query_trace(path: str, top: int = 5) -> str:
    """Load a JSONL trace and render the blame report (CLI backend)."""
    from repro.obs.export import read_jsonl

    _, spans = read_jsonl(path)
    return format_blame(blame_from_spans(spans), top=top)


__all__ = [
    "blame_from_spans",
    "top_slowest",
    "bucket_histograms",
    "register_blame_metrics",
    "dominant_counts",
    "format_blame",
    "query_trace",
]
