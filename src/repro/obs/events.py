"""Cycle-timestamped structured events and spans.

The :class:`EventBus` is the single sink every instrumentation hook in
the simulator writes to.  Components hold an ``obs`` attribute that is
``None`` by default; hooks are guarded by ``if self.obs is not None`` so
an unobserved run pays one attribute load per hook site and nothing
else.  When a bus is attached (:func:`repro.obs.attach.acquire_bus`),
hooks produce two kinds of records:

* **events** — instants: a TileLink message leaving a channel, a CBO.X
  dropped by Skip It, a fence committing;
* **spans** — lifetimes: one span per CBO.X request from flush-queue
  enqueue through every FSHR FSM state to the RootReleaseAck, one per
  L1/L2 MSHR allocation, one per probe and per eviction.  Each span
  records its per-state segments, so "where do flush cycles go" is
  answerable per request, and per-state latency histograms aggregate
  the answer across a run.

The bus never raises into the simulator: closing an unknown span or
re-opening a live key is recorded in ``dropped`` and otherwise ignored.

**Causality.** The bus carries an ambient *cause* — the key of the span
whose work is currently executing (a store op, an epoch seal, a fired
instruction).  While :attr:`EventBus.cause` is set (directly or via the
:meth:`EventBus.causal` context manager), every event and span opened
picks up a ``cause`` arg, so a CBO issued inside an epoch's clean loop
or a TileLink beat triggered by an instruction carries the id of the
operation that caused it without touching any emit site.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.sim.stats import Histogram

#: default bound on the in-memory event buffer; long runs must not grow
#: without limit (the deadlock dump only ever needs the tail anyway).
DEFAULT_MAX_EVENTS = 100_000


def describe_message(message) -> str:
    """One-line description of a TileLink message's salient fields."""
    parts = []
    for attribute in ("grow", "cap", "shrink", "param"):
        value = getattr(message, attribute, None)
        if value is not None:
            parts.append(f"{attribute}={getattr(value, 'value', value)}")
    if getattr(message, "data", None) is not None:
        parts.append(f"data[{len(message.data)}B]")
    if getattr(message, "dirty", False):
        parts.append("dirty")
    return " ".join(parts)


@dataclass(frozen=True)
class Event:
    """One instantaneous occurrence at a cycle."""

    cycle: int
    category: str  # "tilelink", "cbo", "l1_mshr", "core", ...
    name: str
    track: str = ""  # hierarchical source, e.g. "core0.flush_unit"
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "args": dict(self.args),
        }

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.args.items())
        return (
            f"[{self.cycle:>6}] {self.track:<22} {self.category}:{self.name} "
            f"{extras}".rstrip()
        )


@dataclass
class Span:
    """The lifetime of one request, segmented by FSM state."""

    key: str
    category: str
    name: str
    track: str
    start: int
    args: Dict[str, object] = field(default_factory=dict)
    #: closed segments as ``[state, start_cycle, end_cycle]``
    states: List[List[object]] = field(default_factory=list)
    end: Optional[int] = None
    _state: Optional[str] = None  # open segment's state
    _state_start: int = 0

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> int:
        if self.end is None:
            raise ValueError(f"span {self.key} still open")
        return self.end - self.start

    @property
    def current_state(self) -> Optional[str]:
        return self._state

    def state_durations(self) -> Dict[str, int]:
        """Total cycles per state name; sums to :attr:`duration` when closed."""
        out: Dict[str, int] = {}
        for state, seg_start, seg_end in self.states:
            out[state] = out.get(state, 0) + (seg_end - seg_start)
        return out

    # -------------------------------------------------------- bus internals
    def _enter(self, state: str, cycle: int) -> None:
        if self._state is not None:
            self.states.append([self._state, self._state_start, cycle])
        self._state = state
        self._state_start = cycle

    def _close(self, cycle: int) -> None:
        if self._state is not None:
            self.states.append([self._state, self._state_start, cycle])
            self._state = None
        self.end = cycle

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "states": [list(seg) for seg in self.states],
            "args": dict(self.args),
        }


class EventBus:
    """Collects events and spans; fans events out to subscribers.

    Parameters
    ----------
    max_events:
        Bound on the buffered event deque (``None`` = unbounded).  The
        default keeps long runs from growing the buffer without limit.
    max_spans:
        Bound on the completed-span deque (``None`` = unbounded).
    record_events:
        When False the bus only notifies subscribers and maintains
        spans/histograms, buffering no events itself.
    """

    def __init__(
        self,
        max_events: Optional[int] = DEFAULT_MAX_EVENTS,
        max_spans: Optional[int] = None,
        record_events: bool = True,
    ) -> None:
        self.events: Deque[Event] = deque(maxlen=max_events)
        self.spans: Deque[Span] = deque(maxlen=max_spans)
        self.record_events = record_events
        self.dropped = 0  # malformed span operations, never raised
        self.refs = 0  # attach/detach bookkeeping (see repro.obs.attach)
        #: ambient causal context: the span key whose work is executing;
        #: attached as ``cause`` to every emit/open_span while set
        self.cause: Optional[str] = None
        self._open: Dict[str, Span] = {}
        self._subscribers: List[Callable[[Event], None]] = []
        #: per (category, state) latency histograms, filled on span close
        self.state_latency: Dict[Tuple[str, str], Histogram] = {}
        #: per category whole-span latency histograms
        self.span_latency: Dict[str, Histogram] = {}

    # ---------------------------------------------------------- subscribers
    def subscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscribers)

    # ------------------------------------------------------------ causality
    @contextmanager
    def causal(self, cause: Optional[str]) -> Iterator["EventBus"]:
        """Scope an ambient cause id; restores the previous one on exit."""
        previous = self.cause
        self.cause = cause
        try:
            yield self
        finally:
            self.cause = previous

    # --------------------------------------------------------------- events
    def emit(
        self, cycle: int, category: str, name: str, track: str = "", **args
    ) -> None:
        if self.cause is not None and "cause" not in args:
            args["cause"] = self.cause
        event = Event(cycle=cycle, category=category, name=name, track=track, args=args)
        if self.record_events:
            self.events.append(event)
        for callback in self._subscribers:
            callback(event)

    def last_events(self, count: int = 32) -> List[Dict[str, object]]:
        """The newest *count* events as plain dicts (deadlock dumps)."""
        tail = list(self.events)[-count:]
        return [event.to_dict() for event in tail]

    # ---------------------------------------------------------------- spans
    @property
    def open_spans(self) -> Dict[str, Span]:
        return dict(self._open)

    def open_span(
        self,
        cycle: int,
        key: str,
        category: str,
        name: str,
        track: str = "",
        state: str = "open",
        **args,
    ) -> Span:
        if key in self._open:
            # a live key is re-opened only on observer misuse; keep going
            self.dropped += 1
            self._open.pop(key)
        if self.cause is not None and "cause" not in args:
            args["cause"] = self.cause
        span = Span(
            key=key, category=category, name=name, track=track, start=cycle, args=args
        )
        span._enter(state, cycle)
        self._open[key] = span
        self.emit(cycle, category, f"{name}:begin", track=track, key=key, **args)
        return span

    def transition(self, cycle: int, key: str, state: str, **args) -> None:
        span = self._open.get(key)
        if span is None:
            self.dropped += 1
            return
        span._enter(state, cycle)
        span.args.update(args)
        self.emit(
            cycle, span.category, f"{span.name}:{state}", track=span.track, key=key
        )

    def annotate(self, key: str, **args) -> None:
        """Attach args to an open span without changing its state."""
        span = self._open.get(key)
        if span is None:
            self.dropped += 1
            return
        span.args.update(args)

    def close_span(self, cycle: int, key: str, **args) -> Optional[Span]:
        span = self._open.pop(key, None)
        if span is None:
            self.dropped += 1
            return None
        span.args.update(args)
        span._close(cycle)
        self.spans.append(span)
        self._account(span)
        self.emit(
            cycle,
            span.category,
            f"{span.name}:end",
            track=span.track,
            key=key,
            duration=span.duration,
        )
        return span

    def _account(self, span: Span) -> None:
        for state, duration in span.state_durations().items():
            hist = self.state_latency.get((span.category, state))
            if hist is None:
                hist = self.state_latency[(span.category, state)] = Histogram()
            hist.add(duration)
        hist = self.span_latency.get(span.category)
        if hist is None:
            hist = self.span_latency[span.category] = Histogram()
        hist.add(span.duration)

    # ------------------------------------------------------------ summaries
    def latency_summary(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{category: {state|'total': Histogram.summary()}}``."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (category, state), hist in sorted(self.state_latency.items()):
            out.setdefault(category, {})[state] = hist.summary()
        for category, hist in sorted(self.span_latency.items()):
            out.setdefault(category, {})["total"] = hist.summary()
        return out

    def clear(self) -> None:
        self.events.clear()
        self.spans.clear()
        self._open.clear()
        self.state_latency.clear()
        self.span_latency.clear()
        self.dropped = 0
