"""Observability CLI: ``python -m repro.obs <command>``.

Commands
--------
``record``
    Run a quickstart-scale workload on the cycle-level SoC with the
    observability layer attached and write the trace as JSONL (and
    optionally Chrome trace-event JSON for Perfetto).
``summary``
    Aggregate a recorded JSONL trace: event counts, span latency stats.
``convert``
    Convert a JSONL trace to Chrome trace-event JSON
    (open at https://ui.perfetto.dev or ``chrome://tracing``).
``hot``
    List the top-N hottest cache lines of a recorded trace.
``record-store``
    Run a shared-log store benchmark with the causal
    :class:`~repro.obs.trace.StoreTracer` attached; write the trace and
    print the blame report (which pipeline stage each op's latency went
    to).
``query``
    Answer "where did the cycles of the slowest acks go" over a
    recorded store trace: top-K slowest ops with per-bucket blame.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.attach import Observability
from repro.obs.export import (
    chrome_trace,
    hottest_lines,
    read_jsonl,
    summarize,
    write_jsonl,
)


def _demo_programs(num_cores: int, lines: int, redundant: int):
    """The quickstart workload: stores, necessary + redundant cleans, a
    cross-core sharing round, and a trailing flush + fence per core."""
    from repro.uarch.cpu import Instr

    programs = []
    for core in range(num_cores):
        base = 0x10000 + core * 0x8000
        program = []
        for i in range(lines):
            address = base + i * 64
            program.append(Instr.store(address, i + 1))
            program.append(Instr.clean(address))
            program.extend(Instr.clean(address) for _ in range(redundant))
        program.append(Instr.fence())
        # touch the neighbour core's region to exercise probes
        neighbour = 0x10000 + ((core + 1) % num_cores) * 0x8000
        program.append(Instr.load(neighbour))
        program.append(Instr.store(base, 99))
        program.append(Instr.flush(base))
        program.append(Instr.fence())
        programs.append(program)
    return programs


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.sim.config import SoCParams
    from repro.uarch.soc import Soc

    params = SoCParams().with_cores(args.cores)
    soc = Soc(params)
    obs = Observability.attach(soc)
    cycles = soc.run_programs(
        _demo_programs(args.cores, args.lines, args.redundant)
    )
    soc.drain()
    written = write_jsonl(args.out, obs.bus)
    print(f"ran {cycles} cycles; wrote {written} records to {args.out}")
    if args.chrome:
        trace = chrome_trace(obs.bus.events, obs.bus.spans)
        with open(args.chrome, "w") as handle:
            json.dump(trace, handle)
        print(
            f"wrote {len(trace['traceEvents'])} trace entries to {args.chrome} "
            "(open at https://ui.perfetto.dev)"
        )
    if args.metrics:
        with open(args.metrics, "w") as handle:
            handle.write(obs.registry.to_json())
        print(f"wrote metrics snapshot to {args.metrics}")
    snapshot = obs.snapshot()
    for i in range(args.cores):
        fu = snapshot["soc"][f"core{i}"]["l1"]["flush_unit"]
        print(
            f"core{i}: enqueued={fu.get('enqueued', 0)} "
            f"skipped={fu.get('skipped', 0)} acks={fu.get('acks', 0)}"
        )
    obs.detach()
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    events, spans = read_jsonl(args.trace)
    result = summarize(events, spans)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    events, spans = read_jsonl(args.trace)
    trace = chrome_trace(events, spans)
    with open(args.out, "w") as handle:
        json.dump(trace, handle)
    print(f"wrote {len(trace['traceEvents'])} trace entries to {args.out}")
    return 0


def _cmd_record_store(args: argparse.Namespace) -> int:
    from repro.obs.query import format_blame
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import StoreTracer
    from repro.workloads.store import SharedStoreBenchmark

    tracer = StoreTracer()
    bench = SharedStoreBenchmark(
        args.optimizer, args.group_commit, threads=args.threads
    )
    result = bench.run(duration=args.duration, tracer=tracer)
    written = write_jsonl(args.out, tracer.bus)
    print(
        f"{result.total_ops} ops in {result.elapsed_cycles} cycles "
        f"({result.throughput_mops:.3f} Mops/s); "
        f"wrote {written} records to {args.out}"
    )
    if args.chrome:
        trace = chrome_trace(tracer.bus.events, tracer.bus.spans)
        with open(args.chrome, "w") as handle:
            json.dump(trace, handle)
        print(
            f"wrote {len(trace['traceEvents'])} trace entries to {args.chrome} "
            "(open at https://ui.perfetto.dev)"
        )
    if args.metrics:
        registry = MetricsRegistry()
        tracer.register_metrics(registry)
        with open(args.metrics, "w") as handle:
            handle.write(registry.to_json())
        print(f"wrote blame metrics snapshot to {args.metrics}")
    print()
    print(format_blame(tracer.records, top=args.top))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.obs.query import query_trace

    print(query_trace(args.trace, top=args.top))
    return 0


def _cmd_hot(args: argparse.Namespace) -> int:
    events, spans = read_jsonl(args.trace)
    rows = hottest_lines(events, spans, top=args.top)
    if not rows:
        print("no line activity recorded")
        return 0
    print(f"{'address':>12} {'spans':>6} {'cycles':>8} {'messages':>8}")
    for row in rows:
        print(
            f"{row['address']:#12x} {row['spans']:>6} "
            f"{row['span_cycles']:>8} {row['messages']:>8}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Record, summarize and convert observability traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a demo workload and record it")
    record.add_argument("--out", default="trace.jsonl", help="JSONL output path")
    record.add_argument("--chrome", help="also write Chrome trace-event JSON here")
    record.add_argument("--metrics", help="also write the metrics snapshot here")
    record.add_argument("--cores", type=int, default=2)
    record.add_argument("--lines", type=int, default=16, help="lines per core")
    record.add_argument(
        "--redundant", type=int, default=2, help="redundant cleans per line"
    )
    record.set_defaults(fn=_cmd_record)

    summary = sub.add_parser("summary", help="summarize a recorded trace")
    summary.add_argument("trace")
    summary.set_defaults(fn=_cmd_summary)

    convert = sub.add_parser("convert", help="JSONL -> Chrome trace-event JSON")
    convert.add_argument("trace")
    convert.add_argument("-o", "--out", default="trace.json")
    convert.set_defaults(fn=_cmd_convert)

    hot = sub.add_parser("hot", help="top-N hottest cache lines")
    hot.add_argument("trace")
    hot.add_argument("-n", "--top", type=int, default=10)
    hot.set_defaults(fn=_cmd_hot)

    rstore = sub.add_parser(
        "record-store", help="record a causally-traced shared-store run"
    )
    rstore.add_argument(
        "--out", default="store_trace.jsonl", help="JSONL output path"
    )
    rstore.add_argument("--chrome", help="also write Chrome trace-event JSON here")
    rstore.add_argument("--metrics", help="also write blame metrics here")
    rstore.add_argument("--optimizer", default="skipit")
    rstore.add_argument("--threads", type=int, default=2)
    rstore.add_argument("--group-commit", type=int, default=8)
    rstore.add_argument("--duration", type=int, default=30_000)
    rstore.add_argument("-n", "--top", type=int, default=5)
    rstore.set_defaults(fn=_cmd_record_store)

    query = sub.add_parser(
        "query", help="top-K slowest ops and their dominant blame bucket"
    )
    query.add_argument("trace")
    query.add_argument("-n", "--top", type=int, default=5)
    query.set_defaults(fn=_cmd_query)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
