"""Causal per-operation store tracing with latency blame attribution.

The store tier's headline number is submit→durable ack latency (figures
17/18), but the event bus records FSHR/TileLink/timing events in
isolation — nothing links a CBO back to the store operation whose epoch
issued it, and a p99 outlier cannot be decomposed.  This module closes
the loop:

* a :class:`StoreTracer` attaches to a
  :class:`~repro.store.store.DurableStore` or
  :class:`~repro.store.shared.SharedLogStore` (``store.tracer``, ``None``
  by default — the usual zero-cost-when-detached contract) and opens one
  ``store.op`` span per submitted operation and one ``store.epoch`` span
  per seal;
* while an op's append or an epoch's marker/clean/fence sequence runs,
  the tracer sets :attr:`~repro.obs.events.EventBus.cause`, so every
  bus record the work produces — ``cbo_issued``/``cbo_skipped``/``fence``
  events from the timing model, TileLink beats, FSHR spans — carries the
  ``op:<n>`` / ``epoch:<n>`` id that caused it;
* when the epoch's fence retires, each acked op's latency is decomposed
  into named **blame buckets** whose sum equals the measured
  submit→durable latency *exactly*, cycle for cycle (asserted in tests):

  ====================  ===================================================
  bucket                cycles between
  ====================  ===================================================
  ``batch_wait``        submit and the epoch trigger firing (batching delay)
  ``leader_wait``       trigger firing and the seal starting (leadership
                        deferral / takeover window; 0 when the leader's own
                        submit sealed)
  ``marker_append``     seal start and the COMMIT marker landing in cache
  ``clean_issue``       marker and the last CBO.CLEAN of the epoch issuing
  ``writeback_drain``   the fence waiting out in-flight DRAM writebacks
  ``fence_stall``       the remaining fence cost (``fence_base`` plus any
                        post-fence ack bookkeeping on the sealer's clock)
  ====================  ===================================================

  Buckets are *signed*: cross-thread virtual clocks are only loosely
  synchronized, so an op submitted on a clock ahead of the sealer's can
  show a negative ``batch_wait`` — exactly the case the store's
  ``store_ack_latency_clamped`` counter clamps to zero in its histogram.
  The blame identity holds on the raw (unclamped) latency.

:mod:`repro.obs.query` consumes the per-op records (live or re-parsed
from a JSONL trace) for top-K / histogram / CLI reporting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.events import EventBus
from repro.sim.stats import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.timing.system import TimingSystem

#: blame buckets in pipeline order; their values sum to the op's raw
#: submit→durable latency exactly
BLAME_BUCKETS = (
    "batch_wait",
    "leader_wait",
    "marker_append",
    "clean_issue",
    "writeback_drain",
    "fence_stall",
)


@dataclass
class OpBlame:
    """One acked operation's latency decomposition."""

    trace_id: int
    tid: int
    lsn: int
    epoch: str  # causing epoch's span key, e.g. "epoch:3"
    submit_now: int
    durable_now: int
    latency: int  # durable_now - submit_now, signed (pre-clamp)
    clamped: bool  # True when the store's histogram clamped it to 0
    buckets: Dict[str, int] = field(default_factory=dict)

    @property
    def dominant(self) -> str:
        """The bucket holding the most cycles (first wins ties)."""
        return max(BLAME_BUCKETS, key=lambda name: self.buckets.get(name, 0))

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "tid": self.tid,
            "lsn": self.lsn,
            "epoch": self.epoch,
            "submit_now": self.submit_now,
            "durable_now": self.durable_now,
            "latency": self.latency,
            "clamped": self.clamped,
            "dominant": self.dominant,
            "buckets": dict(self.buckets),
        }


@dataclass
class _EpochState:
    """Seal-sequence milestones on the sealing thread's clock."""

    epoch_id: int
    key: str
    seal_tid: int
    m0: int  # seal start
    defer_now: Optional[int] = None  # first deferred-trigger clock, if any
    m1: int = 0  # after the COMMIT marker append
    m2: int = 0  # after the clean loop
    m3: int = 0  # after the fence
    waited: int = 0  # fence writeback-drain cycles


class StoreTracer:
    """Per-op/per-epoch spans, causal ids, and blame attribution.

    One tracer serves one store.  ``attach``/``detach`` flip the store's
    ``tracer`` attribute (and optionally wire the timing system's event
    hooks to the same bus so CBO/fence events interleave with the store
    spans); every hook in the store is guarded by
    ``if tracer is not None``, so a detached store pays one attribute
    load per operation and nothing else.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.bus = bus if bus is not None else EventBus(max_events=None)
        #: blame records in ack order
        self.records: List[OpBlame] = []
        #: raw (signed) submit→durable latency across all acked ops
        self.latency = Histogram()
        #: per-bucket cycle histograms
        self.bucket_latency: Dict[str, Histogram] = {
            name: Histogram() for name in BLAME_BUCKETS
        }
        #: serving-tier queueing delay (arrival → service start).  This is
        #: *pre-submit* time, deliberately NOT a blame bucket: the blame
        #: buckets telescope to the submit→durable latency exactly, while
        #: queue wait happens before the op's ticket exists.
        self.queue_wait = Histogram()
        self._op_seq = itertools.count(1)
        self._epoch_seq = itertools.count(1)
        self._submit_now: Dict[int, int] = {}  # trace_id -> submit clock
        self._defer_now: Optional[int] = None
        self._store = None
        self._system: Optional["TimingSystem"] = None

    # -------------------------------------------------------------- wiring
    def attach(self, store, system: Optional["TimingSystem"] = None) -> "StoreTracer":
        """Hook *store* (and optionally its timing *system*) to this tracer."""
        store.tracer = self
        self._store = store
        if system is not None:
            system.obs = self.bus
            self._system = system
        self.bus.refs += 1
        return self

    def detach(self) -> None:
        if self._store is not None:
            self._store.tracer = None
            self._store = None
        if self._system is not None:
            self._system.obs = None
            self._system = None
        self.bus.refs = max(0, self.bus.refs - 1)

    def register_metrics(
        self, registry: "MetricsRegistry", prefix: str = "store.blame"
    ) -> None:
        """Expose the latency + per-bucket histograms under *prefix*."""
        registry.register_histogram(f"{prefix}.latency", self.latency)
        registry.register_histogram(f"{prefix}.queue_wait", self.queue_wait)
        for name in BLAME_BUCKETS:
            registry.register_histogram(
                f"{prefix}.{name}", self.bucket_latency[name]
            )

    # ------------------------------------------------------------ op hooks
    def op_begin(self, tid: int, now: int) -> int:
        """An operation is about to append; open its span, set the cause."""
        trace_id = next(self._op_seq)
        key = f"op:{trace_id}"
        self.bus.open_span(
            now,
            key,
            "store.op",
            name=f"op{trace_id}",
            track=f"t{tid}",
            state="batch_wait",
            tid=tid,
        )
        self.bus.cause = key
        return trace_id

    def op_submitted(self, trace_id: int, ticket, now: int) -> None:
        """The append finished and *ticket* exists; clock starts here.

        ``now`` is the submitting thread's clock at ticket creation —
        the same instant the store's ack-latency metric measures from.
        """
        self.bus.cause = None
        ticket.trace_id = trace_id
        self._submit_now[trace_id] = now
        self.bus.annotate(f"op:{trace_id}", lsn=ticket.lsn)

    def request_queued(self, tid: int, wait: int, now: int) -> None:
        """A serving-tier request waited *wait* cycles before service.

        Emitted by :class:`repro.serve.tier.ServeTier` for every request
        (zero wait included, so the histogram's mean is meaningful).
        """
        self.queue_wait.add(wait)
        if wait:
            self.bus.emit(
                now, "serve", "queue_wait", track=f"t{tid}", wait=wait
            )

    # ---------------------------------------------------------- seal hooks
    def seal_deferred(self, now: int) -> None:
        """The epoch trigger fired on a follower; the leader gets a grace
        round.  Only the first deferral marks the trigger instant."""
        if self._defer_now is None:
            self._defer_now = now

    def seal_begin(self, seal_tid: int, now: int) -> _EpochState:
        epoch_id = next(self._epoch_seq)
        es = _EpochState(
            epoch_id=epoch_id,
            key=f"epoch:{epoch_id}",
            seal_tid=seal_tid,
            m0=now,
            defer_now=self._defer_now,
        )
        self._defer_now = None
        self.bus.open_span(
            now,
            es.key,
            "store.epoch",
            name=f"epoch{epoch_id}",
            track=f"t{seal_tid}",
            state="marker_append",
            seal_tid=seal_tid,
        )
        self.bus.cause = es.key
        return es

    def seal_marker(self, es: _EpochState, marker_lsn: int, now: int) -> None:
        es.m1 = now
        self.bus.annotate(es.key, marker_lsn=marker_lsn)
        self.bus.transition(now, es.key, "clean_issue")

    def seal_cleaned(self, es: _EpochState, now: int) -> None:
        es.m2 = now
        self.bus.transition(now, es.key, "fence")

    def seal_fenced(self, es: _EpochState, now: int, waited: int) -> None:
        es.m3 = now
        es.waited = waited
        self.bus.transition(now, es.key, "ack", waited=waited)

    def op_acked(self, es: _EpochState, ticket, durable_now: int) -> Optional[OpBlame]:
        """Decompose one acked ticket's latency; close its op span.

        The buckets telescope over the seal milestones, so their sum is
        ``durable_now - submit_now`` by construction — exact on every op,
        including cross-clock (possibly negative) latencies.
        """
        trace_id = getattr(ticket, "trace_id", None)
        if trace_id is None:
            return None
        submit_now = self._submit_now.pop(trace_id, None)
        if submit_now is None:
            return None
        trigger = es.defer_now if es.defer_now is not None else es.m0
        buckets = {
            "batch_wait": trigger - submit_now,
            "leader_wait": es.m0 - trigger,
            "marker_append": es.m1 - es.m0,
            "clean_issue": es.m2 - es.m1,
            "writeback_drain": es.waited,
            "fence_stall": (durable_now - es.m2) - es.waited,
        }
        latency = durable_now - submit_now
        blame = OpBlame(
            trace_id=trace_id,
            tid=getattr(ticket, "tid", 0),
            lsn=ticket.lsn,
            epoch=es.key,
            submit_now=submit_now,
            durable_now=durable_now,
            latency=latency,
            clamped=latency < 0,
            buckets=buckets,
        )
        self.records.append(blame)
        self.latency.add(latency)
        for name, cycles in buckets.items():
            self.bucket_latency[name].add(cycles)
        self.bus.close_span(
            durable_now,
            f"op:{trace_id}",
            epoch=es.key,
            latency=latency,
            clamped=blame.clamped,
            blame=dict(buckets),
        )
        return blame

    def seal_end(self, es: _EpochState, now: int, batch_size: int) -> None:
        self.bus.cause = None
        self.bus.close_span(now, es.key, batch=batch_size)
