"""Trace exporters: JSONL and Chrome trace-event JSON (Perfetto).

A recorded run is written as JSON Lines — one self-describing record per
line (``{"type": "event", ...}`` / ``{"type": "span", ...}``) — which
streams well and survives truncation.  ``chrome_trace`` converts events
and spans into the Chrome trace-event format [1] that Perfetto and
``chrome://tracing`` open directly: spans become complete (``"X"``)
slices, one per FSM-state segment nested under one slice per request,
and instant events become ``"i"`` marks.  Spans whose args name another
span — an op's sealing ``epoch``, a cbo's causing request via
``cause`` — get flow arrows (``"s"``/``"f"``) so Perfetto draws the
causal chain across tracks, and ``"C"`` counter tracks chart flush
queue depth, outstanding FSHRs and cumulative Skip It drops.  Cycle
numbers are used as microsecond timestamps (1 cycle = 1 us on the
viewer's axis).

[1] https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import Event, EventBus, Span

#: phases legal in the trace-event schema that this exporter emits
CHROME_PHASES = ("X", "i", "M", "C", "s", "f")


# ------------------------------------------------------------------- JSONL
def write_jsonl(path: str, bus: EventBus) -> int:
    """Write every buffered event and completed span; return record count."""
    written = 0
    with open(path, "w") as handle:
        for event in bus.events:
            record = event.to_dict()
            record["type"] = "event"
            handle.write(json.dumps(record, default=str) + "\n")
            written += 1
        for span in bus.spans:
            record = span.to_dict()
            record["type"] = "span"
            handle.write(json.dumps(record, default=str) + "\n")
            written += 1
    return written


def read_jsonl(path: str) -> Tuple[List[dict], List[dict]]:
    """Read a trace back as ``(event_dicts, span_dicts)``."""
    events: List[dict] = []
    spans: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "span":
                spans.append(record)
            elif record.get("type") == "event":
                events.append(record)
    return events, spans


# ------------------------------------------------------------ Chrome trace
def _as_dicts(items: Iterable) -> List[dict]:
    return [item.to_dict() if isinstance(item, (Event, Span)) else item for item in items]


def chrome_trace(
    events: Iterable = (),
    spans: Iterable = (),
    include_events: bool = True,
    include_counters: bool = True,
) -> Dict[str, object]:
    """Build a trace-event JSON object from events and spans.

    Accepts :class:`Event`/:class:`Span` objects or their dict forms
    (as returned by :func:`read_jsonl`).
    """
    events = _as_dicts(events)
    spans = _as_dicts(spans)
    trace: List[dict] = []
    tids: Dict[str, int] = {}
    #: span key -> (tid, slice start): flow endpoints bind to these slices
    anchors: Dict[str, Tuple[int, int]] = {}

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            trace.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tids[track],
                    "args": {"name": track or "events"},
                }
            )
        return tids[track]

    for span in spans:
        if span.get("end") is None:
            continue  # still open at export time
        tid = tid_of(span.get("track", ""))
        key = str(span.get("key", ""))
        if key and key not in anchors:
            anchors[key] = (tid, span["start"])
        args = dict(span.get("args", {}))
        args["key"] = key
        trace.append(
            {
                "name": span["name"],
                "cat": span.get("category", ""),
                "ph": "X",
                "ts": span["start"],
                # store-op spans cross loosely-synchronized virtual
                # clocks; clamp so the viewer schema stays valid
                "dur": max(0, span["end"] - span["start"]),
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
        for state, seg_start, seg_end in span.get("states", []):
            trace.append(
                {
                    "name": f"{span['name']}.{state}",
                    "cat": span.get("category", ""),
                    "ph": "X",
                    "ts": seg_start,
                    "dur": max(0, seg_end - seg_start),
                    "pid": 0,
                    "tid": tid,
                    "args": {"state": state, "key": key},
                }
            )
    # flow arrows: a span whose args name another recorded span — its
    # sealing epoch or causing request — links the two slices causally
    next_flow = 1
    for span in spans:
        if span.get("end") is None:
            continue
        source_key = str(span.get("key", ""))
        source = anchors.get(source_key)
        if source is None:
            continue
        args = span.get("args", {})
        for link in ("epoch", "cause"):
            target_key = args.get(link)
            if not isinstance(target_key, str) or target_key == source_key:
                continue
            target = anchors.get(target_key)
            if target is None:
                continue
            trace.append(
                {
                    "name": link,
                    "cat": "flow",
                    "ph": "s",
                    "id": next_flow,
                    "ts": source[1],
                    "pid": 0,
                    "tid": source[0],
                }
            )
            trace.append(
                {
                    "name": link,
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": next_flow,
                    "ts": target[1],
                    "pid": 0,
                    "tid": target[0],
                }
            )
            next_flow += 1
    if include_counters:
        trace.extend(_counter_entries(events, spans, tid_of("counters")))
    if include_events:
        for event in events:
            # span begin/transition/end events are redundant with slices
            name = event.get("name", "")
            if ":" in name:
                continue
            trace.append(
                {
                    "name": name,
                    "cat": event.get("category", ""),
                    "ph": "i",
                    "s": "t",
                    "ts": event["cycle"],
                    "pid": 0,
                    "tid": tid_of(event.get("track", "")),
                    "args": dict(event.get("args", {})),
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def _counter_entries(
    events: List[dict], spans: List[dict], tid: int
) -> List[dict]:
    """Counter tracks (``"C"``) derived from the recorded trace.

    ``flush_queue_depth`` rises while a CBO.X sits in the flush queue
    (the span's ``queued`` segment) and ``outstanding_fshrs`` while its
    FSHR executes (dequeue to ack).  ``skip_filtered_cleans`` counts
    Skip It drops cumulatively — monotone non-decreasing by
    construction — from both the SoC (``skipped``) and the timing model
    (``cbo_skipped``).
    """
    deltas: Dict[str, List[Tuple[int, int]]] = {
        "flush_queue_depth": [],
        "outstanding_fshrs": [],
    }
    for span in spans:
        if span.get("category") != "cbo" or span.get("end") is None:
            continue
        fshr_start: Optional[int] = None
        for state, seg_start, seg_end in span.get("states", []):
            if state == "queued":
                deltas["flush_queue_depth"].append((seg_start, +1))
                deltas["flush_queue_depth"].append((seg_end, -1))
            elif fshr_start is None:
                fshr_start = seg_start
        if fshr_start is not None:
            deltas["outstanding_fshrs"].append((fshr_start, +1))
            deltas["outstanding_fshrs"].append((span["end"], -1))
    entries: List[dict] = []
    for name, steps in deltas.items():
        level = 0
        for ts, delta in sorted(steps):
            level += delta
            entries.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": 0,
                    "tid": tid,
                    "args": {"value": level},
                }
            )
    skips = sorted(
        event["cycle"]
        for event in events
        if event.get("name") in ("skipped", "cbo_skipped")
    )
    total = 0
    for ts in skips:
        total += 1
        entries.append(
            {
                "name": "skip_filtered_cleans",
                "ph": "C",
                "ts": ts,
                "pid": 0,
                "tid": tid,
                "args": {"value": total},
            }
        )
    return entries


def write_chrome_trace(path: str, events: Iterable = (), spans: Iterable = ()) -> int:
    """Write trace-event JSON; return the number of trace entries."""
    trace = chrome_trace(events, spans)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def validate_chrome_trace(trace: Dict[str, object]) -> List[str]:
    """Check *trace* against the trace-event schema; return problems found.

    An empty list means the trace validates: every entry carries the
    required keys, uses a phase this exporter emits, and duration events
    have non-negative integer timestamps/durations.
    """
    problems: List[str] = []
    entries = trace.get("traceEvents")
    if not isinstance(entries, list):
        return ["traceEvents missing or not a list"]
    for i, entry in enumerate(entries):
        for required in ("name", "ph", "pid", "tid"):
            if required not in entry:
                problems.append(f"entry {i} missing {required!r}")
        phase = entry.get("ph")
        if phase not in CHROME_PHASES:
            problems.append(f"entry {i} has unknown phase {phase!r}")
        if phase in ("X", "i", "C", "s", "f") and not isinstance(
            entry.get("ts"), int
        ):
            problems.append(f"entry {i} has non-integer ts")
        if phase == "X":
            duration = entry.get("dur")
            if not isinstance(duration, int) or duration < 0:
                problems.append(f"entry {i} has bad dur {duration!r}")
        if phase == "i" and entry.get("s") not in ("g", "p", "t"):
            problems.append(f"entry {i} instant scope {entry.get('s')!r}")
        if phase == "C":
            value = entry.get("args", {}).get("value")
            if not isinstance(value, int):
                problems.append(f"entry {i} counter value {value!r}")
        if phase in ("s", "f") and not isinstance(entry.get("id"), int):
            problems.append(f"entry {i} flow event missing id")
        if phase == "f" and entry.get("bp") != "e":
            problems.append(f"entry {i} flow end missing bp='e'")
    return problems


# -------------------------------------------------------------- summaries
def summarize(events: Iterable = (), spans: Iterable = ()) -> Dict[str, object]:
    """Aggregate a trace: event counts, span counts and latency stats."""
    events = _as_dicts(events)
    spans = _as_dicts(spans)
    event_counts: Dict[str, int] = {}
    for event in events:
        label = f"{event.get('category', '')}:{event.get('name', '')}"
        event_counts[label] = event_counts.get(label, 0) + 1
    span_stats: Dict[str, Dict[str, object]] = {}
    for span in spans:
        if span.get("end") is None:
            continue
        category = span.get("category", "")
        bucket = span_stats.setdefault(
            category, {"count": 0, "total_cycles": 0, "states": {}}
        )
        bucket["count"] += 1
        bucket["total_cycles"] += span["end"] - span["start"]
        for state, seg_start, seg_end in span.get("states", []):
            states: Dict[str, int] = bucket["states"]  # type: ignore[assignment]
            states[state] = states.get(state, 0) + (seg_end - seg_start)
    for bucket in span_stats.values():
        if bucket["count"]:
            bucket["mean_cycles"] = bucket["total_cycles"] / bucket["count"]
    first = min((e["cycle"] for e in events), default=None)
    last = max((e["cycle"] for e in events), default=None)
    return {
        "events": len(events),
        "spans": sum(b["count"] for b in span_stats.values()),
        "first_cycle": first,
        "last_cycle": last,
        "event_counts": dict(sorted(event_counts.items())),
        "span_stats": span_stats,
    }


def hottest_lines(
    events: Iterable = (), spans: Iterable = (), top: int = 10
) -> List[Dict[str, object]]:
    """Top-N cache lines by observed activity.

    Ranks line addresses by the number of spans touching them, breaking
    ties by total span cycles; TileLink events count as activity too.
    """
    by_line: Dict[int, Dict[str, int]] = {}

    def bucket(address: int) -> Dict[str, int]:
        return by_line.setdefault(
            address, {"spans": 0, "span_cycles": 0, "messages": 0}
        )

    for span in _as_dicts(spans):
        address = span.get("args", {}).get("address")
        if not isinstance(address, int):
            continue
        entry = bucket(address)
        entry["spans"] += 1
        if span.get("end") is not None:
            entry["span_cycles"] += span["end"] - span["start"]
    for event in _as_dicts(events):
        if event.get("category") != "tilelink":
            continue
        address = event.get("args", {}).get("address")
        if isinstance(address, int):
            bucket(address)["messages"] += 1
    ranked = sorted(
        by_line.items(),
        key=lambda kv: (kv[1]["spans"], kv[1]["span_cycles"], kv[1]["messages"]),
        reverse=True,
    )
    return [
        {"address": address, **counts} for address, counts in ranked[:top]
    ]
