"""Wiring: attach an event bus and a metrics registry to a simulator.

Every instrumented component carries an ``obs`` attribute that defaults
to ``None``; :func:`acquire_bus` flips them all to one shared
:class:`~repro.obs.events.EventBus` and :func:`release_bus` restores the
no-op state.  The bus is reference-counted so the high-level
:class:`Observability` facade and the thin
:class:`~repro.sim.trace.TraceRecorder` adapter can coexist on one SoC.

:class:`Observability` additionally builds the hierarchical
:class:`~repro.obs.registry.MetricsRegistry` over the SoC —
``soc.core0.l1.flush_unit.*`` counters, queue-occupancy / FSHR-in-use /
flush-counter gauges, and the bus's per-FSM-state latency histograms —
so ``Observability.attach(soc)`` is the one-liner that turns a run into
a metrics snapshot plus an exportable trace.

The fast timing model gets the same treatment at its own granularity:
:func:`timing_registry` adopts a :class:`~repro.timing.system.TimingSystem`'s
counters, :func:`attach_timing` wires its event hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.events import EventBus
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.timing.system import TimingSystem
    from repro.uarch.soc import Soc


def _soc_channels(soc: "Soc") -> Iterator:
    for link in soc.l2.links:
        yield from (link.a, link.b, link.c, link.d, link.e)
    yield from (soc.dram.chan_a, soc.dram.chan_c, soc.dram.chan_d)


def _observed_components(soc: "Soc") -> Iterator:
    yield soc.engine
    yield soc.l2
    for l1 in soc.l1s:
        yield l1
        yield l1.flush_unit
        yield l1.probe_unit
        yield l1.wbu
    for core in soc.cores:
        yield core
    yield from _soc_channels(soc)


def acquire_bus(soc: "Soc", max_events: Optional[int] = None) -> EventBus:
    """Wire one shared bus into *soc* (idempotent, reference-counted)."""
    bus = soc.engine.obs
    if bus is None:
        bus = EventBus(**({"max_events": max_events} if max_events is not None else {}))
        for component in _observed_components(soc):
            component.obs = bus
    bus.refs += 1
    return bus


def release_bus(soc: "Soc") -> None:
    """Drop one reference; fully unwire when the last holder releases."""
    bus = soc.engine.obs
    if bus is None:
        return
    bus.refs -= 1
    if bus.refs <= 0:
        for component in _observed_components(soc):
            component.obs = None
        # Drop span bookkeeping so a later re-attach starts clean instead
        # of transitioning keys that only existed on the released bus.
        soc.l2._obs_slots = []
        for l1 in soc.l1s:
            l1._obs_mshr_keys.clear()
            l1.probe_unit._obs_key = None


class Observability:
    """Bus + registry for one :class:`~repro.uarch.soc.Soc`.

    Usage::

        soc = Soc()
        obs = Observability.attach(soc)
        soc.run_programs([...])
        snapshot = obs.snapshot()          # one JSON-ready dict
        write_jsonl("run.jsonl", obs.bus)  # exportable trace
        obs.detach()                       # hooks become no-ops again
    """

    def __init__(self, soc: "Soc", max_events: Optional[int] = None) -> None:
        self.soc = soc
        self.bus = acquire_bus(soc, max_events=max_events)
        self.registry = soc_registry(soc, self.bus)
        self._attached = True

    @classmethod
    def attach(cls, soc: "Soc", max_events: Optional[int] = None) -> "Observability":
        return cls(soc, max_events=max_events)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def detach(self) -> None:
        if self._attached:
            release_bus(self.soc)
            self._attached = False


def soc_registry(soc: "Soc", bus: Optional[EventBus] = None) -> MetricsRegistry:
    """Build the full ``soc.*`` metrics tree over a (possibly running) SoC."""
    registry = MetricsRegistry()
    for i, (l1, core) in enumerate(zip(soc.l1s, soc.cores)):
        base = f"soc.core{i}"
        registry.register_counter(f"{base}.cpu", core.stats)
        registry.register_counter(f"{base}.l1", l1.stats)
        fu = l1.flush_unit
        registry.register_counter(f"{base}.l1.flush_unit", fu.stats)
        registry.register_gauge(
            f"{base}.l1.flush_unit.queue_occupancy", lambda fu=fu: len(fu.queue)
        )
        registry.register_gauge(
            f"{base}.l1.flush_unit.fshrs_busy",
            lambda fu=fu: sum(1 for f in fu.fshrs if f.busy),
        )
        registry.register_gauge(
            f"{base}.l1.flush_unit.flush_counter", lambda fu=fu: fu.flush_counter
        )
        registry.register_gauge(
            f"{base}.l1.mshrs_busy",
            lambda l1=l1: sum(1 for m in l1.mshrs if m.busy),
        )
        pu = l1.probe_unit
        registry.register_gauge(
            f"{base}.l1.probe_unit.probes_handled", lambda pu=pu: pu.probes_handled
        )
        registry.register_gauge(
            f"{base}.l1.probe_unit.stalled_cycles",
            lambda pu=pu: pu.probes_stalled_cycles,
        )
        registry.register_gauge(
            f"{base}.l1.wbu.evictions", lambda wbu=l1.wbu: wbu.evictions
        )
        registry.register_gauge(
            f"{base}.l1.wbu.busy", lambda wbu=l1.wbu: not wbu.wb_rdy
        )
        for name in "abcde":
            channel = getattr(l1, f"chan_{name}")
            registry.register_gauge(
                f"{base}.link.{name}_in_flight", lambda c=channel: len(c)
            )
    registry.register_counter("soc.l2", soc.l2.stats)
    registry.register_gauge(
        "soc.l2.mshrs_busy",
        lambda l2=soc.l2: sum(1 for m in l2.mshrs if m is not None),
    )
    registry.register_gauge(
        "soc.l2.list_buffer_occupancy", lambda l2=soc.l2: len(l2.list_buffer)
    )
    registry.register_gauge("soc.dram.busy", lambda dram=soc.dram: dram.busy)
    registry.register_gauge("soc.engine.cycle", lambda engine=soc.engine: engine.cycle)
    if bus is not None:
        registry.register_provider("obs.latency", bus.latency_summary)
        registry.register_gauge("obs.events_buffered", lambda b=bus: len(b.events))
        registry.register_gauge("obs.spans_completed", lambda b=bus: len(b.spans))
        registry.register_gauge("obs.spans_open", lambda b=bus: len(b.open_spans))
    return registry


# ------------------------------------------------------------ timing model
def timing_registry(system: "TimingSystem") -> MetricsRegistry:
    """Adopt a fast-timing-model system's counters and per-thread gauges."""
    registry = MetricsRegistry()
    registry.register_counter("timing.system", system.stats)
    for ctx in system.threads:
        base = f"timing.threads.t{ctx.tid}"
        registry.register_gauge(f"{base}.now", lambda c=ctx: c.now)
        registry.register_gauge(f"{base}.ops", lambda c=ctx: c.ops)
        registry.register_gauge(
            f"{base}.outstanding_writebacks", lambda c=ctx: len(c.outstanding)
        )
    return registry


def store_registry(store) -> MetricsRegistry:
    """Metrics tree for a :class:`~repro.store.store.DurableStore`.

    ``store.*`` counters (commits, fences, checkpoints, log traffic),
    the commit-batch-size histogram, and liveness gauges over the
    commit/log state — the group-commit amortization and checkpoint
    cadence read straight out of one snapshot.
    """
    registry = MetricsRegistry()
    registry.register_counter("store", store.stats)
    registry.register_histogram("store.commit_batch", store.batch_sizes)
    registry.register_gauge(
        "store.wal.records_appended", lambda s=store: s.wal.records_appended
    )
    registry.register_gauge(
        "store.wal.bytes_appended", lambda s=store: s.wal.bytes_appended
    )
    registry.register_gauge(
        "store.wal.next_lsn", lambda s=store: s.wal.next_lsn
    )
    registry.register_gauge("store.acked_lsn", lambda s=store: s.acked_lsn)
    registry.register_gauge("store.watermark", lambda s=store: s.watermark)
    registry.register_gauge(
        "store.pending_ops", lambda s=store: len(s.committer.pending)
    )
    registry.register_gauge(
        "store.memtable_size", lambda s=store: len(s.memtable)
    )
    registry.register_gauge(
        "store.flush_requests", lambda s=store: s.view.flush_requests
    )
    return registry


def shared_store_registry(store) -> MetricsRegistry:
    """Metrics tree for a :class:`~repro.store.shared.SharedLogStore`.

    Everything :func:`store_registry` exposes, plus the shared-log
    specifics: per-thread and aggregate **ack-latency histograms**
    (submit→durable cycles, the subsystem's headline metric — p50/p99
    in every snapshot), the leader tid, and tail-reservation traffic.
    """
    registry = MetricsRegistry()
    registry.register_counter("store", store.stats)
    registry.register_histogram("store.commit_batch", store.batch_sizes)
    registry.register_histogram("store.ack_latency", store.ack_latency_all)
    for tid, histogram in enumerate(store.ack_latency):
        registry.register_histogram(f"store.ack_latency.t{tid}", histogram)
    registry.register_gauge(
        "store.wal.records_appended", lambda s=store: s.wal.records_appended
    )
    registry.register_gauge(
        "store.wal.bytes_appended", lambda s=store: s.wal.bytes_appended
    )
    registry.register_gauge(
        "store.wal.next_lsn", lambda s=store: s.wal.next_lsn
    )
    registry.register_gauge(
        "store.wal.tail_cas_failures", lambda s=store: s.wal.tail_cas_failures
    )
    registry.register_gauge("store.acked_lsn", lambda s=store: s.acked_lsn)
    registry.register_gauge("store.watermark", lambda s=store: s.watermark)
    registry.register_gauge("store.leader_tid", lambda s=store: s.leader_tid)
    registry.register_gauge(
        "store.pending_ops", lambda s=store: len(s.sealer.pending)
    )
    registry.register_gauge(
        "store.memtable_size", lambda s=store: len(s.memtable)
    )
    registry.register_gauge(
        "store.flush_requests",
        lambda s=store: sum(v.flush_requests for v in s.views),
    )
    return registry


def serve_registry(tier) -> MetricsRegistry:
    """Metrics tree for a :class:`~repro.serve.tier.ServeTier`.

    ``serve.*`` counters (admitted / rejected / delayed / completed,
    snapshot reads and fallbacks, backpressure transitions), the
    **queue-wait** and **arrival→durable ack-latency** histograms that
    figure 19 reports, admission-state gauges and per-session LSN
    floors — the saturation story of one run in a single snapshot.
    """
    registry = MetricsRegistry()
    registry.register_counter("serve", tier.stats)
    registry.register_histogram("serve.queue_wait", tier.queue_wait)
    registry.register_histogram("serve.ack_latency", tier.ack_latency)
    registry.register_gauge(
        "serve.admission.engaged", lambda t=tier: int(t.admission.engaged)
    )
    registry.register_gauge(
        "serve.admission.admitted", lambda t=tier: t.admission.admitted
    )
    registry.register_gauge(
        "serve.admission.rejections", lambda t=tier: t.admission.rejections
    )
    registry.register_gauge(
        "serve.admission.engagements", lambda t=tier: t.admission.engagements
    )
    registry.register_gauge(
        "serve.admission.releases", lambda t=tier: t.admission.releases
    )
    registry.register_gauge("serve.max_depth", lambda t=tier: t.max_depth)
    registry.register_gauge("serve.inflight", lambda t=tier: t.inflight)
    registry.register_gauge(
        "serve.sessions", lambda t=tier: len(t.sessions)
    )
    for sid, session in sorted(tier.sessions.items()):
        registry.register_gauge(
            f"serve.session.s{sid}.lsn_floor", lambda s=session: s.lsn_floor
        )
        registry.register_gauge(
            f"serve.session.s{sid}.writes", lambda s=session: s.writes
        )
        registry.register_gauge(
            f"serve.session.s{sid}.snapshot_reads",
            lambda s=session: s.snapshot_reads,
        )
    return registry


def attach_timing(
    system: "TimingSystem", bus: Optional[EventBus] = None
) -> EventBus:
    """Wire event hooks of the fast timing model; returns the bus."""
    if bus is None:
        bus = EventBus()
    system.obs = bus
    return bus


def detach_timing(system: "TimingSystem") -> None:
    system.obs = None
