"""Full-map directory entry for the inclusive L2 (§3.4).

The SiFive inclusive cache stores, with each line's metadata, a full map of
directory bits naming the L1 agents that hold a copy, plus whether one of
them may hold it writable (TRUNK).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.tilelink.permissions import Perm


@dataclass
class DirectoryEntry:
    """Tracks which clients hold a line and at what maximum permission."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # client holding TRUNK, if any

    def grant(self, client: int, perm: Perm) -> None:
        """Record a Grant of *perm* to *client*."""
        if perm is Perm.NONE:
            raise ValueError("cannot grant NONE")
        if perm is Perm.TRUNK:
            if self.sharers - {client}:
                raise ValueError(
                    "granting TRUNK while other sharers exist violates "
                    "single-writer"
                )
            self.owner = client
        self.sharers.add(client)

    def downgrade(self, client: int, to: Perm) -> None:
        """Record that *client* now holds at most *to*."""
        if to is Perm.NONE:
            self.sharers.discard(client)
            if self.owner == client:
                self.owner = None
        elif to is Perm.BRANCH:
            if self.owner == client:
                self.owner = None
        else:  # TRUNK: no-op report
            pass

    def holds(self, client: int) -> bool:
        return client in self.sharers

    def perm_of(self, client: int) -> Perm:
        if client == self.owner:
            return Perm.TRUNK
        if client in self.sharers:
            return Perm.BRANCH
        return Perm.NONE

    @property
    def idle(self) -> bool:
        """No client holds the line."""
        return not self.sharers

    def copy(self) -> "DirectoryEntry":
        return DirectoryEntry(sharers=set(self.sharers), owner=self.owner)
