"""Coherence bookkeeping shared by the L1 and L2 models.

TileLink expresses coherence through the permission lattice
(:mod:`repro.tilelink.permissions`); the familiar MESI names (§2.2) map
onto (permission, dirty) pairs.  The L2's full-map directory (§3.4) lives
here too.
"""

from repro.coherence.mesi import MesiState, mesi_state
from repro.coherence.directory import DirectoryEntry

__all__ = ["MesiState", "mesi_state", "DirectoryEntry"]
