"""MESI naming over TileLink permissions.

MESI (§2.2, [55]) and TileLink's permission lattice describe the same
protocol from different angles:

=========  ==============  ======
MESI       TileLink perm   dirty
=========  ==============  ======
Modified   TRUNK           yes
Exclusive  TRUNK           no
Shared     BRANCH          no
Invalid    NONE            --
=========  ==============  ======

The helpers here are used by tests and invariant checkers that want to
speak MESI while the datapath speaks permissions.
"""

from __future__ import annotations

import enum

from repro.tilelink.permissions import Perm


class MesiState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


def mesi_state(perm: Perm, dirty: bool) -> MesiState:
    """Classify a (permission, dirty) pair as a MESI state."""
    if perm is Perm.NONE:
        return MesiState.INVALID
    if perm is Perm.BRANCH:
        if dirty:
            raise ValueError("a BRANCH (shared) line can never be dirty")
        return MesiState.SHARED
    return MesiState.MODIFIED if dirty else MesiState.EXCLUSIVE
