"""Shared-log store figure (18): threads x optimizer, one fence per epoch.

Not a paper figure — the companion to figure 17 for the
:mod:`repro.store.shared` subsystem.  Where figure 17 scales the store
by sharding (every thread pays its own fence per batch), this sweep
shares the log: a leader seals epochs of ``group_commit`` ops *per
thread* with a single clean sequence and a single fence, so fences/op
shrinks with the thread count while each op's durability waits on a
cross-thread ack — the p50/p99 ack-latency columns are the cost side of
that trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.workloads.store import SharedStoreBenchmark

#: epoch trigger per thread (matches figure 17's middle group-commit)
DEFAULT_GROUP_COMMIT = 8
ALL_THREADS = (1, 2, 4, 8)


def sweep_axes(figure: int, quick: bool) -> Dict[str, list]:
    """Default sweep axes of the shared-store figure (runner-shared)."""
    if figure == 18:
        return {
            "optimizers": list(OPTIMIZER_NAMES),
            "threads": [1, 2, 4] if quick else list(ALL_THREADS),
        }
    raise KeyError(f"figure {figure} is not a shared-store figure")


@dataclass
class SharedStoreRow:
    """One cell of the threads x optimizer grid."""

    figure: int
    optimizer: str
    group_commit: int
    threads: int
    throughput_mops: float
    fences: int = 0
    fences_per_kop: float = 0.0
    ack_p50: float = 0.0
    ack_p99: float = 0.0
    cbo_issued: int = 0
    cbo_skipped: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    commits: int = 0
    checkpoints: int = 0
    leader_takeovers: int = 0
    mean_batch: float = 0.0
    flush_requests: int = 0
    #: acks clamped to zero in the latency histograms (cross-thread
    #: virtual-clock skew); nonzero means p50/p99 understate latency
    ack_clamped: int = 0
    #: ``timing.*`` + ``store.shared.*`` metrics snapshot from the run
    metrics: Optional[Dict[str, object]] = None


def run_fig18(
    quick: bool = False,
    optimizers: Optional[Sequence[str]] = None,
    threads: Optional[Sequence[int]] = None,
    group_commit: int = DEFAULT_GROUP_COMMIT,
    duration: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[SharedStoreRow]:
    """Figure 18: shared-log store scaling vs thread count."""
    axes = sweep_axes(18, quick)
    optimizers = (
        list(optimizers) if optimizers is not None else axes["optimizers"]
    )
    threads = list(threads) if threads is not None else axes["threads"]
    duration = duration or (30_000 if quick else 150_000)
    rows: List[SharedStoreRow] = []
    for optimizer in optimizers:
        for num_threads in threads:
            extra = {} if seed is None else {"seed": seed}
            bench = SharedStoreBenchmark(
                optimizer, group_commit, threads=num_threads, **extra
            )
            result = bench.run(duration=duration)
            rows.append(
                SharedStoreRow(
                    figure=18,
                    optimizer=optimizer,
                    group_commit=group_commit,
                    threads=num_threads,
                    throughput_mops=result.throughput_mops,
                    fences=result.fences,
                    fences_per_kop=result.fences_per_kop,
                    ack_p50=result.ack_p50,
                    ack_p99=result.ack_p99,
                    cbo_issued=result.cbo_issued,
                    cbo_skipped=result.cbo_skipped,
                    wal_records=result.wal_records,
                    wal_bytes=result.wal_bytes,
                    commits=result.commits,
                    checkpoints=result.checkpoints,
                    leader_takeovers=result.leader_takeovers,
                    mean_batch=result.mean_batch,
                    flush_requests=result.flush_requests,
                    ack_clamped=result.ack_clamped,
                    metrics=result.metrics,
                )
            )
    return rows
