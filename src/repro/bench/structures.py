"""Data-structure throughput figures (14-16), on the timing model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.persist.policies import POLICY_NAMES
from repro.persist.structures import STRUCTURES
from repro.workloads.datastructs import DataStructureBenchmark, DataStructureResult

ALL_STRUCTURES = tuple(STRUCTURES)
ALL_POLICIES = ("automatic", "nvtraverse", "manual")


@dataclass
class ThroughputRow:
    """One cell of a Figure 14/15/16 grid."""

    figure: int
    structure: str
    policy: str
    optimizer: str
    update_percent: int
    throughput_mops: Optional[float]  # None when the combo is inapplicable
    flush_requests: int = 0
    cbo_issued: int = 0
    cbo_skipped: int = 0
    #: ``timing.*`` metrics snapshot from the run (None when inapplicable)
    metrics: Optional[Dict[str, object]] = None


def _run_cell(
    figure: int,
    structure: str,
    policy: str,
    optimizer: str,
    update_percent: int,
    threads: int,
    duration: int,
    key_range: Optional[int] = None,
    flit_table_entries: int = 1024,
) -> ThroughputRow:
    bench = DataStructureBenchmark(
        structure=structure,
        policy=policy,
        optimizer=optimizer,
        update_percent=update_percent,
        threads=threads,
        key_range=key_range,
        flit_table_entries=flit_table_entries,
    )
    if not bench.applicable:
        return ThroughputRow(
            figure, structure, policy, optimizer, update_percent, None
        )
    result = bench.run(duration=duration)
    return ThroughputRow(
        figure=figure,
        structure=structure,
        policy=policy,
        optimizer=optimizer,
        update_percent=update_percent,
        throughput_mops=result.throughput_mops,
        flush_requests=result.flush_requests,
        cbo_issued=result.cbo_issued,
        cbo_skipped=result.cbo_skipped,
        metrics=result.metrics,
    )


def run_fig14(
    quick: bool = False,
    structures: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    optimizers: Optional[Sequence[str]] = None,
    update_percent: int = 5,
    threads: int = 2,
    duration: Optional[int] = None,
) -> List[ThroughputRow]:
    """Figure 14: throughput grid at 5% updates, 2 threads.

    Also emits the non-persistent baseline (policy='none') the paper draws
    as the dark dotted line.
    """
    structures = list(structures or (("list", "hashtable") if quick else ALL_STRUCTURES))
    policies = list(policies or (("automatic",) if quick else ALL_POLICIES))
    optimizers = list(optimizers or OPTIMIZER_NAMES)
    duration = duration or (60_000 if quick else 300_000)
    rows: List[ThroughputRow] = []
    for structure in structures:
        rows.append(
            _run_cell(
                14, structure, "none", "plain", update_percent, threads, duration
            )
        )
        for policy in policies:
            for optimizer in optimizers:
                rows.append(
                    _run_cell(
                        14,
                        structure,
                        policy,
                        optimizer,
                        update_percent,
                        threads,
                        duration,
                    )
                )
    return rows


def run_fig15(
    quick: bool = False,
    structures: Optional[Sequence[str]] = None,
    optimizers: Optional[Sequence[str]] = None,
    update_percents: Optional[Sequence[int]] = None,
    policy: str = "automatic",
    threads: int = 2,
    duration: Optional[int] = None,
) -> List[ThroughputRow]:
    """Figure 15: throughput vs update percentage (automatic persistence)."""
    structures = list(structures or (("list",) if quick else ALL_STRUCTURES))
    optimizers = list(optimizers or OPTIMIZER_NAMES)
    update_percents = list(update_percents or ((0, 50) if quick else (0, 5, 20, 50, 100)))
    duration = duration or (60_000 if quick else 250_000)
    rows: List[ThroughputRow] = []
    for structure in structures:
        for optimizer in optimizers:
            for update in update_percents:
                rows.append(
                    _run_cell(15, structure, policy, optimizer, update, threads, duration)
                )
    return rows


def run_fig16(
    quick: bool = False,
    table_sizes: Optional[Sequence[int]] = None,
    policy: str = "automatic",
    update_percent: int = 5,
    threads: int = 2,
    duration: Optional[int] = None,
    key_range: int = 10_000,
) -> List[ThroughputRow]:
    """Figure 16: BST (10k keys) sensitivity to the FliT hash-table size."""
    table_sizes = list(
        table_sizes or ((256, 4096) if quick else (256, 1024, 4096, 16_384, 65_536))
    )
    duration = duration or (60_000 if quick else 250_000)
    rows: List[ThroughputRow] = []
    for entries in table_sizes:
        row = _run_cell(
            16,
            "bst",
            policy,
            "flit-hashtable",
            update_percent,
            threads,
            duration,
            key_range=key_range,
            flit_table_entries=entries,
        )
        row.optimizer = f"flit-hashtable({entries})"
        rows.append(row)
    # Skip It reference line: unaffected by any table size
    rows.append(
        _run_cell(
            16, "bst", policy, "skipit", update_percent, threads, duration,
            key_range=key_range,
        )
    )
    return rows


def rows_by_structure(rows: Sequence[ThroughputRow]) -> Dict[str, List[ThroughputRow]]:
    grouped: Dict[str, List[ThroughputRow]] = {}
    for row in rows:
        grouped.setdefault(row.structure, []).append(row)
    return grouped
