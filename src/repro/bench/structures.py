"""Data-structure throughput figures (14-16), on the timing model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.persist.policies import POLICY_NAMES
from repro.persist.structures import STRUCTURES
from repro.workloads.datastructs import DataStructureBenchmark, DataStructureResult

ALL_STRUCTURES = tuple(STRUCTURES)
ALL_POLICIES = ("automatic", "nvtraverse", "manual")


def sweep_axes(figure: int, quick: bool) -> Dict[str, list]:
    """Default sweep axes of a throughput figure.

    Single source of truth shared by the ``run_figNN`` defaults and the
    parallel runner's point decomposition (:mod:`repro.bench.runner`).
    """
    if figure == 14:
        return {
            "structures": ["list", "hashtable"] if quick else list(ALL_STRUCTURES),
            "policies": ["automatic"] if quick else list(ALL_POLICIES),
            "optimizers": list(OPTIMIZER_NAMES),
        }
    if figure == 15:
        return {
            "structures": ["list"] if quick else list(ALL_STRUCTURES),
            "optimizers": list(OPTIMIZER_NAMES),
            "update_percents": [0, 50] if quick else [0, 5, 20, 50, 100],
        }
    if figure == 16:
        return {
            "table_sizes": [256, 4096] if quick else [256, 1024, 4096, 16_384, 65_536],
        }
    raise KeyError(f"figure {figure} is not a throughput figure")


@dataclass
class ThroughputRow:
    """One cell of a Figure 14/15/16 grid."""

    figure: int
    structure: str
    policy: str
    optimizer: str
    update_percent: int
    throughput_mops: Optional[float]  # None when the combo is inapplicable
    flush_requests: int = 0
    cbo_issued: int = 0
    cbo_skipped: int = 0
    #: ``timing.*`` metrics snapshot from the run (None when inapplicable)
    metrics: Optional[Dict[str, object]] = None


def _run_cell(
    figure: int,
    structure: str,
    policy: str,
    optimizer: str,
    update_percent: int,
    threads: int,
    duration: int,
    key_range: Optional[int] = None,
    flit_table_entries: int = 1024,
    seed: Optional[int] = None,
) -> ThroughputRow:
    extra = {} if seed is None else {"seed": seed}
    bench = DataStructureBenchmark(
        structure=structure,
        policy=policy,
        optimizer=optimizer,
        update_percent=update_percent,
        threads=threads,
        key_range=key_range,
        flit_table_entries=flit_table_entries,
        **extra,
    )
    if not bench.applicable:
        return ThroughputRow(
            figure, structure, policy, optimizer, update_percent, None
        )
    result = bench.run(duration=duration)
    return ThroughputRow(
        figure=figure,
        structure=structure,
        policy=policy,
        optimizer=optimizer,
        update_percent=update_percent,
        throughput_mops=result.throughput_mops,
        flush_requests=result.flush_requests,
        cbo_issued=result.cbo_issued,
        cbo_skipped=result.cbo_skipped,
        metrics=result.metrics,
    )


def run_fig14(
    quick: bool = False,
    structures: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    optimizers: Optional[Sequence[str]] = None,
    update_percent: int = 5,
    threads: int = 2,
    duration: Optional[int] = None,
    include_baseline: bool = True,
    seed: Optional[int] = None,
) -> List[ThroughputRow]:
    """Figure 14: throughput grid at 5% updates, 2 threads.

    Also emits the non-persistent baseline (policy='none') the paper draws
    as the dark dotted line (*include_baseline*; pass ``policies=[]`` with
    it to get the baseline rows alone).
    """
    axes = sweep_axes(14, quick)
    structures = list(structures) if structures is not None else axes["structures"]
    policies = list(policies) if policies is not None else axes["policies"]
    optimizers = list(optimizers) if optimizers is not None else axes["optimizers"]
    duration = duration or (60_000 if quick else 300_000)
    rows: List[ThroughputRow] = []
    for structure in structures:
        if include_baseline:
            rows.append(
                _run_cell(
                    14,
                    structure,
                    "none",
                    "plain",
                    update_percent,
                    threads,
                    duration,
                    seed=seed,
                )
            )
        for policy in policies:
            for optimizer in optimizers:
                rows.append(
                    _run_cell(
                        14,
                        structure,
                        policy,
                        optimizer,
                        update_percent,
                        threads,
                        duration,
                        seed=seed,
                    )
                )
    return rows


def run_fig15(
    quick: bool = False,
    structures: Optional[Sequence[str]] = None,
    optimizers: Optional[Sequence[str]] = None,
    update_percents: Optional[Sequence[int]] = None,
    policy: str = "automatic",
    threads: int = 2,
    duration: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[ThroughputRow]:
    """Figure 15: throughput vs update percentage (automatic persistence)."""
    axes = sweep_axes(15, quick)
    structures = list(structures) if structures is not None else axes["structures"]
    optimizers = list(optimizers) if optimizers is not None else axes["optimizers"]
    update_percents = (
        list(update_percents)
        if update_percents is not None
        else axes["update_percents"]
    )
    duration = duration or (60_000 if quick else 250_000)
    rows: List[ThroughputRow] = []
    for structure in structures:
        for optimizer in optimizers:
            for update in update_percents:
                rows.append(
                    _run_cell(
                        15,
                        structure,
                        policy,
                        optimizer,
                        update,
                        threads,
                        duration,
                        seed=seed,
                    )
                )
    return rows


def run_fig16(
    quick: bool = False,
    table_sizes: Optional[Sequence[int]] = None,
    policy: str = "automatic",
    update_percent: int = 5,
    threads: int = 2,
    duration: Optional[int] = None,
    key_range: int = 10_000,
    include_reference: bool = True,
    seed: Optional[int] = None,
) -> List[ThroughputRow]:
    """Figure 16: BST (10k keys) sensitivity to the FliT hash-table size."""
    table_sizes = (
        list(table_sizes)
        if table_sizes is not None
        else sweep_axes(16, quick)["table_sizes"]
    )
    duration = duration or (60_000 if quick else 250_000)
    rows: List[ThroughputRow] = []
    for entries in table_sizes:
        row = _run_cell(
            16,
            "bst",
            policy,
            "flit-hashtable",
            update_percent,
            threads,
            duration,
            key_range=key_range,
            flit_table_entries=entries,
            seed=seed,
        )
        row.optimizer = f"flit-hashtable({entries})"
        rows.append(row)
    if include_reference:
        # Skip It reference line: unaffected by any table size
        rows.append(
            _run_cell(
                16, "bst", policy, "skipit", update_percent, threads, duration,
                key_range=key_range, seed=seed,
            )
        )
    return rows


def rows_by_structure(rows: Sequence[ThroughputRow]) -> Dict[str, List[ThroughputRow]]:
    grouped: Dict[str, List[ThroughputRow]] = {}
    for row in rows:
        grouped.setdefault(row.structure, []).append(row)
    return grouped
