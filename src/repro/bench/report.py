"""Markdown report generation: figure runs -> EXPERIMENTS-style tables.

``build_report`` executes any subset of the figure runners and renders
their rows as a Markdown document; the CLI exposes it through
``python -m repro.bench --report out.md``.  Handy for re-validating the
numbers EXPERIMENTS.md quotes after changing model parameters.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.bench import FIGURE_KINDS, FIGURES
from repro.bench.format import human_size
from repro.bench.micro import MicroRow
from repro.bench.range import RangeRow
from repro.bench.serve import ServeRow
from repro.bench.shared import SharedStoreRow
from repro.bench.store import StoreRow
from repro.bench.structures import ThroughputRow
from repro.bench.txn import TxnRow

_FIGURE_TITLES = {
    9: "CBO.X latency vs writeback size and threads (§7.2)",
    10: "write / 10x CBO.X / fence / re-read (§7.2)",
    11: "single-thread writeback latency across architectures (§7.3)",
    12: "eight-thread writeback latency across architectures (§7.3)",
    13: "redundant writebacks: naive vs Skip It (§7.4)",
    14: "persistent-set throughput, 5% updates (§7.4)",
    15: "throughput vs update percentage (§7.4)",
    16: "BST vs FliT hash-table size (§7.4)",
    17: "durable store: throughput vs group-commit x optimizer (repro.store)",
    18: "shared-log store: fences/op and ack latency vs threads "
    "(repro.store.shared)",
    19: "serving tier: p99 ack latency vs offered load saturation curves "
    "(repro.serve)",
    20: "transactions: fences per committed txn vs write-set size "
    "(repro.store.txn)",
    21: "CBO.RANGE: loop-of-CBOs vs one ranged flush, micro + store "
    "workloads (repro.bench.range)",
}


def _markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = []
        for cell in row:
            if cell is None:
                cells.append("n/a")
            elif isinstance(cell, float):
                cells.append(f"{cell:.3f}")
            else:
                cells.append(str(cell))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _render_micro(rows: List[MicroRow]) -> str:
    return _markdown_table(
        ["series", "size", "threads", "median cycles", "sigma"],
        [
            (
                r.series,
                human_size(r.size_bytes),
                r.threads,
                r.median_cycles,
                r.stdev_cycles,
            )
            for r in rows
        ],
    )


def _render_store(rows: List[StoreRow]) -> str:
    return _markdown_table(
        [
            "optimizer",
            "gc",
            "Mops/s",
            "fences",
            "cbo issued",
            "cbo skipped",
            "wal recs",
            "mean batch",
        ],
        [
            (
                r.optimizer,
                r.group_commit,
                r.throughput_mops,
                r.fences,
                r.cbo_issued,
                r.cbo_skipped,
                r.wal_records,
                r.mean_batch,
            )
            for r in rows
        ],
    )


def _render_shared(rows: List[SharedStoreRow]) -> str:
    table = _markdown_table(
        [
            "optimizer",
            "threads",
            "gc",
            "Mops/s",
            "fences/kop",
            "ack p50",
            "ack p99",
            "clamped",
            "takeovers",
            "mean batch",
        ],
        [
            (
                r.optimizer,
                r.threads,
                r.group_commit,
                r.throughput_mops,
                r.fences_per_kop,
                r.ack_p50,
                r.ack_p99,
                r.ack_clamped,
                r.leader_takeovers,
                r.mean_batch,
            )
            for r in rows
        ],
    )
    clamped = sum(r.ack_clamped for r in rows)
    if clamped:
        table += (
            f"\n\n**Warning:** {clamped} ack latencies were clamped to "
            "zero (`store_ack_latency_clamped`): cross-thread "
            "virtual-clock skew made the raw submit→durable delta "
            "negative, so the p50/p99 columns understate those ops' "
            "latency."
        )
    return table


def _render_serve(rows: List[ServeRow]) -> str:
    table = _markdown_table(
        [
            "optimizer",
            "load",
            "generated",
            "completed",
            "shed",
            "goodput Mops/s",
            "ack p50",
            "ack p99",
            "queue p99",
            "backpressure",
            "snapshot reads",
        ],
        [
            (
                r.optimizer,
                r.offered_load,
                r.generated,
                r.completed,
                r.shed,
                r.throughput_mops,
                r.ack_p50,
                r.ack_p99,
                r.queue_p99,
                r.backpressure_engagements,
                r.snapshot_reads,
            )
            for r in rows
        ],
    )
    clamped = sum(r.ack_clamped for r in rows)
    if clamped:
        table += (
            f"\n\n**Warning:** {clamped} ack latencies were clamped to "
            "zero (`serve_ack_latency_clamped`): cross-thread "
            "virtual-clock skew made the raw arrival→durable delta "
            "negative, so the p50/p99 columns understate those "
            "requests' latency."
        )
    return table


def _render_txn(rows: List[TxnRow]) -> str:
    table = _markdown_table(
        [
            "optimizer",
            "txn size",
            "gc",
            "committed",
            "aborted",
            "Mtxn/s",
            "fences/txn",
            "ack p50",
            "ack p99",
            "abort p50",
            "abort p99",
        ],
        [
            (
                r.optimizer,
                r.txn_size,
                r.group_commit,
                r.committed,
                r.aborted,
                r.throughput_mtps,
                r.fences_per_txn,
                r.ack_p50,
                r.ack_p99,
                r.abort_p50,
                r.abort_p99,
            )
            for r in rows
        ],
    )
    clamped = sum(r.ack_clamped for r in rows)
    if clamped:
        table += (
            f"\n\n**Warning:** {clamped} ack latencies were clamped to "
            "zero (`store_ack_latency_clamped`): cross-thread "
            "virtual-clock skew made the raw submit→durable delta "
            "negative, so the p50/p99 columns understate those "
            "transactions' latency."
        )
    return table


def _render_range(rows: List[RangeRow]) -> str:
    return _markdown_table(
        [
            "series",
            "mode",
            "optimizer",
            "size",
            "sweep cyc",
            "resweep cyc",
            "Mops/s",
            "fences",
            "flush reqs",
            "cbo",
            "cbo.range",
            "fences/kop",
        ],
        [
            (
                r.series,
                r.mode,
                r.optimizer or "-",
                human_size(r.size_bytes) if r.size_bytes else "-",
                r.sweep_cycles,
                r.resweep_cycles,
                r.throughput_mops,
                r.fences,
                r.flush_requests,
                r.cbo_issued,
                r.cbo_range_issued,
                r.fences_per_kop,
            )
            for r in rows
        ],
    )


def _render_throughput(rows: List[ThroughputRow]) -> str:
    return _markdown_table(
        ["structure", "policy", "optimizer", "upd%", "Mops/s", "cbo issued", "cbo skipped"],
        [
            (
                r.structure,
                r.policy,
                r.optimizer,
                r.update_percent,
                r.throughput_mops,
                r.cbo_issued,
                r.cbo_skipped,
            )
            for r in rows
        ],
    )


#: timing.system counters worth surfacing in the per-figure summary
_METRIC_KEYS = (
    "cbo_issued",
    "cbo_skipped",
    "cbo_dram",
    "cbo_l2_clean",
    "fences",
    "l1_hits",
    "l1_misses",
)


def _render_metrics_summary(rows: List[ThroughputRow]) -> str:
    """Aggregate the rows' metrics snapshots (``timing.system.*``).

    Each row carries the hierarchical registry snapshot its run produced;
    the report surfaces the writeback-related counters so a reader can
    check e.g. the Figure-13-style skip ratio without re-running.
    """
    totals: dict = {}
    sampled = 0
    for row in rows:
        if not row.metrics:
            continue
        system = row.metrics.get("timing", {}).get("system", {})
        if not isinstance(system, dict):
            continue
        sampled += 1
        for key in _METRIC_KEYS:
            totals[key] = totals.get(key, 0) + int(system.get(key, 0))
    if not sampled:
        return ""
    issued = totals.get("cbo_issued", 0)
    skipped = totals.get("cbo_skipped", 0)
    ratio = skipped / (issued + skipped) if issued + skipped else 0.0
    table = _markdown_table(
        ["metric", "total"], [(k, totals.get(k, 0)) for k in _METRIC_KEYS]
    )
    return (
        f"\nMetrics snapshots aggregated over {sampled} runs "
        f"(skip ratio {ratio:.1%}):\n\n{table}"
    )


def build_report(
    figures: Optional[Sequence[int]] = None, quick: bool = True, jobs: int = 1
) -> str:
    """Run the requested figures and return a Markdown report.

    Routes through :func:`repro.bench.runner.run_figures` so the numbers
    match the ``--json`` baselines exactly and *jobs* can parallelise
    the regeneration.
    """
    from repro.bench.runner import run_figures

    figures = sorted(set(figures)) if figures else sorted(FIGURES)
    runs = run_figures(figures, quick=quick, jobs=jobs)
    sections = [
        "# Measured figure reproductions",
        "",
        f"Mode: {'quick (reduced sweeps)' if quick else 'full size'}.",
    ]
    for fig in figures:
        rows = runs[fig].rows
        title = _FIGURE_TITLES.get(fig, "")
        sections.append(f"\n## Figure {fig} — {title}\n")
        kind = FIGURE_KINDS[fig]
        sections.append(_RENDERERS[kind](rows))
        if kind != "micro":
            summary = _render_metrics_summary(rows)
            if summary:
                sections.append(summary)
    return "\n".join(sections) + "\n"


#: row-kind tag -> renderer (same explicit-tag dispatch as the CLI)
_RENDERERS = {
    "micro": _render_micro,
    "throughput": _render_throughput,
    "store": _render_store,
    "shared": _render_shared,
    "serve": _render_serve,
    "txn": _render_txn,
    "range": _render_range,
}
