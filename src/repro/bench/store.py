"""Durable-store figure (17): throughput vs group-commit x optimizer.

Not a paper figure — the paper stops at single data structures (§7.4).
This sweep applies the same methodology to the :mod:`repro.store`
subsystem: a write-ahead-logged KV store whose hot log-tail lines are
cleaned once per group-commit epoch.  Plain pays a CBO per requested
clean; Skip It drops the redundant ones in hardware, and the gap widens
as batching packs more records per line rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.workloads.store import StoreBenchmark

ALL_GROUP_COMMITS = (1, 2, 8, 16, 64)


def sweep_axes(figure: int, quick: bool) -> Dict[str, list]:
    """Default sweep axes of the store figure (runner-shared)."""
    if figure == 17:
        return {
            "optimizers": list(OPTIMIZER_NAMES),
            "group_commits": [1, 8, 64] if quick else list(ALL_GROUP_COMMITS),
        }
    raise KeyError(f"figure {figure} is not a store figure")


@dataclass
class StoreRow:
    """One cell of the group-commit x optimizer grid."""

    figure: int
    optimizer: str
    group_commit: int
    threads: int
    throughput_mops: float
    fences: int = 0
    cbo_issued: int = 0
    cbo_skipped: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    commits: int = 0
    checkpoints: int = 0
    mean_batch: float = 0.0
    flush_requests: int = 0
    #: ``timing.*`` + ``store.*`` metrics snapshot from the run
    metrics: Optional[Dict[str, object]] = None


def run_fig17(
    quick: bool = False,
    optimizers: Optional[Sequence[str]] = None,
    group_commits: Optional[Sequence[int]] = None,
    threads: int = 2,
    duration: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[StoreRow]:
    """Figure 17: durable-store throughput vs group-commit size."""
    axes = sweep_axes(17, quick)
    optimizers = (
        list(optimizers) if optimizers is not None else axes["optimizers"]
    )
    group_commits = (
        list(group_commits)
        if group_commits is not None
        else axes["group_commits"]
    )
    duration = duration or (40_000 if quick else 200_000)
    rows: List[StoreRow] = []
    for optimizer in optimizers:
        for group_commit in group_commits:
            extra = {} if seed is None else {"seed": seed}
            bench = StoreBenchmark(
                optimizer, group_commit, threads=threads, **extra
            )
            result = bench.run(duration=duration)
            rows.append(
                StoreRow(
                    figure=17,
                    optimizer=optimizer,
                    group_commit=group_commit,
                    threads=threads,
                    throughput_mops=result.throughput_mops,
                    fences=result.fences,
                    cbo_issued=result.cbo_issued,
                    cbo_skipped=result.cbo_skipped,
                    wal_records=result.wal_records,
                    wal_bytes=result.wal_bytes,
                    commits=result.commits,
                    checkpoints=result.checkpoints,
                    mean_batch=result.mean_batch,
                    flush_requests=result.flush_requests,
                    metrics=result.metrics,
                )
            )
    return rows
