"""Perf-regression tracking: a fresh run vs the committed baseline.

``python -m repro.bench --check`` answers "did the numbers move at
all"; this module answers the sharper question "did they move in the
*bad* direction".  Every compared field carries a direction — higher
throughput is better, lower ack latency is better, fence counts lower
is better, raw workload-volume counters are neutral — and a delta
beyond the tolerance band is classified accordingly:

``regression``
    moved in the harmful direction (turns the check red);
``drift``
    a neutral field moved, so the runs are not comparable —
    also red, because a green light must mean "same work, same speed";
``improvement``
    moved in the helpful direction — reported, never red.

``python -m repro.bench.regress --baseline baselines/quick.json``
re-runs exactly the figures the baseline holds (in the baseline's own
quick/full mode, with the runner's deterministic per-point seeds) and
exits non-zero on regressions, which is what CI wires in.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bench import baseline as baseline_mod
from repro.bench.baseline import KIND_VALUE_FIELDS, _row_key, row_kind

#: default band: same as --check, deliberately tight — the sims are
#: deterministic, so any delta at all is a code change speaking
DEFAULT_REL_TOL = baseline_mod.DEFAULT_REL_TOL

#: tolerance for the sim-speed selftest: wall-clock on a shared host is
#: noisy, so only a large drop (the kind a hot-path regression causes)
#: should turn the check red
SELFTEST_REL_TOL = 0.5

#: which way each compared field should move; unknown fields are neutral
FIELD_DIRECTION: Dict[str, str] = {
    "throughput_mops": "higher",
    "throughput_mtps": "higher",
    "engine_cycles_per_sec": "higher",
    "median_cycles": "lower",
    "stdev_cycles": "neutral",
    "fences": "lower",
    "fences_per_kop": "lower",
    "fences_per_txn": "lower",
    "ack_p50": "lower",
    "ack_p99": "lower",
    "abort_p50": "lower",
    "abort_p99": "lower",
    "queue_p50": "lower",
    "queue_p99": "lower",
    "completed": "higher",
    "committed": "higher",
    "aborted": "neutral",
    "shed": "lower",
    "generated": "neutral",
    "served": "neutral",
    "snapshot_reads": "neutral",
    "snapshot_fallbacks": "lower",
    "flush_requests": "lower",
    "cbo_issued": "lower",
    "cbo_skipped": "neutral",
    "wal_records": "neutral",
    "commits": "neutral",
    "sweep_cycles": "lower",
    "resweep_cycles": "lower",
    "ranged_seals": "neutral",
    "cbo_range_issued": "lower",
    "cbo_range_lines": "neutral",
    "cbo_range_skipped": "neutral",
}


@dataclass
class FieldDelta:
    """One compared field that left the tolerance band."""

    figure: int
    row: str
    field: str
    baseline: float
    current: float
    rel_delta: float  # signed, relative to the baseline value
    kind: str  # "regression" | "improvement" | "drift"


@dataclass
class RegressReport:
    """Outcome of one baseline comparison."""

    baseline_path: str
    rel_tol: float
    figures: List[int] = field(default_factory=list)
    rows_compared: int = 0
    deltas: List[FieldDelta] = field(default_factory=list)
    #: structural problems (missing rows, schema mismatch); always red
    problems: List[str] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[FieldDelta]:
        return [d for d in self.deltas if d.kind == kind]

    @property
    def passed(self) -> bool:
        return not (
            self.problems or self.of_kind("regression") or self.of_kind("drift")
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline_path,
            "rel_tol": self.rel_tol,
            "figures": self.figures,
            "rows_compared": self.rows_compared,
            "passed": self.passed,
            "problems": list(self.problems),
            "deltas": [asdict(d) for d in self.deltas],
        }

    def format(self) -> str:
        lines = [
            f"regression check vs {self.baseline_path} "
            f"(figs {', '.join(map(str, self.figures))}; "
            f"{self.rows_compared} rows; rel_tol={self.rel_tol})"
        ]
        for problem in self.problems:
            lines.append(f"  STRUCTURAL: {problem}")
        for kind, tag in (
            ("regression", "REGRESSION"),
            ("drift", "DRIFT"),
            ("improvement", "improvement"),
        ):
            for d in self.of_kind(kind):
                lines.append(
                    f"  {tag}: fig {d.figure} {d.row}: {d.field} "
                    f"{d.baseline:g} -> {d.current:g} ({d.rel_delta:+.1%})"
                )
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _fields_for(row: Mapping[str, object]) -> Sequence[str]:
    """Compared fields for a row, dispatched on its explicit figure tag."""
    return KIND_VALUE_FIELDS[row_kind(row)]


def _classify(name: str, rel_delta: float) -> str:
    direction = FIELD_DIRECTION.get(name, "neutral")
    if direction == "neutral":
        return "drift"
    worse = rel_delta < 0 if direction == "higher" else rel_delta > 0
    return "regression" if worse else "improvement"


def compare(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = DEFAULT_REL_TOL,
    figures: Optional[Sequence[int]] = None,
    baseline_path: str = "<baseline>",
) -> RegressReport:
    """Direction-aware comparison of two baseline documents."""
    report = RegressReport(baseline_path=baseline_path, rel_tol=rel_tol)
    if baseline.get("schema") != baseline_mod.SCHEMA_VERSION:
        report.problems.append(
            f"schema mismatch: baseline {baseline.get('schema')!r}"
        )
        return report
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        report.problems.append(
            f"mode mismatch: baseline quick={baseline.get('quick')}, "
            f"current quick={current.get('quick')}"
        )
        return report
    current_figs = current.get("figures", {})
    baseline_figs = baseline.get("figures", {})
    shared = sorted(set(current_figs) & set(baseline_figs), key=int)
    if figures is not None:
        wanted = {str(f) for f in figures}
        shared = [f for f in shared if f in wanted]
    if not shared:
        report.problems.append("no common figures to compare")
        return report
    report.figures = [int(f) for f in shared]
    for fig in shared:
        cur_rows = {_row_key(r): r for r in current_figs[fig]["rows"]}
        base_rows = {_row_key(r): r for r in baseline_figs[fig]["rows"]}
        for key in sorted(set(base_rows) ^ set(cur_rows)):
            side = "current run" if key in base_rows else "baseline"
            report.problems.append(f"fig {fig}: row missing from {side}: {key}")
        for key in sorted(set(cur_rows) & set(base_rows)):
            cur, base = cur_rows[key], base_rows[key]
            report.rows_compared += 1
            for name in _fields_for(cur):
                b = base.get(name)
                c = cur.get(name)
                if b is None or c is None:
                    if b is not None or c is not None:
                        report.problems.append(
                            f"fig {fig}: {key}: {name} present on one side only"
                        )
                    continue
                b, c = float(b), float(c)
                if abs(c - b) <= rel_tol * max(abs(b), abs(c)) + 1e-9:
                    continue
                rel = (c - b) / abs(b) if b else float("inf")
                report.deltas.append(
                    FieldDelta(
                        figure=int(fig),
                        row=key,
                        field=name,
                        baseline=b,
                        current=c,
                        rel_delta=rel,
                        kind=_classify(name, rel),
                    )
                )
    _compare_selftest(report, current, baseline)
    return report


def _compare_selftest(
    report: RegressReport,
    current: Mapping[str, object],
    baseline: Mapping[str, object],
) -> None:
    """Compare the sim-speed selftest sections, when the baseline has one.

    Wall-clock speed is host-noise territory, so this uses its own
    generous ``SELFTEST_REL_TOL`` band rather than the figure tolerance:
    only a drop big enough to signal a hot-path regression goes red
    (figure 0, row ``selftest`` in the report).
    """
    base_st = baseline.get("selftest")
    if base_st is None:
        return
    cur_st = current.get("selftest")
    if cur_st is None:
        report.problems.append(
            "baseline has a selftest section but the current run does not"
        )
        return
    name = "engine_cycles_per_sec"
    b = float(base_st.get(name, 0.0))
    c = float(cur_st.get(name, 0.0))
    report.rows_compared += 1
    if abs(c - b) <= SELFTEST_REL_TOL * max(abs(b), abs(c)) + 1e-9:
        return
    rel = (c - b) / abs(b) if b else float("inf")
    report.deltas.append(
        FieldDelta(
            figure=0,
            row="selftest",
            field=name,
            baseline=b,
            current=c,
            rel_delta=rel,
            kind=_classify(name, rel),
        )
    )


def run_and_compare(
    baseline_path: str,
    figures: Optional[Sequence[int]] = None,
    jobs: int = 1,
    rel_tol: float = DEFAULT_REL_TOL,
    progress=None,
) -> RegressReport:
    """Re-run the baseline's figures and compare against it.

    The run inherits the baseline's quick/full mode so the sweeps are
    shaped identically; *figures* (when given) restricts the comparison
    to a subset of what the baseline holds.
    """
    from repro.bench.runner import run_figures

    document = baseline_mod.load(baseline_path)
    quick = bool(document.get("quick"))
    held = sorted(int(f) for f in document.get("figures", {}))
    wanted = sorted(set(held) & set(figures)) if figures is not None else held
    if not wanted:
        report = RegressReport(baseline_path=baseline_path, rel_tol=rel_tol)
        report.problems.append(
            f"baseline holds figures {held}, none of which were requested"
        )
        return report
    runs = run_figures(wanted, quick=quick, jobs=jobs, progress=progress)
    selftest = None
    if document.get("selftest") is not None:
        # the baseline tracks sim speed: sample it on this host too
        from repro.bench.selftest import run_selftest

        if progress is not None:
            progress("selftest: sampling simulator speed")
        selftest = baseline_mod.selftest_record(run_selftest())
    current = baseline_mod.snapshot(runs, quick=quick, jobs=jobs, selftest=selftest)
    return compare(
        current,
        document,
        rel_tol=rel_tol,
        figures=wanted,
        baseline_path=baseline_path,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Re-run committed benchmark baselines and flag "
        "direction-aware perf regressions.",
    )
    parser.add_argument(
        "--baseline",
        default="baselines/quick.json",
        help="committed baseline document to compare against",
    )
    parser.add_argument(
        "--fig",
        type=int,
        action="append",
        help="restrict to these figures (repeatable; default: all in "
        "the baseline)",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument(
        "--tol",
        type=float,
        default=DEFAULT_REL_TOL,
        metavar="REL",
        help=f"relative tolerance band (default {DEFAULT_REL_TOL})",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the regression report as JSON to PATH",
    )
    args = parser.parse_args(argv)
    report = run_and_compare(
        args.baseline,
        figures=args.fig,
        jobs=args.jobs,
        rel_tol=args.tol,
        progress=print,
    )
    print(report.format())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
