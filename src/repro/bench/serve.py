"""Serving-tier figure (19): p99 ack latency vs offered load, per optimizer.

Not a paper figure — the saturation companion to figure 18 for the
:mod:`repro.serve` tier.  Figure 18 measures the store under closed-loop
pressure (every thread always has a next op); this sweep drives it with
**open-loop** tenants at a configured offered load, so past the store's
capacity the client queues grow and the *arrival→durable* p99 diverges
instead of the throughput politely flattening.  The headline read: each
optimizer's curve has a knee where queueing delay takes over, and Skip
It's cheaper flush path pushes that knee to a higher offered load.  The
shed column shows admission control trading availability for latency on
the far side of the knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.workloads.serve import ServeBenchmark

#: epoch trigger per session (matches figure 18's group commit)
DEFAULT_GROUP_COMMIT = 8
DEFAULT_SESSIONS = 4
#: total requests per kilocycle across tenants; the knee sits between
#: the middle loads at the default sessions/group-commit configuration
ALL_LOADS = (4.0, 8.0, 16.0, 24.0, 32.0, 48.0)
QUICK_LOADS = (8.0, 20.0, 32.0)


def sweep_axes(figure: int, quick: bool) -> Dict[str, list]:
    """Default sweep axes of the serving-tier figure (runner-shared)."""
    if figure == 19:
        return {
            "optimizers": list(OPTIMIZER_NAMES),
            "offered_loads": list(QUICK_LOADS if quick else ALL_LOADS),
        }
    raise KeyError(f"figure {figure} is not a serving-tier figure")


@dataclass
class ServeRow:
    """One cell of the offered-load x optimizer grid."""

    figure: int
    optimizer: str
    offered_load: float
    sessions: int
    group_commit: int
    generated: int
    served: int
    completed: int
    shed: int
    throughput_mops: float  # completed-write goodput
    ack_p50: float = 0.0  # arrival -> durable (queueing delay included)
    ack_p99: float = 0.0
    queue_p50: float = 0.0  # arrival -> service start
    queue_p99: float = 0.0
    max_depth: int = 0
    max_client_queue: int = 0
    backpressure_engagements: int = 0
    snapshot_reads: int = 0
    snapshot_fallbacks: int = 0
    fences: int = 0
    commits: int = 0
    checkpoints: int = 0
    wal_records: int = 0
    #: ack latencies clamped to zero (cross-thread virtual-clock skew)
    ack_clamped: int = 0
    #: ``timing.*`` + ``serve.*`` + ``store.shared.*`` metrics snapshot
    metrics: Optional[Dict[str, object]] = None


def run_fig19(
    quick: bool = False,
    optimizers: Optional[Sequence[str]] = None,
    offered_loads: Optional[Sequence[float]] = None,
    sessions: int = DEFAULT_SESSIONS,
    group_commit: int = DEFAULT_GROUP_COMMIT,
    duration: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[ServeRow]:
    """Figure 19: serving-tier saturation curves vs offered load."""
    axes = sweep_axes(19, quick)
    optimizers = (
        list(optimizers) if optimizers is not None else axes["optimizers"]
    )
    offered_loads = (
        list(offered_loads)
        if offered_loads is not None
        else axes["offered_loads"]
    )
    duration = duration or (30_000 if quick else 150_000)
    key_space = 65_536 if quick else 1_000_000
    rows: List[ServeRow] = []
    for optimizer in optimizers:
        for load in offered_loads:
            extra = {} if seed is None else {"seed": seed}
            bench = ServeBenchmark(
                optimizer,
                load,
                sessions=sessions,
                group_commit=group_commit,
                key_space=key_space,
                **extra,
            )
            result = bench.run(duration=duration)
            rows.append(
                ServeRow(
                    figure=19,
                    optimizer=optimizer,
                    offered_load=load,
                    sessions=sessions,
                    group_commit=group_commit,
                    generated=result.generated,
                    served=result.served,
                    completed=result.completed,
                    shed=result.shed,
                    throughput_mops=result.throughput_mops,
                    ack_p50=result.ack_p50,
                    ack_p99=result.ack_p99,
                    queue_p50=result.queue_p50,
                    queue_p99=result.queue_p99,
                    max_depth=result.max_depth,
                    max_client_queue=result.max_client_queue,
                    backpressure_engagements=result.backpressure_engagements,
                    snapshot_reads=result.snapshot_reads,
                    snapshot_fallbacks=result.snapshot_fallbacks,
                    fences=result.fences,
                    commits=result.commits,
                    checkpoints=result.checkpoints,
                    wal_records=result.wal_records,
                    ack_clamped=result.ack_clamped,
                    metrics=result.metrics,
                )
            )
    return rows
