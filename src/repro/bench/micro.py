"""Cycle-level microbenchmark figures (9-13).

Every runner accepts ``quick=True`` (used by tests and pytest-benchmark)
to shrink sweep sizes while preserving the series shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.workloads.redundant import redundant_writeback_latency
from repro.workloads.reread import clean_vs_flush_reread
from repro.workloads.sweep import writeback_sweep
from repro.xarch.models import platform_models

KIB = 1024

FULL_SIZES = [64, 256, KIB, 4 * KIB, 16 * KIB, 32 * KIB]
QUICK_SIZES = [64, 512, 4 * KIB]
FULL_THREADS = [1, 2, 4, 8]
QUICK_THREADS = [1, 4]


def sweep_axes(figure: int, quick: bool) -> Dict[str, list]:
    """Default sweep axes of a microbenchmark figure.

    Single source of truth shared by the ``run_figNN`` defaults and the
    parallel runner's point decomposition (:mod:`repro.bench.runner`), so
    the two can never drift apart.
    """
    if figure == 9:
        return {
            "sizes": QUICK_SIZES if quick else FULL_SIZES,
            "threads": QUICK_THREADS if quick else FULL_THREADS,
        }
    if figure == 10:
        return {
            "sizes": [64, 512] if quick else [64, 512, 4 * KIB],
            "threads": [1] if quick else [1, 8],
            "cleans": [True, False],
        }
    if figure == 11:
        return {"sizes": QUICK_SIZES if quick else FULL_SIZES, "threads": [1]}
    if figure == 12:
        return {
            "sizes": QUICK_SIZES if quick else FULL_SIZES,
            "threads": [2] if quick else [8],
        }
    if figure == 13:
        return {
            "sizes": [64, 512] if quick else [64, 512, 4 * KIB, 16 * KIB],
            "threads": [1] if quick else [1, 8],
            "skip_its": [False, True],
        }
    raise KeyError(f"figure {figure} is not a microbenchmark figure")


@dataclass
class MicroRow:
    """One (size, threads, series) latency point."""

    figure: int
    series: str
    size_bytes: int
    threads: int
    median_cycles: float
    stdev_cycles: float = 0.0


def run_fig09(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    threads: Optional[Sequence[int]] = None,
    repeats: int = 3,
) -> List[MicroRow]:
    """Figure 9: CBO.X latency vs writeback size across thread counts."""
    axes = sweep_axes(9, quick)
    sizes = list(sizes) if sizes is not None else axes["sizes"]
    threads = list(threads) if threads is not None else axes["threads"]
    rows: List[MicroRow] = []
    for t in threads:
        for size in sizes:
            if size < t * 64:
                continue
            res = writeback_sweep(size, threads=t, clean=False, repeats=repeats)
            rows.append(
                MicroRow(
                    figure=9,
                    series=f"{t}-thread flush",
                    size_bytes=size,
                    threads=t,
                    median_cycles=res.median,
                    stdev_cycles=res.stdev,
                )
            )
    return rows


def run_fig10(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    threads: Optional[Sequence[int]] = None,
    repeats: int = 2,
    cleans: Optional[Sequence[bool]] = None,
) -> List[MicroRow]:
    """Figure 10: write / 10x CBO.X / fence / re-read, clean vs flush."""
    axes = sweep_axes(10, quick)
    sizes = list(sizes) if sizes is not None else axes["sizes"]
    threads = list(threads) if threads is not None else axes["threads"]
    cleans = list(cleans) if cleans is not None else axes["cleans"]
    rows: List[MicroRow] = []
    for t in threads:
        for clean in cleans:
            for size in sizes:
                if size < t * 64:
                    continue
                res = clean_vs_flush_reread(
                    size, threads=t, clean=clean, repeats=repeats
                )
                rows.append(
                    MicroRow(
                        figure=10,
                        series=f"{t}-thread {'clean' if clean else 'flush'}",
                        size_bytes=size,
                        threads=t,
                        median_cycles=res.median,
                        stdev_cycles=res.stdev,
                    )
                )
    return rows


def _comparative(
    figure: int,
    threads: int,
    quick: bool,
    repeats: int,
    sizes: Optional[Sequence[int]] = None,
    include_sim: bool = True,
    include_models: bool = True,
) -> List[MicroRow]:
    sizes = list(sizes) if sizes is not None else sweep_axes(figure, quick)["sizes"]
    rows: List[MicroRow] = []
    if include_sim:
        for size in sizes:
            if size < threads * 64:
                continue
            for clean in (False, True):
                res = writeback_sweep(size, threads=threads, clean=clean, repeats=repeats)
                op = "cbo.clean" if clean else "cbo.flush"
                rows.append(
                    MicroRow(
                        figure=figure,
                        series=f"SonicBOOM {op}",
                        size_bytes=size,
                        threads=threads,
                        median_cycles=res.median,
                        stdev_cycles=res.stdev,
                    )
                )
    if include_models:
        for platform, model in platform_models().items():
            for instruction in model.variants():
                for size in sizes:
                    if size < threads * 64:
                        continue
                    rows.append(
                        MicroRow(
                            figure=figure,
                            series=f"{platform} {instruction}",
                            size_bytes=size,
                            threads=threads,
                            median_cycles=model.latency(instruction, size, threads),
                        )
                    )
    return rows


def run_fig11(
    quick: bool = False,
    repeats: int = 2,
    sizes: Optional[Sequence[int]] = None,
    include_sim: bool = True,
    include_models: bool = True,
) -> List[MicroRow]:
    """Figure 11: single-thread writeback latency across architectures."""
    return _comparative(
        figure=11,
        threads=1,
        quick=quick,
        repeats=repeats,
        sizes=sizes,
        include_sim=include_sim,
        include_models=include_models,
    )


def run_fig12(
    quick: bool = False,
    repeats: int = 2,
    sizes: Optional[Sequence[int]] = None,
    include_sim: bool = True,
    include_models: bool = True,
) -> List[MicroRow]:
    """Figure 12: eight-thread writeback latency across architectures."""
    return _comparative(
        figure=12,
        threads=2 if quick else 8,
        quick=quick,
        repeats=repeats,
        sizes=sizes,
        include_sim=include_sim,
        include_models=include_models,
    )


def run_fig13(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    threads: Optional[Sequence[int]] = None,
    repeats: int = 2,
    skip_its: Optional[Sequence[bool]] = None,
) -> List[MicroRow]:
    """Figure 13: 1 + 10 redundant CBO.X per line, naive vs Skip It."""
    axes = sweep_axes(13, quick)
    sizes = list(sizes) if sizes is not None else axes["sizes"]
    threads = list(threads) if threads is not None else axes["threads"]
    skip_its = list(skip_its) if skip_its is not None else axes["skip_its"]
    rows: List[MicroRow] = []
    for t in threads:
        for skip_it in skip_its:
            for size in sizes:
                if size < t * 64:
                    continue
                res = redundant_writeback_latency(
                    size, threads=t, skip_it=skip_it, repeats=repeats
                )
                rows.append(
                    MicroRow(
                        figure=13,
                        series=f"{t}-thread {'Skip It' if skip_it else 'naive'}",
                        size_bytes=size,
                        threads=t,
                        median_cycles=res.median,
                        stdev_cycles=res.stdev,
                    )
                )
    return rows


def rows_by_series(rows: Sequence[MicroRow]) -> Dict[str, List[MicroRow]]:
    series: Dict[str, List[MicroRow]] = {}
    for row in rows:
        series.setdefault(row.series, []).append(row)
    return series
