"""Cycle-level microbenchmark figures (9-13).

Every runner accepts ``quick=True`` (used by tests and pytest-benchmark)
to shrink sweep sizes while preserving the series shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.workloads.redundant import redundant_writeback_latency
from repro.workloads.reread import clean_vs_flush_reread
from repro.workloads.sweep import writeback_sweep
from repro.xarch.models import platform_models

KIB = 1024

FULL_SIZES = [64, 256, KIB, 4 * KIB, 16 * KIB, 32 * KIB]
QUICK_SIZES = [64, 512, 4 * KIB]
FULL_THREADS = [1, 2, 4, 8]
QUICK_THREADS = [1, 4]


@dataclass
class MicroRow:
    """One (size, threads, series) latency point."""

    figure: int
    series: str
    size_bytes: int
    threads: int
    median_cycles: float
    stdev_cycles: float = 0.0


def run_fig09(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    threads: Optional[Sequence[int]] = None,
    repeats: int = 3,
) -> List[MicroRow]:
    """Figure 9: CBO.X latency vs writeback size across thread counts."""
    sizes = list(sizes or (QUICK_SIZES if quick else FULL_SIZES))
    threads = list(threads or (QUICK_THREADS if quick else FULL_THREADS))
    rows: List[MicroRow] = []
    for t in threads:
        for size in sizes:
            if size < t * 64:
                continue
            res = writeback_sweep(size, threads=t, clean=False, repeats=repeats)
            rows.append(
                MicroRow(
                    figure=9,
                    series=f"{t}-thread flush",
                    size_bytes=size,
                    threads=t,
                    median_cycles=res.median,
                    stdev_cycles=res.stdev,
                )
            )
    return rows


def run_fig10(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    threads: Optional[Sequence[int]] = None,
    repeats: int = 2,
) -> List[MicroRow]:
    """Figure 10: write / 10x CBO.X / fence / re-read, clean vs flush."""
    sizes = list(sizes or ([64, 512] if quick else [64, 512, 4 * KIB]))
    threads = list(threads or ([1] if quick else [1, 8]))
    rows: List[MicroRow] = []
    for t in threads:
        for clean in (True, False):
            for size in sizes:
                if size < t * 64:
                    continue
                res = clean_vs_flush_reread(
                    size, threads=t, clean=clean, repeats=repeats
                )
                rows.append(
                    MicroRow(
                        figure=10,
                        series=f"{t}-thread {'clean' if clean else 'flush'}",
                        size_bytes=size,
                        threads=t,
                        median_cycles=res.median,
                        stdev_cycles=res.stdev,
                    )
                )
    return rows


def _comparative(figure: int, threads: int, quick: bool, repeats: int) -> List[MicroRow]:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rows: List[MicroRow] = []
    for size in sizes:
        if size < threads * 64:
            continue
        for clean in (False, True):
            res = writeback_sweep(size, threads=threads, clean=clean, repeats=repeats)
            op = "cbo.clean" if clean else "cbo.flush"
            rows.append(
                MicroRow(
                    figure=figure,
                    series=f"SonicBOOM {op}",
                    size_bytes=size,
                    threads=threads,
                    median_cycles=res.median,
                    stdev_cycles=res.stdev,
                )
            )
    for platform, model in platform_models().items():
        for instruction in model.variants():
            for size in sizes:
                if size < threads * 64:
                    continue
                rows.append(
                    MicroRow(
                        figure=figure,
                        series=f"{platform} {instruction}",
                        size_bytes=size,
                        threads=threads,
                        median_cycles=model.latency(instruction, size, threads),
                    )
                )
    return rows


def run_fig11(quick: bool = False, repeats: int = 2) -> List[MicroRow]:
    """Figure 11: single-thread writeback latency across architectures."""
    return _comparative(figure=11, threads=1, quick=quick, repeats=repeats)


def run_fig12(quick: bool = False, repeats: int = 2) -> List[MicroRow]:
    """Figure 12: eight-thread writeback latency across architectures."""
    return _comparative(figure=12, threads=2 if quick else 8, quick=quick, repeats=repeats)


def run_fig13(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    threads: Optional[Sequence[int]] = None,
    repeats: int = 2,
) -> List[MicroRow]:
    """Figure 13: 1 + 10 redundant CBO.X per line, naive vs Skip It."""
    sizes = list(sizes or ([64, 512] if quick else [64, 512, 4 * KIB, 16 * KIB]))
    threads = list(threads or ([1] if quick else [1, 8]))
    rows: List[MicroRow] = []
    for t in threads:
        for skip_it in (False, True):
            for size in sizes:
                if size < t * 64:
                    continue
                res = redundant_writeback_latency(
                    size, threads=t, skip_it=skip_it, repeats=repeats
                )
                rows.append(
                    MicroRow(
                        figure=13,
                        series=f"{t}-thread {'Skip It' if skip_it else 'naive'}",
                        size_bytes=size,
                        threads=t,
                        median_cycles=res.median,
                        stdev_cycles=res.stdev,
                    )
                )
    return rows


def rows_by_series(rows: Sequence[MicroRow]) -> Dict[str, List[MicroRow]]:
    series: Dict[str, List[MicroRow]] = {}
    for row in rows:
        series.setdefault(row.series, []).append(row)
    return series
