"""Figure-regeneration harness.

One ``run_figNN`` function per evaluation figure, returning structured
rows, plus a CLI (``python -m repro.bench --fig 9`` or the installed
``skipit-bench`` script) that prints paper-style series.  The pytest
benchmarks under ``benchmarks/`` call the same runners with reduced
parameters and assert the shape properties the paper reports.
"""

from repro.bench.micro import (
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
)
from repro.bench.serve import run_fig19
from repro.bench.shared import run_fig18
from repro.bench.store import run_fig17
from repro.bench.structures import run_fig14, run_fig15, run_fig16
from repro.bench.txn import run_fig20

FIGURES = {
    9: run_fig09,
    10: run_fig10,
    11: run_fig11,
    12: run_fig12,
    13: run_fig13,
    14: run_fig14,
    15: run_fig15,
    16: run_fig16,
    17: run_fig17,
    18: run_fig18,
    19: run_fig19,
    20: run_fig20,
}

#: figures by declared row type — the CLI/report dispatch on these sets
#: rather than sniffing the first row, which misfires on empty row lists
MICRO_FIGURES = frozenset({9, 10, 11, 12, 13})
THROUGHPUT_FIGURES = frozenset({14, 15, 16})
STORE_FIGURES = frozenset({17})
SHARED_STORE_FIGURES = frozenset({18})
SERVE_FIGURES = frozenset({19})
TXN_FIGURES = frozenset({20})

__all__ = [
    "MICRO_FIGURES",
    "SERVE_FIGURES",
    "SHARED_STORE_FIGURES",
    "STORE_FIGURES",
    "THROUGHPUT_FIGURES",
    "TXN_FIGURES",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_fig20",
    "FIGURES",
]
