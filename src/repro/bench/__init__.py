"""Figure-regeneration harness.

One ``run_figNN`` function per evaluation figure, returning structured
rows, plus a CLI (``python -m repro.bench --fig 9`` or the installed
``skipit-bench`` script) that prints paper-style series.  The pytest
benchmarks under ``benchmarks/`` call the same runners with reduced
parameters and assert the shape properties the paper reports.
"""

from repro.bench.micro import (
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
)
from repro.bench.range import run_fig21
from repro.bench.serve import run_fig19
from repro.bench.shared import run_fig18
from repro.bench.store import run_fig17
from repro.bench.structures import run_fig14, run_fig15, run_fig16
from repro.bench.txn import run_fig20

FIGURES = {
    9: run_fig09,
    10: run_fig10,
    11: run_fig11,
    12: run_fig12,
    13: run_fig13,
    14: run_fig14,
    15: run_fig15,
    16: run_fig16,
    17: run_fig17,
    18: run_fig18,
    19: run_fig19,
    20: run_fig20,
    21: run_fig21,
}

#: figures by declared row type — the CLI/report dispatch on these sets
#: rather than sniffing the first row, which misfires on empty row lists
MICRO_FIGURES = frozenset({9, 10, 11, 12, 13})
THROUGHPUT_FIGURES = frozenset({14, 15, 16})
STORE_FIGURES = frozenset({17})
SHARED_STORE_FIGURES = frozenset({18})
SERVE_FIGURES = frozenset({19})
TXN_FIGURES = frozenset({20})
RANGE_FIGURES = frozenset({21})

#: figure number -> row-kind tag.  The single source of truth for how a
#: serialized row is keyed, value-compared, and rendered: every row
#: dataclass carries a ``figure`` field, so the CLI, report, baseline
#: and regression layers all dispatch on ``FIGURE_KINDS[row["figure"]]``
#: instead of sniffing which fields happen to be present.
FIGURE_KINDS = {
    **{f: "micro" for f in MICRO_FIGURES},
    **{f: "throughput" for f in THROUGHPUT_FIGURES},
    **{f: "store" for f in STORE_FIGURES},
    **{f: "shared" for f in SHARED_STORE_FIGURES},
    **{f: "serve" for f in SERVE_FIGURES},
    **{f: "txn" for f in TXN_FIGURES},
    **{f: "range" for f in RANGE_FIGURES},
}

__all__ = [
    "FIGURE_KINDS",
    "MICRO_FIGURES",
    "RANGE_FIGURES",
    "SERVE_FIGURES",
    "SHARED_STORE_FIGURES",
    "STORE_FIGURES",
    "THROUGHPUT_FIGURES",
    "TXN_FIGURES",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_fig20",
    "run_fig21",
    "FIGURES",
]
