"""Plain-text table formatting for the benchmark CLI."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    if value is None:
        return "n/a"
    return str(value)


def human_size(size_bytes: int) -> str:
    if size_bytes >= 1024 and size_bytes % 1024 == 0:
        return f"{size_bytes // 1024}KiB"
    return f"{size_bytes}B"
