"""Figure 21: loop-of-CBOs vs CBO.RANGE (the ranged-flush figure).

Three series, each run once per ``mode`` in ``{"loop", "range"}``:

* ``micro`` — dirty a region of the figure-9 sizes, then make it
  durable either with a per-line ``CBO.CLEAN`` loop closed by a FENCE
  (``loop``) or with a single ``CBO.RANGE.CLEAN`` whose completion
  wait is the ordering token (``range``).  A second, redundant sweep
  over the now-clean region measures the Skip It filter *inside* the
  range: every line resolves to a skip-bit lookup instead of a
  writeback, in both modes.
* ``store`` / ``shared`` — the figure-17/18 store workloads with
  ``ranged_seal`` off (``loop``) vs on (``range``): epoch seals and
  checkpoint publishes collapse from ``RECORD_FIELDS``-per-record
  clean loops plus fences into one ranged clean per contiguous log
  span plus one completion wait.

The headline columns are flush-queue entries (``flush_requests`` /
``cbo_issued`` vs ``cbo_range_issued``) and fences per kop — the
ranged encoding must issue *fewer* of both for the same durable work.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.micro import FULL_SIZES, QUICK_SIZES
from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.workloads.store import SharedStoreBenchmark, StoreBenchmark

MODES = ("loop", "range")
STORE_SERIES = ("store", "shared")
QUICK_OPTIMIZERS = ("plain", "skipit")


@dataclass
class RangeRow:
    """One cell of figure 21 (one series x mode coordinate)."""

    figure: int
    series: str  # "micro" | "store" | "shared"
    mode: str  # "loop" | "range"
    optimizer: str  # "" for the micro series
    size_bytes: int  # region size for micro, 0 for the stores
    group_commit: int  # 0 for micro
    threads: int
    sweep_cycles: float = 0.0  # micro: first (dirty) sweep
    resweep_cycles: float = 0.0  # micro: redundant sweep (skip filter)
    throughput_mops: float = 0.0  # store series
    fences: int = 0
    ranged_seals: int = 0
    flush_requests: int = 0
    cbo_issued: int = 0
    cbo_skipped: int = 0
    cbo_range_issued: int = 0
    cbo_range_lines: int = 0
    cbo_range_skipped: int = 0
    fences_per_kop: float = 0.0
    metrics: Optional[Dict[str, object]] = field(default=None)


def sweep_axes(figure: int, quick: bool) -> Dict[str, Sequence]:
    """Axis values figure 21 sweeps (mirrors ``run_fig21`` defaults)."""
    if figure != 21:
        raise ValueError(f"range sweep_axes only covers figure 21, not {figure}")
    return {
        "modes": MODES,
        "region_sizes": tuple(QUICK_SIZES if quick else FULL_SIZES),
        "series": STORE_SERIES,
        "optimizers": QUICK_OPTIMIZERS if quick else tuple(OPTIMIZER_NAMES),
    }


# --------------------------------------------------------------- micro cell
def _micro_cell(size_bytes: int, mode: str, repeats: int) -> RangeRow:
    """Make a dirty region durable: per-line loop+fence vs one range."""
    sweeps: List[int] = []
    resweeps: List[int] = []
    last_stats: Dict[str, int] = {}
    for _ in range(repeats):
        params = TimingParams(num_threads=1, skip_it=True)
        system = TimingSystem(params)
        ctx = system.threads[0]
        lb = params.line_bytes
        nlines = max(1, size_bytes // lb)
        base = lb * 16

        for i in range(nlines):
            ctx.store(base + i * lb, i + 1)

        def sweep() -> int:
            start = ctx.now
            if mode == "loop":
                for i in range(nlines):
                    ctx.clean(base + i * lb)
                ctx.fence()
            else:
                ctx.clean_range(base, nlines * lb, wait=True)
            return ctx.now - start

        sweeps.append(sweep())
        # the region is clean now: the redundant pass measures the
        # in-range Skip It filter (lookup per line, no writebacks)
        resweeps.append(sweep())
        last_stats = system.stats.as_dict()

    return RangeRow(
        figure=21,
        series="micro",
        mode=mode,
        optimizer="",
        size_bytes=size_bytes,
        group_commit=0,
        threads=1,
        sweep_cycles=statistics.median(sweeps),
        resweep_cycles=statistics.median(resweeps),
        fences=last_stats.get("fences", 0),
        flush_requests=last_stats.get("cbo_issued", 0)
        + last_stats.get("cbo_range_issued", 0),
        cbo_issued=last_stats.get("cbo_issued", 0),
        cbo_skipped=last_stats.get("cbo_skipped", 0),
        cbo_range_issued=last_stats.get("cbo_range_issued", 0),
        cbo_range_lines=last_stats.get("cbo_range_lines", 0),
        cbo_range_skipped=last_stats.get("cbo_range_line_skipped", 0),
    )


# --------------------------------------------------------------- store cells
def _store_cell(
    optimizer: str,
    mode: str,
    group_commit: int,
    threads: int,
    duration: int,
    seed: Optional[int],
) -> RangeRow:
    extra = {} if seed is None else {"seed": seed}
    result = StoreBenchmark(
        optimizer,
        group_commit,
        threads=threads,
        ranged_seal=(mode == "range"),
        **extra,
    ).run(duration=duration)
    kops = result.total_ops / 1000.0
    return RangeRow(
        figure=21,
        series="store",
        mode=mode,
        optimizer=optimizer,
        size_bytes=0,
        group_commit=group_commit,
        threads=threads,
        throughput_mops=result.throughput_mops,
        fences=result.fences,
        ranged_seals=result.ranged_seals,
        flush_requests=result.flush_requests,
        cbo_issued=result.cbo_issued,
        cbo_skipped=result.cbo_skipped,
        cbo_range_issued=result.cbo_range_issued,
        cbo_range_lines=result.cbo_range_lines,
        cbo_range_skipped=result.cbo_range_skipped,
        fences_per_kop=(result.fences / kops) if kops else 0.0,
        metrics=result.metrics,
    )


def _shared_cell(
    optimizer: str,
    mode: str,
    group_commit: int,
    threads: int,
    duration: int,
    seed: Optional[int],
) -> RangeRow:
    extra = {} if seed is None else {"seed": seed}
    result = SharedStoreBenchmark(
        optimizer,
        group_commit,
        threads=threads,
        ranged_seal=(mode == "range"),
        **extra,
    ).run(duration=duration)
    return RangeRow(
        figure=21,
        series="shared",
        mode=mode,
        optimizer=optimizer,
        size_bytes=0,
        group_commit=group_commit,
        threads=threads,
        throughput_mops=result.throughput_mops,
        fences=result.fences,
        ranged_seals=result.ranged_seals,
        flush_requests=result.flush_requests,
        cbo_issued=result.cbo_issued,
        cbo_skipped=result.cbo_skipped,
        cbo_range_issued=result.cbo_range_issued,
        cbo_range_lines=result.cbo_range_lines,
        cbo_range_skipped=result.cbo_range_skipped,
        fences_per_kop=result.fences_per_kop,
        metrics=result.metrics,
    )


# ------------------------------------------------------------------- figure
def run_fig21(
    quick: bool = False,
    modes: Optional[Iterable[str]] = None,
    region_sizes: Optional[Iterable[int]] = None,
    series: Optional[Iterable[str]] = None,
    optimizers: Optional[Iterable[str]] = None,
    group_commit: int = 8,
    threads: int = 2,
    shared_threads: int = 3,
    duration: Optional[int] = None,
    repeats: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[RangeRow]:
    """Loop-of-CBOs vs CBO.RANGE across regions and store workloads.

    Narrowing kwargs mirror the sweep axes so the runner can decompose
    the figure into seeded per-cell points: an empty ``region_sizes``
    skips the micro series, an empty ``series`` skips the stores.
    """
    axes = sweep_axes(21, quick)
    modes = tuple(modes) if modes is not None else tuple(axes["modes"])
    region_sizes = (
        tuple(region_sizes)
        if region_sizes is not None
        else tuple(axes["region_sizes"])
    )
    series = tuple(series) if series is not None else tuple(axes["series"])
    optimizers = (
        tuple(optimizers) if optimizers is not None else tuple(axes["optimizers"])
    )
    if duration is None:
        duration = 40_000 if quick else 120_000
    if repeats is None:
        repeats = 3 if quick else 5

    rows: List[RangeRow] = []
    for mode in modes:
        for size in region_sizes:
            rows.append(_micro_cell(size, mode, repeats))
    for kind in series:
        cell = _store_cell if kind == "store" else _shared_cell
        nthreads = threads if kind == "store" else shared_threads
        for optimizer in optimizers:
            for mode in modes:
                rows.append(
                    cell(optimizer, mode, group_commit, nthreads, duration, seed)
                )
    return rows
