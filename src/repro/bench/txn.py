"""Transactional store figure (20): txn size x optimizer.

Not a paper figure — the multi-key companion to figures 17–19 for the
:mod:`repro.store.txn` subsystem.  Each cell runs the transfer-style
workload of :class:`repro.workloads.txn.TxnBenchmark`: transactions of
``txn_size`` snapshot-read-then-write keys on a two-thread shared-log
store, ~10% aborting client-side after the reads.  A transaction is one
contiguous CAS-reserved WAL run counting as one ticket toward the epoch
trigger, so the headline column — **fences per committed transaction**
— stays flat as the write set grows (fences per record fall in
proportion), while the ack percentiles price the durability wait and
the abort percentiles price the wasted read-validate traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.persist.flushopt import OPTIMIZER_NAMES
from repro.workloads.txn import TxnBenchmark

#: epoch trigger (tickets per epoch; a txn is one ticket)
DEFAULT_GROUP_COMMIT = 4
ALL_TXN_SIZES = (1, 2, 4, 8)


def sweep_axes(figure: int, quick: bool) -> Dict[str, list]:
    """Default sweep axes of the transactional figure (runner-shared)."""
    if figure == 20:
        return {
            "optimizers": list(OPTIMIZER_NAMES),
            "txn_sizes": [1, 4] if quick else list(ALL_TXN_SIZES),
        }
    raise KeyError(f"figure {figure} is not a transactional-store figure")


@dataclass
class TxnRow:
    """One cell of the txn-size x optimizer grid."""

    figure: int
    optimizer: str
    txn_size: int
    group_commit: int
    threads: int
    committed: int
    aborted: int
    throughput_mtps: float
    fences: int = 0
    fences_per_txn: float = 0.0
    ack_p50: float = 0.0
    ack_p99: float = 0.0
    abort_p50: float = 0.0
    abort_p99: float = 0.0
    cbo_issued: int = 0
    cbo_skipped: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    commits: int = 0
    checkpoints: int = 0
    flush_requests: int = 0
    #: acks clamped to zero in the latency histograms (cross-thread
    #: virtual-clock skew); nonzero means p50/p99 understate latency
    ack_clamped: int = 0
    #: ``timing.*`` + ``store.shared.*`` metrics snapshot from the run
    metrics: Optional[Dict[str, object]] = None


def run_fig20(
    quick: bool = False,
    optimizers: Optional[Sequence[str]] = None,
    txn_sizes: Optional[Sequence[int]] = None,
    group_commit: int = DEFAULT_GROUP_COMMIT,
    threads: int = 2,
    duration: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[TxnRow]:
    """Figure 20: multi-key transaction cost vs write-set size."""
    axes = sweep_axes(20, quick)
    optimizers = (
        list(optimizers) if optimizers is not None else axes["optimizers"]
    )
    txn_sizes = (
        list(txn_sizes) if txn_sizes is not None else axes["txn_sizes"]
    )
    duration = duration or (30_000 if quick else 150_000)
    rows: List[TxnRow] = []
    for optimizer in optimizers:
        for txn_size in txn_sizes:
            extra = {} if seed is None else {"seed": seed}
            bench = TxnBenchmark(
                optimizer,
                txn_size,
                group_commit=group_commit,
                threads=threads,
                **extra,
            )
            result = bench.run(duration=duration)
            rows.append(
                TxnRow(
                    figure=20,
                    optimizer=optimizer,
                    txn_size=txn_size,
                    group_commit=group_commit,
                    threads=threads,
                    committed=result.committed,
                    aborted=result.aborted,
                    throughput_mtps=result.throughput_mtps,
                    fences=result.fences,
                    fences_per_txn=result.fences_per_txn,
                    ack_p50=result.ack_p50,
                    ack_p99=result.ack_p99,
                    abort_p50=result.abort_p50,
                    abort_p99=result.abort_p99,
                    cbo_issued=result.cbo_issued,
                    cbo_skipped=result.cbo_skipped,
                    wal_records=result.wal_records,
                    wal_bytes=result.wal_bytes,
                    commits=result.commits,
                    checkpoints=result.checkpoints,
                    flush_requests=result.flush_requests,
                    ack_clamped=result.ack_clamped,
                    metrics=result.metrics,
                )
            )
    return rows
