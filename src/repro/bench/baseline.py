"""Machine-readable benchmark baselines: ``--json`` snapshots, ``--check``.

``python -m repro.bench --json BENCH_quick.json`` serialises every row of
the selected figures (plus the runs' registry-metric snapshots and
wall-clock) to a versioned JSON document.  A committed snapshot then acts
as a regression baseline: ``--check PATH`` re-keys the current rows
against it and fails on missing/extra rows or numeric drift beyond a
relative tolerance band.  The simulations are deterministic (pure Python,
fixed seeds), so on unchanged code ``--check`` passes exactly; the
tolerance only absorbs deliberate small parameter adjustments.

Wall-clock fields are recorded for the record but never compared.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bench import FIGURE_KINDS

SCHEMA_VERSION = 1

#: numeric row fields compared against the baseline, per row kind
MICRO_VALUE_FIELDS = ("median_cycles", "stdev_cycles")
THROUGHPUT_VALUE_FIELDS = (
    "throughput_mops",
    "flush_requests",
    "cbo_issued",
    "cbo_skipped",
)
STORE_VALUE_FIELDS = (
    "throughput_mops",
    "fences",
    "cbo_issued",
    "cbo_skipped",
    "wal_records",
    "commits",
)
SHARED_STORE_VALUE_FIELDS = (
    "throughput_mops",
    "fences",
    "fences_per_kop",
    "ack_p50",
    "ack_p99",
    "cbo_issued",
    "cbo_skipped",
    "wal_records",
    "commits",
)
TXN_VALUE_FIELDS = (
    "committed",
    "aborted",
    "throughput_mtps",
    "fences",
    "fences_per_txn",
    "ack_p50",
    "ack_p99",
    "abort_p50",
    "abort_p99",
    "cbo_issued",
    "cbo_skipped",
    "wal_records",
    "commits",
)
SERVE_VALUE_FIELDS = (
    "generated",
    "served",
    "completed",
    "shed",
    "throughput_mops",
    "ack_p50",
    "ack_p99",
    "queue_p50",
    "queue_p99",
    "snapshot_reads",
    "snapshot_fallbacks",
    "fences",
    "commits",
    "wal_records",
)
RANGE_VALUE_FIELDS = (
    "sweep_cycles",
    "resweep_cycles",
    "throughput_mops",
    "fences",
    "ranged_seals",
    "flush_requests",
    "cbo_issued",
    "cbo_skipped",
    "cbo_range_issued",
    "cbo_range_lines",
    "cbo_range_skipped",
    "fences_per_kop",
)
#: compared value fields per row kind (see ``repro.bench.FIGURE_KINDS``)
KIND_VALUE_FIELDS = {
    "micro": MICRO_VALUE_FIELDS,
    "throughput": THROUGHPUT_VALUE_FIELDS,
    "store": STORE_VALUE_FIELDS,
    "shared": SHARED_STORE_VALUE_FIELDS,
    "serve": SERVE_VALUE_FIELDS,
    "txn": TXN_VALUE_FIELDS,
    "range": RANGE_VALUE_FIELDS,
}
#: default relative tolerance band for --check
DEFAULT_REL_TOL = 0.02


def row_kind(row: Mapping[str, object]) -> str:
    """Kind tag of a serialized row: dispatched on its ``figure`` field.

    Every row dataclass (and therefore every baseline row ever written)
    carries its figure number, so the kind is an explicit lookup rather
    than sniffing which fields happen to be present — field-sniffing
    broke as soon as two kinds shared a field name (``RangeRow.series``
    vs ``MicroRow.series``).
    """
    return FIGURE_KINDS[int(row["figure"])]


def _row_key(row: Mapping[str, object]) -> str:
    """Stable identity of a row within its figure (kind-aware)."""
    kind = row_kind(row)
    if kind == "micro":
        return f"{row['series']}|size={row['size_bytes']}|t={row['threads']}"
    if kind == "txn":
        return (
            f"txn|{row['optimizer']}|n={row['txn_size']}"
            f"|gc={row['group_commit']}|t={row['threads']}"
        )
    if kind == "serve":
        return (
            f"serve|{row['optimizer']}|load={row['offered_load']:g}"
            f"|s={row['sessions']}|gc={row['group_commit']}"
        )
    if kind == "shared":
        return (
            f"shared|{row['optimizer']}|t={row['threads']}"
            f"|gc={row['group_commit']}"
        )
    if kind == "store":
        return (
            f"store|{row['optimizer']}|gc={row['group_commit']}"
            f"|t={row['threads']}"
        )
    if kind == "range":
        return (
            f"range|{row['series']}|{row['mode']}|{row['optimizer']}"
            f"|size={row['size_bytes']}|gc={row['group_commit']}"
            f"|t={row['threads']}"
        )
    return (
        f"{row['structure']}|{row['policy']}|{row['optimizer']}"
        f"|upd={row['update_percent']}"
    )


def selftest_record(result: "SelftestResult") -> Dict[str, object]:  # noqa: F821
    """Serialise a sim-speed selftest sample for the baseline document.

    The record rides along as an additive top-level ``selftest`` key:
    ``check`` ignores it entirely (wall-clock is host-specific), while
    :mod:`repro.bench.regress` compares ``engine_cycles_per_sec`` with
    its own generous band to flag simulator slowdowns.
    """
    return {
        "size_bytes": result.size_bytes,
        "threads": result.threads,
        "repeats": result.repeats,
        "median_cycles": result.median_cycles,
        "engine_cycles": result.engine_cycles,
        "engine_seconds": round(result.engine_seconds, 3),
        "engine_cycles_per_sec": round(result.engine_cycles_per_sec, 1),
        "wall_seconds": round(result.wall_seconds, 3),
        "cycles_per_sec": round(result.cycles_per_sec, 1),
    }


def snapshot(
    runs: Mapping[int, "FigureRun"],  # noqa: F821 - repro.bench.runner.FigureRun
    quick: bool,
    jobs: int,
    selftest: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Serialise figure runs into the baseline document structure."""
    figures: Dict[str, object] = {}
    for figure, run in sorted(runs.items()):
        figures[str(figure)] = {
            "points": run.points,
            "elapsed_seconds": round(run.elapsed, 3),
            "rows": [asdict(row) for row in run.rows],
        }
    document: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "benchmark": "skipit-bench",
        "quick": quick,
        "jobs": jobs,
        "figures": figures,
    }
    if selftest is not None:
        document["selftest"] = dict(selftest)
    return document


def write(path: str, document: Mapping[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> Dict[str, object]:
    with open(path) as handle:
        return json.load(handle)


def _close(current: object, expected: object, rel_tol: float) -> bool:
    if current is None or expected is None:
        return current is None and expected is None
    a, b = float(current), float(expected)
    return abs(a - b) <= rel_tol * max(abs(a), abs(b)) + 1e-9


def check(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = DEFAULT_REL_TOL,
    figures: Optional[Sequence[int]] = None,
) -> List[str]:
    """Compare *current* against *baseline*; return mismatch descriptions.

    Only figures present in both documents (and in *figures*, when given)
    are compared, so a partial run (``--fig 12 --check full.json``) checks
    just its own slice.  The ``selftest`` section is deliberately ignored
    here — it is wall-clock and host-specific; :mod:`repro.bench.regress`
    owns that comparison.  An empty return value means the check passed.
    """
    problems: List[str] = []
    if baseline.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
        return problems
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        problems.append(
            f"mode mismatch: baseline quick={baseline.get('quick')}, "
            f"current quick={current.get('quick')}"
        )
        return problems
    current_figs = current.get("figures", {})
    baseline_figs = baseline.get("figures", {})
    shared = sorted(set(current_figs) & set(baseline_figs), key=int)
    if figures is not None:
        wanted = {str(f) for f in figures}
        shared = [f for f in shared if f in wanted]
    if not shared:
        problems.append("no common figures between current run and baseline")
        return problems
    for fig in shared:
        cur_rows = {_row_key(r): r for r in current_figs[fig]["rows"]}
        base_rows = {_row_key(r): r for r in baseline_figs[fig]["rows"]}
        for key in sorted(set(base_rows) - set(cur_rows)):
            problems.append(f"fig {fig}: row missing from current run: {key}")
        for key in sorted(set(cur_rows) - set(base_rows)):
            problems.append(f"fig {fig}: row not in baseline: {key}")
        for key in sorted(set(cur_rows) & set(base_rows)):
            cur, base = cur_rows[key], base_rows[key]
            fields = KIND_VALUE_FIELDS[row_kind(cur)]
            for name in fields:
                if not _close(cur.get(name), base.get(name), rel_tol):
                    problems.append(
                        f"fig {fig}: {key}: {name} drifted: "
                        f"current {cur.get(name)!r} vs baseline "
                        f"{base.get(name)!r} (rel_tol={rel_tol})"
                    )
    return problems
