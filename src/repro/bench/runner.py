"""Parallel benchmark runner: fan independent sweep points over processes.

Every figure sweep is a grid of *independent* simulation runs — no point
reads another's state — so regenerating a figure parallelises trivially.
This module decomposes each figure into a canonical ordered list of
:class:`BenchPoint`\\ s (one ``run_figNN`` call with the sweep axes
narrowed to a single coordinate) and executes them either serially or on
a ``ProcessPoolExecutor``.  Three properties make the fan-out safe:

* **Canonical decomposition** — the point list, and the order in which
  point rows are concatenated, is a pure function of ``(figure, quick)``.
  Serial and parallel runs produce identical row lists.
* **Deterministic per-point seeding** — every throughput point carries a
  seed derived (CRC-32) from its own coordinates, never from scheduling,
  worker identity, or wall-clock.  Re-runs reproduce bit-identical rows
  for any ``--jobs`` value.
* **Process isolation** — workers are separate interpreters; a point
  cannot leak simulator state into its neighbours.

Point failures are reported per point (label + traceback) and collected
into a single :class:`BenchPointError` after every point has finished,
so one bad cell does not hide the others.
"""

from __future__ import annotations

import time
import traceback
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.micro import sweep_axes as micro_axes
from repro.bench.range import sweep_axes as range_axes
from repro.bench.serve import sweep_axes as serve_axes
from repro.bench.shared import sweep_axes as shared_store_axes
from repro.bench.store import sweep_axes as store_axes
from repro.bench.structures import sweep_axes as throughput_axes
from repro.bench.txn import sweep_axes as txn_axes


@dataclass(frozen=True)
class BenchPoint:
    """One independent cell of a figure sweep.

    ``kwargs`` narrows the figure runner's axes to a single coordinate;
    it is stored as a sorted tuple of pairs so points stay hashable and
    picklable for the process pool.
    """

    figure: int
    index: int  # position in the figure's canonical order
    label: str
    kwargs: Tuple[Tuple[str, object], ...]


@dataclass
class PointResult:
    """Outcome of executing one point (rows or a formatted traceback)."""

    point: BenchPoint
    rows: Optional[list]
    elapsed: float
    error: Optional[str] = None


@dataclass
class FigureRun:
    """All rows of one figure, in canonical order, plus wall-clock."""

    figure: int
    rows: list = field(default_factory=list)
    elapsed: float = 0.0  # wall-clock spent on this figure's points
    points: int = 0


class BenchPointError(RuntimeError):
    """One or more sweep points failed; carries every failure."""

    def __init__(self, failures: Sequence[PointResult]):
        lines = [f"{len(failures)} benchmark point(s) failed:"]
        for res in failures:
            lines.append(f"--- fig {res.point.figure} [{res.point.label}] ---")
            lines.append(res.error or "<no traceback>")
        super().__init__("\n".join(lines))
        self.failures = list(failures)


def point_seed(figure: int, label: str) -> int:
    """Deterministic per-point seed: a pure function of the coordinates."""
    return (zlib.crc32(f"fig{figure}:{label}".encode()) & 0x7FFFFFFF) or 1


def decompose(figure: int, quick: bool = False) -> List[BenchPoint]:
    """Split *figure*'s sweep into its canonical ordered point list.

    The nesting below mirrors each ``run_figNN``'s own loop order, so
    concatenating point rows by index reproduces the monolithic call's
    row order exactly.
    """
    points: List[BenchPoint] = []

    def add(label: str, seeded: bool = False, **kwargs: object) -> None:
        kwargs["quick"] = quick
        if seeded:
            kwargs["seed"] = point_seed(figure, label)
        points.append(
            BenchPoint(figure, len(points), label, tuple(sorted(kwargs.items())))
        )

    if figure in (9, 10, 13):
        axes = micro_axes(figure, quick)
        for t in axes["threads"]:
            for flag in axes.get("cleans", axes.get("skip_its", [None])):
                for size in axes["sizes"]:
                    if size < t * 64:
                        continue
                    if figure == 9:
                        add(f"t={t},size={size}", sizes=(size,), threads=(t,))
                    elif figure == 10:
                        add(
                            f"t={t},{'clean' if flag else 'flush'},size={size}",
                            sizes=(size,),
                            threads=(t,),
                            cleans=(flag,),
                        )
                    else:
                        add(
                            f"t={t},{'skipit' if flag else 'naive'},size={size}",
                            sizes=(size,),
                            threads=(t,),
                            skip_its=(flag,),
                        )
    elif figure in (11, 12):
        axes = micro_axes(figure, quick)
        (t,) = axes["threads"]
        for size in axes["sizes"]:
            if size < t * 64:
                continue
            add(f"sim,size={size}", sizes=(size,), include_models=False)
        add("models", include_sim=False)
    elif figure == 14:
        axes = throughput_axes(14, quick)
        for structure in axes["structures"]:
            add(
                f"{structure},baseline",
                seeded=True,
                structures=(structure,),
                policies=(),
                include_baseline=True,
            )
            for policy in axes["policies"]:
                for optimizer in axes["optimizers"]:
                    add(
                        f"{structure},{policy},{optimizer}",
                        seeded=True,
                        structures=(structure,),
                        policies=(policy,),
                        optimizers=(optimizer,),
                        include_baseline=False,
                    )
    elif figure == 15:
        axes = throughput_axes(15, quick)
        for structure in axes["structures"]:
            for optimizer in axes["optimizers"]:
                for update in axes["update_percents"]:
                    add(
                        f"{structure},{optimizer},upd={update}",
                        seeded=True,
                        structures=(structure,),
                        optimizers=(optimizer,),
                        update_percents=(update,),
                    )
    elif figure == 16:
        axes = throughput_axes(16, quick)
        for entries in axes["table_sizes"]:
            add(
                f"flit-hashtable({entries})",
                seeded=True,
                table_sizes=(entries,),
                include_reference=False,
            )
        add("skipit-reference", seeded=True, table_sizes=(), include_reference=True)
    elif figure == 17:
        axes = store_axes(17, quick)
        for optimizer in axes["optimizers"]:
            for group_commit in axes["group_commits"]:
                add(
                    f"{optimizer},gc={group_commit}",
                    seeded=True,
                    optimizers=(optimizer,),
                    group_commits=(group_commit,),
                )
    elif figure == 18:
        axes = shared_store_axes(18, quick)
        for optimizer in axes["optimizers"]:
            for t in axes["threads"]:
                add(
                    f"{optimizer},t={t}",
                    seeded=True,
                    optimizers=(optimizer,),
                    threads=(t,),
                )
    elif figure == 19:
        axes = serve_axes(19, quick)
        for optimizer in axes["optimizers"]:
            for load in axes["offered_loads"]:
                add(
                    f"{optimizer},load={load:g}",
                    seeded=True,
                    optimizers=(optimizer,),
                    offered_loads=(load,),
                )
    elif figure == 20:
        axes = txn_axes(20, quick)
        for optimizer in axes["optimizers"]:
            for txn_size in axes["txn_sizes"]:
                add(
                    f"{optimizer},txn={txn_size}",
                    seeded=True,
                    optimizers=(optimizer,),
                    txn_sizes=(txn_size,),
                )
    elif figure == 21:
        axes = range_axes(21, quick)
        for mode in axes["modes"]:
            for size in axes["region_sizes"]:
                add(
                    f"micro,{mode},size={size}",
                    modes=(mode,),
                    region_sizes=(size,),
                    series=(),
                )
        for kind in axes["series"]:
            for optimizer in axes["optimizers"]:
                for mode in axes["modes"]:
                    add(
                        f"{kind},{optimizer},{mode}",
                        seeded=True,
                        modes=(mode,),
                        region_sizes=(),
                        series=(kind,),
                        optimizers=(optimizer,),
                    )
    else:
        raise KeyError(f"unknown figure {figure}")
    return points


def execute_point(point: BenchPoint) -> PointResult:
    """Run one point in the current process (also the pool worker)."""
    from repro.bench import FIGURES

    started = time.perf_counter()
    try:
        rows = FIGURES[point.figure](**dict(point.kwargs))
    except Exception:
        return PointResult(
            point, None, time.perf_counter() - started, traceback.format_exc()
        )
    return PointResult(point, rows, time.perf_counter() - started)


def run_figures(
    figures: Sequence[int],
    quick: bool = False,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[int, FigureRun]:
    """Execute the sweeps of *figures*, fanning points over *jobs* processes.

    Returns ``{figure: FigureRun}`` in the order given.  ``jobs <= 1``
    runs every point serially in this process (the fallback path); the
    rows are identical either way.  Raises :class:`BenchPointError`
    after all points finish if any of them failed.
    """
    points: List[BenchPoint] = []
    for figure in figures:
        points.extend(decompose(figure, quick))
    runs = {figure: FigureRun(figure) for figure in figures}
    total = len(points)
    done = 0

    def note(result: PointResult) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            status = "FAILED" if result.error else (
                f"{len(result.rows or [])} rows, {result.elapsed:.1f}s"
            )
            progress(
                f"[{done}/{total}] fig {result.point.figure} "
                f"[{result.point.label}] {status}"
            )

    started = time.perf_counter()
    results: Dict[Tuple[int, int], PointResult] = {}
    if jobs <= 1 or total <= 1:
        for point in points:
            result = execute_point(point)
            results[(point.figure, point.index)] = result
            note(result)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
            pending = {pool.submit(execute_point, point) for point in points}
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    result = future.result()
                    results[(result.point.figure, result.point.index)] = result
                    note(result)
    wall = time.perf_counter() - started

    failures = [r for r in results.values() if r.error]
    if failures:
        raise BenchPointError(sorted(failures, key=lambda r: r.point.index))

    for figure in figures:
        run = runs[figure]
        for point in decompose(figure, quick):
            result = results[(figure, point.index)]
            run.rows.extend(result.rows or [])
            run.elapsed += result.elapsed
            run.points += 1
    if progress is not None:
        cpu = sum(r.elapsed for r in results.values())
        progress(
            f"{total} points in {wall:.1f}s wall "
            f"({cpu:.1f}s cpu, jobs={max(1, jobs)})"
        )
    return runs
