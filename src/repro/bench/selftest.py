"""Simulator speed self-test: cycles/second on a fixed figure-9 point.

``python -m repro.bench --selftest`` runs one pinned writeback-sweep
cell (16 KiB flushed by one thread, figure 9's mid-size point) on the
cycle-level SoC and reports how many simulated cycles the host chewed
through per wall-clock second.  The workload is fixed so the number is
comparable across machines and across commits — a sudden drop flags a
simulator slowdown the figure tolerances cannot see (results stay
identical, they just take longer).

The rate counts only the measured writeback intervals, not the dirty
setup programs, so it is a conservative (under-)estimate of raw engine
speed; that bias is constant for a fixed workload, which is all a
trend row needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.workloads.sweep import writeback_sweep

#: the pinned figure-9 cell: 16 KiB flushed line-by-line, one thread
SELFTEST_SIZE_BYTES = 16 * 1024
SELFTEST_THREADS = 1
SELFTEST_REPEATS = 3


@dataclass
class SelftestResult:
    """Sim-speed sample on the pinned workload."""

    size_bytes: int
    threads: int
    repeats: int
    median_cycles: float
    total_cycles: int
    wall_seconds: float

    @property
    def cycles_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_cycles / self.wall_seconds


def run_selftest() -> SelftestResult:
    """Run the pinned point; wall time covers the whole sweep call."""
    start = time.perf_counter()
    sweep = writeback_sweep(
        SELFTEST_SIZE_BYTES,
        threads=SELFTEST_THREADS,
        clean=False,
        repeats=SELFTEST_REPEATS,
    )
    wall = time.perf_counter() - start
    return SelftestResult(
        size_bytes=SELFTEST_SIZE_BYTES,
        threads=SELFTEST_THREADS,
        repeats=SELFTEST_REPEATS,
        median_cycles=sweep.median,
        total_cycles=int(sum(sweep.samples)),
        wall_seconds=wall,
    )


def format_selftest(result: SelftestResult) -> str:
    """One-line sim-speed row for the bench CLI."""
    return (
        f"selftest: fig-9 point ({result.size_bytes // 1024} KiB flush, "
        f"{result.threads} thread, {result.repeats} reps) "
        f"median {result.median_cycles:.0f} cycles; "
        f"{result.total_cycles} sim cycles in {result.wall_seconds:.2f}s "
        f"= {result.cycles_per_sec:,.0f} cycles/sec"
    )
