"""Simulator speed self-test: cycles/second on a fixed figure-9 point.

``python -m repro.bench --selftest`` runs one pinned writeback-sweep
cell (16 KiB flushed by one thread, figure 9's mid-size point) on the
cycle-level SoC and reports how many simulated cycles the host chewed
through per wall-clock second.  The workload is fixed so the number is
comparable across machines and across commits — a sudden drop flags a
simulator slowdown the figure tolerances cannot see (results stay
identical, they just take longer).

Two rates are reported:

* **engine-only** — every cycle the engine stepped (warmup, dirtying,
  measured writebacks, drains) over the wall time spent *inside*
  ``run_programs``/``drain``.  This is the raw simulator speed and the
  number the regression baseline tracks.
* **end-to-end** — the measured writeback cycles over the whole
  ``writeback_sweep`` call, SoC construction and program building
  included.  Kept for continuity with older logs; it understates the
  engine because the denominator bundles non-simulation work (the old
  report's bug — it timed the entire sweep call as if it were engine
  time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.workloads.sweep import writeback_sweep

#: the pinned figure-9 cell: 16 KiB flushed line-by-line, one thread
SELFTEST_SIZE_BYTES = 16 * 1024
SELFTEST_THREADS = 1
SELFTEST_REPEATS = 3


@dataclass
class SelftestResult:
    """Sim-speed sample on the pinned workload."""

    size_bytes: int
    threads: int
    repeats: int
    median_cycles: float
    total_cycles: int
    wall_seconds: float
    engine_cycles: int
    engine_seconds: float

    @property
    def cycles_per_sec(self) -> float:
        """End-to-end rate: measured cycles over the whole sweep call."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_cycles / self.wall_seconds

    @property
    def engine_cycles_per_sec(self) -> float:
        """Engine-only rate: every stepped cycle over in-engine wall time."""
        if self.engine_seconds <= 0:
            return 0.0
        return self.engine_cycles / self.engine_seconds


def run_selftest() -> SelftestResult:
    """Run the pinned point, timing engine execution separately."""
    start = time.perf_counter()
    sweep = writeback_sweep(
        SELFTEST_SIZE_BYTES,
        threads=SELFTEST_THREADS,
        clean=False,
        repeats=SELFTEST_REPEATS,
    )
    wall = time.perf_counter() - start
    return SelftestResult(
        size_bytes=SELFTEST_SIZE_BYTES,
        threads=SELFTEST_THREADS,
        repeats=SELFTEST_REPEATS,
        median_cycles=sweep.median,
        total_cycles=int(sum(sweep.samples)),
        wall_seconds=wall,
        engine_cycles=sweep.engine_cycles,
        engine_seconds=sweep.engine_seconds,
    )


def format_selftest(result: SelftestResult) -> str:
    """Two-line sim-speed report for the bench CLI."""
    return (
        f"selftest: fig-9 point ({result.size_bytes // 1024} KiB flush, "
        f"{result.threads} thread, {result.repeats} reps) "
        f"median {result.median_cycles:.0f} cycles\n"
        f"  engine-only: {result.engine_cycles} cycles in "
        f"{result.engine_seconds:.2f}s = "
        f"{result.engine_cycles_per_sec:,.0f} cycles/sec\n"
        f"  end-to-end:  {result.total_cycles} measured cycles in "
        f"{result.wall_seconds:.2f}s = {result.cycles_per_sec:,.0f} cycles/sec"
    )
