"""Benchmark CLI: ``python -m repro.bench --fig N`` / ``skipit-bench``.

Prints the rows/series of the requested evaluation figure in a
paper-style text table.  ``--quick`` shrinks sweeps for a fast sanity
pass; the defaults regenerate the full-size figure.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.bench import FIGURES
from repro.bench.format import format_table, human_size
from repro.bench.micro import MicroRow
from repro.bench.structures import ThroughputRow


def _print_micro(rows: List[MicroRow]) -> None:
    print(
        format_table(
            ["series", "size", "threads", "median cycles", "sigma"],
            [
                (
                    r.series,
                    human_size(r.size_bytes),
                    r.threads,
                    r.median_cycles,
                    r.stdev_cycles,
                )
                for r in rows
            ],
        )
    )


def _print_throughput(rows: List[ThroughputRow]) -> None:
    print(
        format_table(
            [
                "structure",
                "policy",
                "optimizer",
                "upd%",
                "Mops/s",
                "flush reqs",
                "cbo issued",
                "cbo skipped",
            ],
            [
                (
                    r.structure,
                    r.policy,
                    r.optimizer,
                    r.update_percent,
                    r.throughput_mops,
                    r.flush_requests,
                    r.cbo_issued,
                    r.cbo_skipped,
                )
                for r in rows
            ],
        )
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="skipit-bench",
        description="Regenerate the evaluation figures of 'Skip It: Take "
        "Control of Your Cache!' (ASPLOS 2024).",
    )
    parser.add_argument(
        "--fig",
        type=int,
        action="append",
        choices=sorted(FIGURES),
        help="figure number to regenerate (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps for a fast pass"
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a Markdown report of the selected figures to PATH",
    )
    args = parser.parse_args(argv)
    figures = args.fig or sorted(FIGURES)
    if args.report:
        from repro.bench.report import build_report

        text = build_report(figures, quick=args.quick)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
        return 0
    for fig in figures:
        started = time.time()
        print(f"\n=== Figure {fig} ===")
        rows = FIGURES[fig](quick=args.quick)
        if rows and isinstance(rows[0], MicroRow):
            _print_micro(rows)
        else:
            _print_throughput(rows)
        print(f"[figure {fig}: {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
