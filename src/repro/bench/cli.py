"""Benchmark CLI: ``python -m repro.bench --fig N`` / ``skipit-bench``.

Prints the rows/series of the requested evaluation figure in a
paper-style text table.  ``--quick`` shrinks sweeps for a fast sanity
pass; the defaults regenerate the full-size figure.  ``--jobs N`` fans
the independent sweep points over a process pool (results are identical
to a serial run); ``--json`` / ``--check`` write and verify
machine-readable baselines (see :mod:`repro.bench.baseline`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench import FIGURE_KINDS, FIGURES, baseline
from repro.bench.format import format_table, human_size
from repro.bench.micro import MicroRow
from repro.bench.range import RangeRow
from repro.bench.serve import ServeRow
from repro.bench.shared import SharedStoreRow
from repro.bench.store import StoreRow
from repro.bench.structures import ThroughputRow
from repro.bench.txn import TxnRow


def _print_micro(rows: List[MicroRow]) -> None:
    print(
        format_table(
            ["series", "size", "threads", "median cycles", "sigma"],
            [
                (
                    r.series,
                    human_size(r.size_bytes),
                    r.threads,
                    r.median_cycles,
                    r.stdev_cycles,
                )
                for r in rows
            ],
        )
    )


def _print_throughput(rows: List[ThroughputRow]) -> None:
    print(
        format_table(
            [
                "structure",
                "policy",
                "optimizer",
                "upd%",
                "Mops/s",
                "flush reqs",
                "cbo issued",
                "cbo skipped",
            ],
            [
                (
                    r.structure,
                    r.policy,
                    r.optimizer,
                    r.update_percent,
                    r.throughput_mops,
                    r.flush_requests,
                    r.cbo_issued,
                    r.cbo_skipped,
                )
                for r in rows
            ],
        )
    )


def _print_store(rows: List[StoreRow]) -> None:
    print(
        format_table(
            [
                "optimizer",
                "gc",
                "threads",
                "Mops/s",
                "fences",
                "cbo issued",
                "cbo skipped",
                "wal recs",
                "mean batch",
            ],
            [
                (
                    r.optimizer,
                    r.group_commit,
                    r.threads,
                    r.throughput_mops,
                    r.fences,
                    r.cbo_issued,
                    r.cbo_skipped,
                    r.wal_records,
                    round(r.mean_batch, 2),
                )
                for r in rows
            ],
        )
    )


def _print_shared(rows: List[SharedStoreRow]) -> None:
    print(
        format_table(
            [
                "optimizer",
                "threads",
                "gc",
                "Mops/s",
                "fences/kop",
                "ack p50",
                "ack p99",
                "clamped",
                "takeovers",
                "mean batch",
            ],
            [
                (
                    r.optimizer,
                    r.threads,
                    r.group_commit,
                    r.throughput_mops,
                    round(r.fences_per_kop, 2),
                    r.ack_p50,
                    r.ack_p99,
                    r.ack_clamped,
                    r.leader_takeovers,
                    round(r.mean_batch, 2),
                )
                for r in rows
            ],
        )
    )
    clamped = sum(r.ack_clamped for r in rows)
    if clamped:
        print(
            f"WARNING: {clamped} ack latencies were clamped to zero "
            "(cross-thread virtual-clock skew); the p50/p99 columns "
            "understate submit->durable latency for those ops"
        )


def _print_serve(rows: List[ServeRow]) -> None:
    print(
        format_table(
            [
                "optimizer",
                "load",
                "gen",
                "done",
                "shed",
                "goodput",
                "ack p50",
                "ack p99",
                "queue p99",
                "bp",
                "snap",
            ],
            [
                (
                    r.optimizer,
                    r.offered_load,
                    r.generated,
                    r.completed,
                    r.shed,
                    round(r.throughput_mops, 3),
                    r.ack_p50,
                    r.ack_p99,
                    r.queue_p99,
                    r.backpressure_engagements,
                    r.snapshot_reads,
                )
                for r in rows
            ],
        )
    )
    clamped = sum(r.ack_clamped for r in rows)
    if clamped:
        print(
            f"WARNING: {clamped} ack latencies were clamped to zero "
            "(cross-thread virtual-clock skew); the p50/p99 columns "
            "understate arrival->durable latency for those requests"
        )


def _print_txn(rows: List[TxnRow]) -> None:
    print(
        format_table(
            [
                "optimizer",
                "txn",
                "gc",
                "committed",
                "aborted",
                "Mtxn/s",
                "fences/txn",
                "ack p50",
                "ack p99",
                "abort p50",
                "abort p99",
            ],
            [
                (
                    r.optimizer,
                    r.txn_size,
                    r.group_commit,
                    r.committed,
                    r.aborted,
                    round(r.throughput_mtps, 3),
                    round(r.fences_per_txn, 3),
                    r.ack_p50,
                    r.ack_p99,
                    r.abort_p50,
                    r.abort_p99,
                )
                for r in rows
            ],
        )
    )
    clamped = sum(r.ack_clamped for r in rows)
    if clamped:
        print(
            f"WARNING: {clamped} ack latencies were clamped to zero "
            "(cross-thread virtual-clock skew); the p50/p99 columns "
            "understate submit->durable latency for those transactions"
        )


def _print_range(rows: List[RangeRow]) -> None:
    print(
        format_table(
            [
                "series",
                "mode",
                "optimizer",
                "size",
                "sweep cyc",
                "resweep cyc",
                "Mops/s",
                "fences",
                "flush reqs",
                "cbo",
                "cbo.range",
                "fences/kop",
            ],
            [
                (
                    r.series,
                    r.mode,
                    r.optimizer or "-",
                    human_size(r.size_bytes) if r.size_bytes else "-",
                    r.sweep_cycles,
                    r.resweep_cycles,
                    round(r.throughput_mops, 3),
                    r.fences,
                    r.flush_requests,
                    r.cbo_issued,
                    r.cbo_range_issued,
                    round(r.fences_per_kop, 2),
                )
                for r in rows
            ],
        )
    )


#: row-kind tag -> printer; the tag comes from FIGURE_KINDS, not from
#: sniffing which fields a row happens to carry
_PRINTERS = {
    "micro": _print_micro,
    "throughput": _print_throughput,
    "store": _print_store,
    "shared": _print_shared,
    "serve": _print_serve,
    "txn": _print_txn,
    "range": _print_range,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="skipit-bench",
        description="Regenerate the evaluation figures of 'Skip It: Take "
        "Control of Your Cache!' (ASPLOS 2024).",
    )
    parser.add_argument(
        "--fig",
        type=int,
        action="append",
        choices=sorted(FIGURES),
        help="figure number to regenerate (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps for a fast pass"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan sweep points over N worker processes (0 = all cores); "
        "results are identical to a serial run",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the rows/metrics of the selected figures to PATH "
        "as a machine-readable baseline",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare the run against the committed baseline at PATH; "
        "exit non-zero on drift",
    )
    parser.add_argument(
        "--check-tol",
        type=float,
        default=None,
        metavar="REL",
        help=f"relative tolerance band for --check "
        f"(default: {baseline.DEFAULT_REL_TOL})",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a Markdown report of the selected figures to PATH",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="report simulator speed (cycles/sec) on a fixed fig-9 point "
        "and exit",
    )
    parser.add_argument(
        "--with-selftest",
        action="store_true",
        help="also sample simulator speed and record it in the --json "
        "baseline (regress compares it with a generous band)",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        from repro.bench.selftest import format_selftest, run_selftest

        print(format_selftest(run_selftest()))
        return 0
    figures = sorted(set(args.fig)) if args.fig else sorted(FIGURES)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    if args.report:
        from repro.bench.report import build_report

        text = build_report(figures, quick=args.quick, jobs=jobs)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
        return 0

    from repro.bench.runner import run_figures

    runs = run_figures(figures, quick=args.quick, jobs=jobs, progress=print)
    for fig in figures:
        run = runs[fig]
        print(f"\n=== Figure {fig} ===")
        _PRINTERS[FIGURE_KINDS[fig]](run.rows)
        print(f"[figure {fig}: {run.points} points, {run.elapsed:.1f}s]")

    status = 0
    selftest = None
    if args.with_selftest:
        from repro.bench.selftest import format_selftest, run_selftest

        sample = run_selftest()
        print("\n" + format_selftest(sample))
        selftest = baseline.selftest_record(sample)
    document = baseline.snapshot(
        runs, quick=args.quick, jobs=jobs, selftest=selftest
    )
    if args.json:
        baseline.write(args.json, document)
        print(f"\nbaseline written to {args.json}")
    if args.check:
        rel_tol = (
            args.check_tol if args.check_tol is not None else baseline.DEFAULT_REL_TOL
        )
        problems = baseline.check(
            document, baseline.load(args.check), rel_tol=rel_tol, figures=figures
        )
        if problems:
            print(f"\nBASELINE CHECK FAILED against {args.check}:")
            for problem in problems:
                print(f"  - {problem}")
            status = 1
        else:
            print(f"\nbaseline check passed against {args.check}")
    return status


if __name__ == "__main__":
    sys.exit(main())
