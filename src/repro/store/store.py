""":class:`DurableStore` — the facade tying WAL, commit, checkpoint,
recovery together over one per-thread :class:`~repro.persist.api.PMemView`.

The store does its own explicit cleans and fences (that is the whole
point), so it is meant to run with the ``none`` persistence policy;
automatic policies would add per-access flushes on top and drown the
group-commit signal.

Durability contract
-------------------
``put``/``delete`` return a :class:`CommitTicket`.  The operation is
*durable* once ``ticket.acked`` is True (its epoch's fence retired).
Before that it may or may not survive a crash — group commit applies
epochs atomically, so recovery surfaces either the whole batch or none
of it, and never anything beyond the last *initiated* epoch marker.
``get`` reads the memtable: read-your-own-writes, including unacked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.persist.api import PMemView
from repro.persist.heap import SimHeap
from repro.sim.stats import Histogram, StatCounter
from repro.store.checkpoint import CheckpointManager
from repro.store.commit import GroupCommitter
from repro.store.layout import (
    OP_DELETE,
    OP_PUT,
    OP_TXN,
    OP_TXN_COMMIT,
    RECORD_FIELDS,
    StoreLayout,
)
from repro.store.recovery import RecoveredState
from repro.store.txn import Transaction, TxnTicket
from repro.store.wal import WriteAheadLog


@dataclass
class CommitTicket:
    """Handle for one submitted operation."""

    lsn: int
    acked: bool = False
    #: causal trace id assigned by an attached StoreTracer (None untraced)
    trace_id: Optional[int] = None


class DurableStore:
    """A crash-consistent KV store (keys and values are positive ints)."""

    def __init__(
        self,
        heap: SimHeap,
        view: PMemView,
        *,
        log_capacity: int = 512,
        batch_size: int = 8,
        cycle_budget: Optional[int] = None,
        checkpoint_every: int = 0,
        num_buckets: int = 64,
        layout: Optional[StoreLayout] = None,
        probe: Optional[Callable[[str], None]] = None,
        ranged_seal: bool = False,
    ) -> None:
        stride = view.optimizer.field_stride
        if layout is None:
            superblock = heap.alloc_region(heap.line_bytes)
            log_base = heap.alloc_region(
                log_capacity * RECORD_FIELDS * stride
            )
            layout = StoreLayout(
                superblock=superblock,
                log_base=log_base,
                log_capacity=log_capacity,
                field_stride=stride,
                line_bytes=heap.line_bytes,
                num_buckets=num_buckets,
            )
        elif layout.field_stride != stride:
            raise ValueError(
                "layout stride does not match the view's optimizer"
            )
        # a batch (plus its marker and one op of slack) must fit the log,
        # or the capacity check below can never free enough slots
        if batch_size + 2 > layout.log_capacity:
            raise ValueError(
                f"batch_size {batch_size} does not fit a "
                f"{layout.log_capacity}-slot log"
            )
        self.heap = heap
        self.view = view
        self.layout = layout
        #: policy knob: seal epochs (and publish checkpoints) with
        #: CBO.RANGE sweeps instead of per-line clean loops + fences
        self.ranged_seal = ranged_seal
        self.wal = WriteAheadLog(layout)
        self.committer = GroupCommitter(self, batch_size, cycle_budget)
        self.checkpointer = CheckpointManager(self)
        self.checkpoint_every = checkpoint_every
        self.memtable: Dict[int, int] = {}
        self.acked_lsn = 0  # last durable epoch marker
        self.initiated_lsn = 0  # last epoch marker written to cache
        self.watermark = 0  # log below this is checkpointed
        self.stats = StatCounter()
        self.batch_sizes = Histogram()
        self.mutants: Set[str] = set()  # seeded-bug flags (tests only)
        self.probe: Optional[Callable[[str], None]] = probe
        #: causal tracer (repro.obs.trace.StoreTracer); None = zero-cost
        self.tracer = None
        self._commits_at_checkpoint = 0
        self.txn_counter = 0  # txn ids, monotonic per store instance

    # ---------------------------------------------------------- internals
    def probe_point(self, name: str) -> None:
        """Crash-sweep hook: fired at every protocol boundary."""
        if self.probe is not None:
            self.probe(name)

    def _ensure_capacity(self, span: int = 1) -> None:
        # slots in use after the next *span* appends (watermark,
        # next_lsn + span - 1] plus headroom for the batch's eventual
        # COMMIT marker
        if (
            self.wal.next_lsn + span - self.watermark
            > self.layout.log_capacity
        ):
            self.checkpoint()

    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_every:
            return
        commits = self.stats.get("store_commits")
        if commits - self._commits_at_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def _submit(self, op: int, key: int, value: int) -> CommitTicket:
        if key <= 0:
            raise ValueError("keys must be positive integers")
        self._ensure_capacity()
        tracer = self.tracer
        if tracer is not None:
            trace_id = tracer.op_begin(0, self.view.ctx.now)
        lsn = self.wal.append(self.view, op, key, value)
        if op == OP_PUT:
            self.memtable[key] = value
        else:
            self.memtable.pop(key, None)
        ticket = CommitTicket(lsn)
        if tracer is not None:
            tracer.op_submitted(trace_id, ticket, self.view.ctx.now)
        self.probe_point("op_submitted")
        self.committer.submit(ticket)
        self._maybe_checkpoint()
        return ticket

    # ---------------------------------------------------------------- API
    def put(self, key: int, value: int) -> CommitTicket:
        if value <= 0:
            raise ValueError("values must be positive integers")
        self.stats.inc("store_puts")
        return self._submit(OP_PUT, key, value)

    def delete(self, key: int) -> CommitTicket:
        self.stats.inc("store_deletes")
        return self._submit(OP_DELETE, key, 0)

    def get(self, key: int) -> Optional[int]:
        self.stats.inc("store_gets")
        return self.memtable.get(key)

    # ------------------------------------------------------- transactions
    def begin(self) -> Transaction:
        """Open a buffered multi-key transaction (see repro.store.txn)."""
        return Transaction(self, 0)

    def _txn_read(self, tid: int, key: int) -> Optional[int]:
        """Fall-through read for a transaction buffer miss."""
        self.stats.inc("store_gets")
        return self.memtable.get(key)

    def _commit_txn(self, txn: Transaction) -> TxnTicket:
        """Publish a transaction's write set as one atomic log run.

        The run — ``n`` OP_TXN records plus one OP_TXN_COMMIT record,
        written last — is reserved contiguously, appended, and handed to
        the group committer as **one** ticket: the epoch's clean
        sequence and single fence cover the whole run, and recovery
        replays it iff the commit record (and its epoch marker)
        survives.
        """
        self.stats.inc("store_txns")
        self.txn_counter += 1
        txn_id = self.txn_counter
        writes = txn.writes
        if not writes:
            # nothing to log: durable by vacuity, covers no slots
            return TxnTicket(
                lsn=self.acked_lsn,
                txn_id=txn_id,
                first_lsn=self.acked_lsn + 1,
                records=0,
                acked=True,
            )
        span = len(writes) + 1  # payload run + TXN_COMMIT record
        if span + 2 > self.layout.log_capacity:
            raise ValueError(
                f"transaction of {len(writes)} writes does not fit a "
                f"{self.layout.log_capacity}-slot log"
            )
        self._ensure_capacity(span)
        view = self.view
        tracer = self.tracer
        if tracer is not None:
            trace_id = tracer.op_begin(0, view.ctx.now)
        first = self.wal.reserve_run(view, span)
        self.probe_point("txn_reserved")
        lsn = first
        for key, value in writes.items():
            self.wal.append_at(view, lsn, OP_TXN, key, value)
            lsn += 1
            self.probe_point("txn_record_appended")
        commit_lsn = first + len(writes)
        self.wal.append_at(
            view, commit_lsn, OP_TXN_COMMIT, txn_id, len(writes)
        )
        for key, value in writes.items():
            if value:
                self.memtable[key] = value
            else:
                self.memtable.pop(key, None)
        self.stats.inc("store_txn_records", len(writes))
        ticket = TxnTicket(
            lsn=commit_lsn,
            txn_id=txn_id,
            first_lsn=first,
            records=len(writes),
        )
        if tracer is not None:
            tracer.op_submitted(trace_id, ticket, view.ctx.now)
        if "txn_commit_before_fence" in self.mutants:
            # seeded bug: the commit record exists only in cache, yet
            # the client is told the transaction is durable — a crash
            # before the epoch's fence loses an acknowledged txn
            ticket.acked = True
            self.acked_lsn = max(self.acked_lsn, commit_lsn)
        self.probe_point("txn_committed")
        self.committer.submit(ticket)
        self._maybe_checkpoint()
        return ticket

    def sync(self) -> None:
        """Seal the pending batch (if any); durable on return."""
        self.committer.commit()

    def checkpoint(self) -> None:
        """Sync, then compact the committed state into a snapshot."""
        self.sync()
        self.checkpointer.checkpoint()
        self._commits_at_checkpoint = self.stats.get("store_commits")

    def reset_measurement(self) -> None:
        """Zero every measurement-facing counter and the thread clock.

        Benchmarks prefill and checkpoint before measuring; this discards
        the prefill's traffic (stats, WAL counters, flush requests) and
        rewinds the virtual clock so throughput starts from cycle zero.
        Durable state (log, memtable, LSNs) is untouched.
        """
        self.stats.reset()
        # store_commits restarts from zero, so the periodic-checkpoint
        # baseline must too (no-op when checkpoint_every is disabled)
        self._commits_at_checkpoint = 0
        self.batch_sizes = Histogram()
        self.wal.records_appended = 0
        self.wal.bytes_appended = 0
        self.view.flush_requests = 0
        self.view.ctx.now = 0
        self.view.ctx.outstanding.clear()

    # ------------------------------------------------------------ restart
    def adopt(self, state: RecoveredState) -> None:
        """Resume from a recovered image (same layout, same regions).

        Erases the stale log tail first: pre-crash records beyond
        ``applied_lsn`` carry LSNs this instance will hand out again,
        and a CRC-valid stale record must never satisfy a future
        replay.  Then seals recovery with a fresh checkpoint so the
        durable watermark is at ``applied_lsn`` before new traffic.
        """
        if self.memtable or self.wal.next_lsn != 1:
            raise RuntimeError("adopt() requires a fresh store instance")
        self.memtable = dict(state.items)
        self.acked_lsn = state.applied_lsn
        self.initiated_lsn = state.applied_lsn
        self.watermark = state.checkpoint_lsn
        self.wal.next_lsn = state.applied_lsn + 1
        stale = self.layout.log_capacity - (
            state.applied_lsn - state.checkpoint_lsn
        )
        self.wal.invalidate_slots(self.view, state.applied_lsn + 1, stale)
        self.view.ctx.fence()
        self.stats.inc("store_fences")
        self.checkpoint()
