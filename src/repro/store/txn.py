""":mod:`repro.store.txn` — multi-key atomic transactions on the WAL.

A :class:`Transaction` buffers reads and writes client-side; nothing
touches the log until :meth:`Transaction.commit`, which hands the
buffered write set to the owning store's ``_commit_txn``.  The commit
path appends the write set as a contiguous run of ``OP_TXN`` records
followed by one ``OP_TXN_COMMIT`` record (written last, CRC-covered),
so recovery replays the transaction iff its commit record survives —
a torn multi-record tail rolls the whole transaction back, never a
prefix of it.

On the shared log the run is CAS-reserved in one bump
(:meth:`repro.store.shared.SharedWriteAheadLog.reserve_run`), so the
records of a transaction can never interleave with another thread's
appends; one epoch seal + one clean sequence + one fence then makes
the whole transaction durable, exactly like any other batch member —
a transaction is *one ticket* toward the epoch trigger.

Durability contract: the transaction is durable once
``ticket.acked`` is True.  Before that, recovery surfaces either every
write of the transaction or none of them (the stage-8
:class:`repro.verify.txn` oracle enforces exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TxnTicket:
    """Handle for one committed transaction.

    ``lsn`` is the OP_TXN_COMMIT record's LSN — the single point the
    durability contract keys off (session floors, ack bookkeeping).
    ``first_lsn`` .. ``lsn`` is the contiguous slot run the transaction
    occupies (``records`` payload records plus the commit record).
    """

    lsn: int
    txn_id: int
    first_lsn: int
    records: int
    tid: int = 0
    submit_now: int = 0
    acked: bool = False
    durable_now: Optional[int] = None
    #: causal trace id assigned by an attached StoreTracer (None untraced)
    trace_id: Optional[int] = None


def ticket_lsns(ticket) -> range:
    """Every log slot a ticket covers, in append order.

    Plain :class:`~repro.store.store.CommitTicket` /
    :class:`~repro.store.shared.SharedCommitTicket` cover one slot;
    a :class:`TxnTicket` covers its whole contiguous run.  The group
    committer and epoch sealer clean through this, so a transaction's
    payload records are cleaned with the rest of the epoch.
    """
    first = getattr(ticket, "first_lsn", None)
    if first is None:
        return range(ticket.lsn, ticket.lsn + 1)
    return range(first, ticket.lsn + 1)


class TxnAborted(RuntimeError):
    """The transaction was rolled back client-side and cannot commit."""


class Transaction:
    """A buffered multi-key read/write set with all-or-nothing commit.

    Reads see the transaction's own buffered writes first
    (read-your-own-buffered-writes), then fall through to the store.
    ``put``/``delete`` never touch the log or the memtable; only
    :meth:`commit` publishes, atomically.  :meth:`abort` discards the
    buffer — a client-side rollback that costs nothing durable.
    """

    def __init__(self, store, tid: int = 0) -> None:
        self.store = store
        self.tid = tid
        #: key -> value (0 = delete), insertion-ordered = apply order
        self.writes: Dict[int, int] = {}
        self.reads: List[Tuple[int, Optional[int]]] = []
        self.done = False

    # ---------------------------------------------------------- buffering
    def _check_open(self) -> None:
        if self.done:
            raise TxnAborted("transaction already committed or aborted")

    def get(self, key: int) -> Optional[int]:
        """Read through the buffer: own writes first, then the store."""
        self._check_open()
        if key in self.writes:
            value = self.writes[key]
            result = value if value else None
        else:
            result = self.store._txn_read(self.tid, key)
        self.reads.append((key, result))
        return result

    def put(self, key: int, value: int) -> None:
        self._check_open()
        if key <= 0:
            raise ValueError("keys must be positive integers")
        if value <= 0:
            raise ValueError("values must be positive integers")
        self.writes[key] = value

    def delete(self, key: int) -> None:
        self._check_open()
        if key <= 0:
            raise ValueError("keys must be positive integers")
        self.writes[key] = 0

    # ------------------------------------------------------------ outcome
    def commit(self) -> TxnTicket:
        """Publish the write set atomically; returns the txn ticket.

        Durable once ``ticket.acked`` — until then a crash may roll the
        whole transaction back, but never a part of it.  An empty write
        set commits immediately (nothing to log).
        """
        self._check_open()
        self.done = True
        return self.store._commit_txn(self)

    def abort(self) -> None:
        """Discard the buffer; nothing was logged, nothing to undo."""
        self._check_open()
        self.done = True
        self.writes.clear()
        store = self.store
        store.stats.inc("store_txn_aborts")


__all__ = ["Transaction", "TxnAborted", "TxnTicket", "ticket_lsns"]
