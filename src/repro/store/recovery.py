"""Recovery: rebuild store state from a raw crash image.

Pure functions over ``read(address) -> int`` — typically a
:func:`repro.persist.structures.base.persisted_reader` over
``TimingSystem.persisted_image()``, which already strips
link-and-persist mark bits, so recovery sees logical values.

The sequence is superblock → checkpoint → log replay:

1. read the superblock word; 0 means no checkpoint — start empty with
   watermark 0;
2. validate the checkpoint descriptor (magic + CRC; a torn descriptor
   is unrecoverable by construction, because the flip only lands after
   the descriptor's fence — seeing one means the invariant broke) and
   walk the snapshot map;
3. replay log slots from ``watermark + 1``: each slot must carry the
   expected LSN, a valid CRC and a known opcode, else the log ends
   there (torn or stale tail — expected after a crash, not an error);
   payload records buffer, a ``COMMIT`` marker applies the buffer.

Operations whose epoch marker never became durable are discarded —
that is group commit's atomicity: all of a batch or none of it.

Transactions nest one level deeper: ``OP_TXN`` records buffer in their
own transaction buffer, and only the transaction's ``OP_TXN_COMMIT``
record (contiguous, written last) folds them into the epoch buffer —
so a transaction replays iff its commit record survives *and* its
epoch marker replays.  A torn tail that cuts the run before the commit
record rolls the whole transaction back (``rolled_back_txns``), never
a prefix of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.store.checkpoint import read_map
from repro.store.layout import (
    D_BUCKETS,
    D_CRC,
    D_HEADS,
    D_MAGIC,
    D_WATERMARK,
    DESCRIPTOR_MAGIC,
    F_CRC,
    F_KEY,
    F_LSN,
    F_OP,
    F_VALUE,
    OP_COMMIT,
    OP_DELETE,
    OP_PUT,
    OP_TXN,
    OP_TXN_COMMIT,
    StoreLayout,
    descriptor_crc,
    record_crc,
)

Reader = Callable[[int], int]


class RecoveryError(RuntimeError):
    """The image violates an invariant recovery relies on."""


@dataclass
class RecoveredState:
    """What came back from the image."""

    items: Dict[int, int] = field(default_factory=dict)
    checkpoint_lsn: int = 0  # watermark of the checkpoint used
    applied_lsn: int = 0  # last LSN whose effects are in `items`
    replayed_epochs: int = 0
    replayed_records: int = 0
    replayed_txns: int = 0  # transactions whose commit record replayed
    rolled_back_txns: int = 0  # torn runs discarded whole
    stop_reason: str = "empty"  # why replay ended


def _read_checkpoint(
    read: Reader, layout: StoreLayout
) -> Tuple[Dict[int, int], int]:
    pointer = read(layout.superblock)
    if pointer == 0:
        return {}, 0
    stride = layout.field_stride
    magic = read(pointer + D_MAGIC * stride)
    if magic != DESCRIPTOR_MAGIC:
        raise RecoveryError(
            f"superblock points at 0x{pointer:x} with bad magic 0x{magic:x}"
        )
    heads = read(pointer + D_HEADS * stride)
    buckets = read(pointer + D_BUCKETS * stride)
    watermark = read(pointer + D_WATERMARK * stride)
    crc = read(pointer + D_CRC * stride)
    if crc != descriptor_crc(heads, buckets, watermark):
        raise RecoveryError(f"checkpoint descriptor at 0x{pointer:x}: bad CRC")
    if buckets < 1 or buckets > 1 << 20:
        raise RecoveryError(f"checkpoint descriptor: absurd bucket count {buckets}")
    return read_map(read, heads, buckets, layout), watermark


def recover(
    read: Reader,
    layout: StoreLayout,
    *,
    check_lsn: bool = True,
    txn_partial: bool = False,
) -> RecoveredState:
    """Rebuild KV state from a crash image.

    ``check_lsn=False`` is the seeded ``store_replay_trusts_crc``
    mutant: replay accepts any CRC-valid record in the next slot,
    ignoring the LSN chain — after the log wraps, stale records from an
    earlier lap (self-consistent CRCs and all) resurface.  The crash
    sweep must catch that.

    ``txn_partial=True`` is the seeded ``txn_partial_replay`` mutant:
    instead of rolling a torn transaction run back whole, buggy replay
    applies the surviving prefix of its ``OP_TXN`` records directly —
    exactly the partial-transaction state the stage-8 oracle exists to
    reject.
    """
    items, watermark = _read_checkpoint(read, layout)
    state = RecoveredState(
        items=items, checkpoint_lsn=watermark, applied_lsn=watermark
    )
    state.stop_reason = "checkpoint_only"

    pending: List[Tuple[int, int, int]] = []  # (op, key, value)
    txn_buffer: List[Tuple[int, int]] = []  # (key, value); 0 = delete

    def discard_txn() -> None:
        """Roll a commit-record-less transaction run back whole."""
        if not txn_buffer:
            return
        if txn_partial:
            # seeded bug: the surviving prefix is applied anyway
            for tkey, tvalue in txn_buffer:
                if tvalue:
                    state.items[tkey] = tvalue
                else:
                    state.items.pop(tkey, None)
        state.rolled_back_txns += 1
        txn_buffer.clear()

    expected = watermark + 1
    for _ in range(layout.log_capacity):
        index = layout.slot_of(expected)
        lsn = read(layout.field_addr(index, F_LSN))
        op = read(layout.field_addr(index, F_OP))
        key = read(layout.field_addr(index, F_KEY))
        value = read(layout.field_addr(index, F_VALUE))
        crc = read(layout.field_addr(index, F_CRC))
        if lsn == 0:
            state.stop_reason = "empty_slot"
            break
        if check_lsn and lsn != expected:
            state.stop_reason = "lsn_mismatch"
            break
        if crc != record_crc(lsn, op, key, value):
            state.stop_reason = "bad_crc"
            break
        if op == OP_PUT:
            pending.append((op, key, value))
        elif op == OP_DELETE:
            pending.append((op, key, 0))
        elif op == OP_TXN:
            txn_buffer.append((key, value))
        elif op == OP_TXN_COMMIT:
            # KEY is the txn id (not replayed), VALUE the run length;
            # contiguous reservation guarantees the buffer holds exactly
            # this transaction's records — anything else is corruption
            if value != len(txn_buffer):
                state.stop_reason = "txn_mismatch"
                break
            for tkey, tvalue in txn_buffer:
                if tvalue:
                    pending.append((OP_PUT, tkey, tvalue))
                else:
                    pending.append((OP_DELETE, tkey, 0))
            txn_buffer.clear()
            state.replayed_txns += 1
        elif op == OP_COMMIT:
            # an epoch marker can never land inside a transaction run
            # (the run is appended atomically before the sealer sees
            # its ticket); a dangling buffer here means a stale tail
            discard_txn()
            for pop, pkey, pvalue in pending:
                if pop == OP_PUT:
                    state.items[pkey] = pvalue
                else:
                    state.items.pop(pkey, None)
            pending.clear()
            state.applied_lsn = expected
            state.replayed_epochs += 1
        else:
            state.stop_reason = "bad_op"
            break
        state.replayed_records += 1
        expected += 1
    else:
        state.stop_reason = "log_full"
    discard_txn()
    return state
