"""repro.store — a crash-consistent KV store on the CBO/Skip-It stack.

The paper argues that user-controlled writebacks make application-level
persistence cheap; this package is the application.  A durable
key-value store built from the repo's own primitives:

* :mod:`repro.store.layout` — on-media layout: fixed-size log records
  (CRC + monotonic LSN), superblock, checkpoint descriptor.
* :mod:`repro.store.wal` — the write-ahead log, written through a
  :class:`~repro.persist.api.PMemView` and sealed with CBO + fence.
* :mod:`repro.store.commit` — group commit: N operations (or a cycle
  budget) coalesced into one clean+fence epoch, amortizing the fence
  and exposing the Skip-It win on log-tail rewrites.
* :mod:`repro.store.checkpoint` — memtable compaction into a persistent
  hash-table snapshot behind an atomically flipped superblock pointer.
* :mod:`repro.store.recovery` — superblock → checkpoint → log replay,
  tolerant of torn / invalid-CRC tail records.
* :mod:`repro.store.store` — :class:`DurableStore`, tying it together.
* :mod:`repro.store.shared` — :class:`SharedLogStore`: N threads on one
  shared WAL (CAS-reserved slots), epochs sealed by a leader with one
  cross-thread fence, ack latency as the headline metric.
* :mod:`repro.store.txn` — :class:`Transaction`: buffered multi-key
  read/write sets committed as one contiguous OP_TXN run sealed by a
  per-txn OP_TXN_COMMIT record; all-or-nothing across crashes.
"""

from repro.store.layout import (
    OP_COMMIT,
    OP_DELETE,
    OP_PUT,
    OP_TXN,
    OP_TXN_COMMIT,
    RECORD_FIELDS,
    StoreLayout,
    record_crc,
)
from repro.store.recovery import RecoveredState, RecoveryError, recover
from repro.store.shared import (
    EpochSealer,
    SharedCommitTicket,
    SharedLogStore,
    SharedWriteAheadLog,
    StoreHandle,
)
from repro.store.store import CommitTicket, DurableStore
from repro.store.txn import Transaction, TxnAborted, TxnTicket, ticket_lsns

__all__ = [
    "CommitTicket",
    "DurableStore",
    "EpochSealer",
    "SharedCommitTicket",
    "SharedLogStore",
    "SharedWriteAheadLog",
    "StoreHandle",
    "Transaction",
    "TxnAborted",
    "TxnTicket",
    "OP_COMMIT",
    "OP_DELETE",
    "OP_PUT",
    "OP_TXN",
    "OP_TXN_COMMIT",
    "RECORD_FIELDS",
    "RecoveredState",
    "RecoveryError",
    "StoreLayout",
    "record_crc",
    "recover",
    "ticket_lsns",
]
