""":mod:`repro.store.shared` — one log, N threads, one fence per epoch.

The sharded baseline (:mod:`repro.workloads.store`) gives every thread a
private :class:`~repro.store.store.DurableStore`, so every thread pays
its own clean sequence and fence once per batch — N threads, N fences
per group-commit interval.  That is exactly the redundant-persist
traffic the paper exists to eliminate, just moved up a layer.

This module shares the log instead:

* **Shared WAL** — all threads append CRC+LSN records into one circular
  log.  Slot reservation is a CAS-bumped tail word on the shared cache
  hierarchy (:class:`SharedWriteAheadLog`), so reservation traffic — the
  tail line bouncing between L1s — is simulated and charged, not
  assumed.  Records from different threads interleave in LSN order.
* **Leader-based sealing** — an :class:`EpochSealer` accumulates every
  thread's :class:`SharedCommitTicket`.  When the epoch trigger fires
  (``batch_size`` ops *per thread*, i.e. ``batch_size × threads``
  records, or a cycle budget), the **leader** thread writes one COMMIT
  marker covering all threads' records, issues one clean sequence and
  **one fence**, then acks every ticket — N threads' fences collapse
  into one.  If the leader does not show up (it may be read-only), a
  follower takes leadership over with a CAS on the shared leader word
  and seals in its place (election/handoff).
* **Ack latency** — the price of helped completion is that a thread's
  op becomes durable on *someone else's* fence.  Every ticket records
  submit→durable cycles; per-thread histograms
  (:attr:`SharedLogStore.ack_latency`) are the subsystem's headline
  metric, exported as obs histograms with p50/p99 summaries.

Durability contract, recovery format, checkpointing and the journal
prefix oracle are unchanged from the private-log store: epochs are
atomic, recovery replays the shared log in LSN order (interleaved
epochs replay exactly like single-threaded ones, because the CAS tail
makes LSN order the submission order), and
:func:`repro.store.recovery.recover` works on the shared log unmodified.

Virtual-time note: scheduler steps are atomic, so the tail CAS never
*fails* in the model — it buys the coherence traffic and latency of the
contended line, while atomicity comes from the step granularity.  The
same holds for the leadership CAS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.persist.api import PMemView
from repro.persist.heap import SimHeap
from repro.sim.stats import Histogram, StatCounter
from repro.store.checkpoint import CheckpointManager
from repro.store.layout import (
    OP_COMMIT,
    OP_DELETE,
    OP_PUT,
    OP_TXN,
    OP_TXN_COMMIT,
    RECORD_FIELDS,
    StoreLayout,
)
from repro.store.recovery import RecoveredState
from repro.store.txn import Transaction, TxnTicket, ticket_lsns
from repro.store.wal import WriteAheadLog


@dataclass
class SharedCommitTicket:
    """Handle for one submitted operation on the shared log.

    ``submit_now`` is the submitting thread's clock at append time;
    ``durable_now`` is the sealing thread's clock when the epoch's fence
    retired.  Their difference is the ack latency the subsystem reports.
    """

    lsn: int
    tid: int
    submit_now: int
    acked: bool = False
    durable_now: Optional[int] = None
    #: causal trace id assigned by an attached StoreTracer (None untraced)
    trace_id: Optional[int] = None


class SharedWriteAheadLog(WriteAheadLog):
    """A WAL whose tail is reserved with a CAS on shared memory.

    ``tail_addr`` holds the last reserved LSN; every append CAS-bumps it
    through the appending thread's view, so the tail line migrates
    between L1s and the reservation cost scales with contention.
    ``next_lsn`` mirrors the durable word for cheap capacity checks.
    """

    def __init__(self, layout: StoreLayout, tail_addr: int) -> None:
        super().__init__(layout)
        self.tail_addr = tail_addr
        self.tail_cas_failures = 0

    def reserve(self, view: PMemView) -> int:
        current = view.read(self.tail_addr)
        while not view.cas(self.tail_addr, current, current + 1):
            # unreachable under atomic scheduler steps, but the retry
            # loop is the honest shape of the protocol
            self.tail_cas_failures += 1
            current = view.read(self.tail_addr)
        lsn = current + 1
        self.next_lsn = lsn + 1
        return lsn

    def reserve_run(self, view: PMemView, count: int) -> int:
        """Claim *count* contiguous slots with **one** CAS bump.

        This is what makes a shared-log transaction's records
        contiguous: the whole run (payloads plus the TXN_COMMIT slot)
        is reserved atomically, so no other thread's append can land
        inside it.
        """
        if count < 1:
            raise ValueError("reserve_run needs at least one slot")
        current = view.read(self.tail_addr)
        while not view.cas(self.tail_addr, current, current + count):
            self.tail_cas_failures += 1
            current = view.read(self.tail_addr)
        first = current + 1
        self.next_lsn = first + count
        return first

    def reset_tail(self, view: PMemView, lsn: int) -> None:
        """Re-point the tail word after adoption (transient state)."""
        view.write(self.tail_addr, lsn)
        self.next_lsn = lsn + 1


class EpochSealer:
    """Leader-based cross-thread group commit.

    The epoch trigger is ``batch_size`` operations *per thread*: an
    epoch carries roughly ``batch_size × threads`` records and is sealed
    with one marker, one clean sequence and one fence — the same
    batching delay per thread as the sharded baseline at the same
    ``batch_size``, divided by N fences.

    Sealing is the leader's job.  A follower whose submit fires the
    trigger defers (counted in ``store_seals_deferred``); once the
    backlog exceeds the trigger by a full scheduler round (``threads``
    extra records) or the cycle budget has doubly expired, the follower
    CASes the leader word to itself and seals — leadership handoff for
    stalled or read-only leaders.
    """

    def __init__(
        self,
        store: "SharedLogStore",
        batch_size: int = 8,
        cycle_budget: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.store = store
        self.batch_size = batch_size
        self.cycle_budget = cycle_budget
        self.leader_tid = 0
        self.pending: List[SharedCommitTicket] = []
        self._window_start: Optional[int] = None

    @property
    def epoch_records(self) -> int:
        return self.batch_size * len(self.store.views)

    # ------------------------------------------------------------- intake
    def submit(self, tid: int, ticket: SharedCommitTicket) -> None:
        """Queue a ticket; seal (or hand leadership over) on a trigger."""
        store = self.store
        now = store.views[tid].ctx.now
        if not self.pending:
            self._window_start = now
        self.pending.append(ticket)
        budget = self.cycle_budget
        elapsed = now - self._window_start if self._window_start is not None else 0
        excess = len(self.pending) - self.epoch_records
        if excess < 0 and not (budget is not None and elapsed >= budget):
            return
        if tid == self.leader_tid:
            self.seal(tid)
        elif excess >= len(store.views) or (
            budget is not None and elapsed >= 2 * budget
        ):
            self.take_over(tid)
            self.seal(tid)
        else:
            # trigger fired on a follower: give the leader one scheduler
            # round to claim the epoch before leadership moves
            store.stats.inc("store_seals_deferred")
            if store.tracer is not None:
                store.tracer.seal_deferred(now)

    def take_over(self, tid: int) -> None:
        """Claim leadership with a CAS on the shared leader word."""
        store = self.store
        view = store.views[tid]
        if view.cas(store.leader_addr, self.leader_tid + 1, tid + 1):
            self.leader_tid = tid
            store.stats.inc("store_leader_takeovers")

    # -------------------------------------------------------------- seal
    def seal(self, tid: int) -> None:
        """Seal the pending epoch on thread *tid*'s clock; no-op if empty.

        One marker covering every thread's records, one clean sequence
        (payload first, marker last), one fence — then every ticket in
        the batch is acknowledged and its ack latency recorded.
        """
        store = self.store
        if not self.pending:
            return
        batch, self.pending = self.pending, []
        self._window_start = None
        view = store.views[tid]
        tracer = store.tracer
        epoch = None
        if tracer is not None:
            epoch = tracer.seal_begin(tid, view.ctx.now)

        marker_lsn = store.wal.append(view, OP_COMMIT, len(batch), 0)
        # marker in cache: the epoch is *initiated* — an eviction could
        # land it at any moment (the oracle's ceiling on recovery)
        store.initiated_lsn = marker_lsn
        if tracer is not None:
            tracer.seal_marker(epoch, marker_lsn, view.ctx.now)

        if store.ranged_seal:
            # one CBO.RANGE sweep over every thread's records at once
            # (two on a log wrap) — the leader's sweep pulls dirty lines
            # out of the other threads' L1s just like its cleans would
            first_lsn = min(min(ticket_lsns(t)) for t in batch)
            store.wal.clean_span(view, first_lsn, marker_lsn)
        else:
            for ticket in batch:
                # a transaction ticket covers its whole contiguous run
                for lsn in ticket_lsns(ticket):
                    store.wal.clean_record(view, lsn)
            store.wal.clean_record(view, marker_lsn)
        if tracer is not None:
            tracer.seal_cleaned(epoch, view.ctx.now)

        if "shared_ack_before_fence" in store.mutants:
            # seeded bug: the leader treats its fence as covering only
            # its own records and acks the followers' tickets while the
            # epoch's writebacks are still in flight — a crash in that
            # window loses acknowledged follower updates
            self._acknowledge(
                [t for t in batch if t.tid != tid], marker_lsn, view, epoch
            )

        store.probe_point("epoch_flushed")
        if store.ranged_seal:
            # the range is one ordering token: wait for its sweep's
            # writebacks instead of issuing a FENCE (see GroupCommitter)
            waited_from = view.ctx.now
            view.ctx.await_writebacks()
            store.stats.inc("store_ranged_seals")
            waited = view.ctx.now - waited_from
        else:
            view.ctx.fence()
            store.stats.inc("store_fences")
            waited = getattr(view.ctx, "last_fence_waited", 0)
        if tracer is not None:
            tracer.seal_fenced(epoch, view.ctx.now, waited)

        self._acknowledge(batch, marker_lsn, view, epoch)
        store.stats.inc("store_commits")
        store.batch_sizes.add(len(batch))
        store.probe_point("epoch_committed")
        if tracer is not None:
            tracer.seal_end(epoch, view.ctx.now, len(batch))

    def _acknowledge(
        self,
        tickets: Sequence[SharedCommitTicket],
        marker_lsn: int,
        view: PMemView,
        epoch=None,
    ) -> None:
        store = self.store
        tracer = store.tracer
        now = view.ctx.now
        for ticket in tickets:
            if ticket.acked:
                continue
            ticket.acked = True
            ticket.durable_now = now
            latency = now - ticket.submit_now
            if latency < 0:
                # cross-thread clocks are only loosely synchronized by
                # the scheduler; a seal can complete on a clock slightly
                # behind the submitter's
                latency = 0
                store.stats.inc("store_ack_latency_clamped")
            store.ack_latency[ticket.tid].add(latency)
            store.ack_latency_all.add(latency)
            if tracer is not None and epoch is not None:
                tracer.op_acked(epoch, ticket, now)
        store.acked_lsn = max(store.acked_lsn, marker_lsn)


class StoreHandle:
    """A per-thread facade over the shared store (tid pre-bound)."""

    def __init__(self, store: "SharedLogStore", tid: int) -> None:
        self.store = store
        self.tid = tid

    def put(self, key: int, value: int) -> SharedCommitTicket:
        return self.store.put(self.tid, key, value)

    def delete(self, key: int) -> SharedCommitTicket:
        return self.store.delete(self.tid, key)

    def get(self, key: int) -> Optional[int]:
        return self.store.get(self.tid, key)

    def begin(self) -> Transaction:
        """Open a buffered transaction on this thread's clock."""
        return self.store.begin(self.tid)

    def sync(self) -> None:
        """Seal the pending epoch on this thread's clock."""
        self.store.sync(self.tid)

    def checkpoint(self) -> None:
        """Sync, then compact, charged to this thread's clock."""
        self.store.checkpoint(self.tid)


class SharedLogStore:
    """Crash-consistent KV store shared by N virtual-time threads.

    ``views`` binds the store to its threads: ``views[tid]`` is thread
    *tid*'s :class:`~repro.persist.api.PMemView` (all over one heap and
    one optimizer, as the sharded benchmark already does).  Every
    mutating call takes the acting ``tid`` first; :meth:`handle` returns
    a tid-bound facade.

    The durability contract matches :class:`~repro.store.store.DurableStore`:
    an op is durable once its ticket is acked (its epoch's fence retired
    — on whichever thread sealed it); ``get`` reads the shared memtable,
    so reads see every thread's submitted-but-unacked writes.
    """

    def __init__(
        self,
        heap: SimHeap,
        views: Sequence[PMemView],
        *,
        log_capacity: int = 512,
        batch_size: int = 8,
        cycle_budget: Optional[int] = None,
        checkpoint_every: int = 0,
        num_buckets: int = 64,
        layout: Optional[StoreLayout] = None,
        probe: Optional[Callable[[str], None]] = None,
        ranged_seal: bool = False,
    ) -> None:
        if not views:
            raise ValueError("shared store needs at least one thread view")
        strides = {view.optimizer.field_stride for view in views}
        if len(strides) != 1:
            raise ValueError("all views must share one optimizer stride")
        stride = strides.pop()
        if layout is None:
            superblock = heap.alloc_region(heap.line_bytes)
            log_base = heap.alloc_region(log_capacity * RECORD_FIELDS * stride)
            layout = StoreLayout(
                superblock=superblock,
                log_base=log_base,
                log_capacity=log_capacity,
                field_stride=stride,
                line_bytes=heap.line_bytes,
                num_buckets=num_buckets,
            )
        elif layout.field_stride != stride:
            raise ValueError("layout stride does not match the views' optimizer")
        # an epoch may overshoot by one record per thread (leader grace
        # round) and needs marker + one op of slack on top
        if batch_size * len(views) + len(views) + 2 > layout.log_capacity:
            raise ValueError(
                f"epoch of {batch_size} ops x {len(views)} threads does "
                f"not fit a {layout.log_capacity}-slot log"
            )
        self.heap = heap
        self.views = list(views)
        #: clock the checkpointer charges to; rebound to the acting
        #: thread's view for the duration of a checkpoint
        self.view = self.views[0]
        self.layout = layout
        #: policy knob: seal epochs (and publish checkpoints) with
        #: CBO.RANGE sweeps instead of per-line clean loops + fences
        self.ranged_seal = ranged_seal
        # transient coordination words, one line each: the CAS-bumped
        # tail and the leader claim (recovery never reads either)
        tail_addr = heap.alloc_region(heap.line_bytes)
        self.leader_addr = heap.alloc_region(heap.line_bytes)
        self.views[0].write(self.leader_addr, 1)  # leader_tid 0, 1-based
        self.wal = SharedWriteAheadLog(layout, tail_addr)
        self.sealer = EpochSealer(self, batch_size, cycle_budget)
        self.checkpointer = CheckpointManager(self)
        self.checkpoint_every = checkpoint_every
        self.memtable: Dict[int, int] = {}
        #: key -> LSN of its last submitted mutation (session plumbing:
        #: a memtable read of one key observes exactly this LSN, so a
        #: serving session's floor rises no further than it must)
        self.memtable_lsn: Dict[int, int] = {}
        self.acked_lsn = 0
        self.initiated_lsn = 0
        self.watermark = 0
        self.stats = StatCounter()
        self.batch_sizes = Histogram()
        #: submit→durable cycles, per thread and aggregated — the
        #: headline metric of cross-thread group commit
        self.ack_latency: List[Histogram] = [Histogram() for _ in views]
        self.ack_latency_all = Histogram()
        self.mutants: Set[str] = set()  # seeded-bug flags (tests only)
        self.probe: Optional[Callable[[str], None]] = probe
        #: causal tracer (repro.obs.trace.StoreTracer); None = zero-cost
        self.tracer = None
        self._commits_at_checkpoint = 0
        self.txn_counter = 0  # txn ids, monotonic per store instance

    @property
    def leader_tid(self) -> int:
        return self.sealer.leader_tid

    @property
    def submitted_lsn(self) -> int:
        """Last reserved LSN — the submitted tip (upper bound on any
        session's floor; per-key observation uses :attr:`memtable_lsn`)."""
        return self.wal.next_lsn - 1

    @property
    def unsealed_backlog(self) -> int:
        """Records accumulated toward the current epoch (WAL tail depth)."""
        return len(self.sealer.pending)

    def flush_backlog(self, tid: int) -> int:
        """Thread *tid*'s in-flight writebacks (its flush-queue depth).

        ``unsealed_backlog + flush_backlog(tid)`` is the write backlog
        the serving tier's admission controller gates on.
        """
        return len(self.views[tid].ctx.outstanding)

    def handle(self, tid: int) -> StoreHandle:
        return StoreHandle(self, tid)

    # ---------------------------------------------------------- internals
    def probe_point(self, name: str) -> None:
        """Crash-sweep hook: fired at every protocol boundary."""
        if self.probe is not None:
            self.probe(name)

    def _ensure_capacity(self, tid: int, span: int = 1) -> None:
        # room for the next *span* appends plus the epoch's marker
        if self.wal.next_lsn + span - self.watermark > self.layout.log_capacity:
            self.checkpoint(tid)

    def _maybe_checkpoint(self, tid: int) -> None:
        if not self.checkpoint_every:
            return
        commits = self.stats.get("store_commits")
        if commits - self._commits_at_checkpoint >= self.checkpoint_every:
            self.checkpoint(tid)

    def _submit(self, tid: int, op: int, key: int, value: int) -> SharedCommitTicket:
        if key <= 0:
            raise ValueError("keys must be positive integers")
        self._ensure_capacity(tid)
        view = self.views[tid]
        tracer = self.tracer
        if tracer is not None:
            trace_id = tracer.op_begin(tid, view.ctx.now)
        lsn = self.wal.append(view, op, key, value)
        if op == OP_PUT:
            self.memtable[key] = value
        else:
            self.memtable.pop(key, None)
        self.memtable_lsn[key] = lsn
        ticket = SharedCommitTicket(lsn, tid, view.ctx.now)
        if tracer is not None:
            tracer.op_submitted(trace_id, ticket, ticket.submit_now)
        self.probe_point("op_submitted")
        self.sealer.submit(tid, ticket)
        self._maybe_checkpoint(tid)
        return ticket

    # ---------------------------------------------------------------- API
    def put(self, tid: int, key: int, value: int) -> SharedCommitTicket:
        if value <= 0:
            raise ValueError("values must be positive integers")
        self.stats.inc("store_puts")
        return self._submit(tid, OP_PUT, key, value)

    def delete(self, tid: int, key: int) -> SharedCommitTicket:
        self.stats.inc("store_deletes")
        return self._submit(tid, OP_DELETE, key, 0)

    def get(self, tid: int, key: int) -> Optional[int]:
        self.stats.inc("store_gets")
        return self.memtable.get(key)

    # ------------------------------------------------------- transactions
    def begin(self, tid: int) -> Transaction:
        """Open a buffered multi-key transaction on thread *tid*."""
        return Transaction(self, tid)

    def _txn_read(self, tid: int, key: int) -> Optional[int]:
        """Fall-through read for a transaction buffer miss."""
        self.stats.inc("store_gets")
        return self.memtable.get(key)

    def _commit_txn(self, txn: Transaction) -> TxnTicket:
        """Publish a transaction's write set as one atomic log run.

        The run (``n`` OP_TXN records + one OP_TXN_COMMIT, written
        last) is claimed with **one** CAS bump of the shared tail, so
        no other thread's append can land inside it; the sealer then
        treats the whole run as one batch member — one epoch seal, one
        clean sequence, one fence makes the transaction durable, and
        the per-key ``memtable_lsn`` advances only to the commit
        record's LSN (session floors move at txn commit, not per key).
        """
        tid = txn.tid
        self.stats.inc("store_txns")
        self.txn_counter += 1
        txn_id = self.txn_counter
        writes = txn.writes
        if not writes:
            # nothing to log: durable by vacuity, covers no slots
            return TxnTicket(
                lsn=self.acked_lsn,
                txn_id=txn_id,
                first_lsn=self.acked_lsn + 1,
                records=0,
                tid=tid,
                submit_now=self.views[tid].ctx.now,
                acked=True,
            )
        span = len(writes) + 1  # payload run + TXN_COMMIT record
        if span + 2 > self.layout.log_capacity:
            raise ValueError(
                f"transaction of {len(writes)} writes does not fit a "
                f"{self.layout.log_capacity}-slot log"
            )
        self._ensure_capacity(tid, span)
        view = self.views[tid]
        tracer = self.tracer
        if tracer is not None:
            trace_id = tracer.op_begin(tid, view.ctx.now)
        first = self.wal.reserve_run(view, span)
        self.probe_point("txn_reserved")
        lsn = first
        for key, value in writes.items():
            self.wal.append_at(view, lsn, OP_TXN, key, value)
            lsn += 1
            self.probe_point("txn_record_appended")
        commit_lsn = first + len(writes)
        self.wal.append_at(
            view, commit_lsn, OP_TXN_COMMIT, txn_id, len(writes)
        )
        for key, value in writes.items():
            if value:
                self.memtable[key] = value
            else:
                self.memtable.pop(key, None)
            self.memtable_lsn[key] = commit_lsn
        self.stats.inc("store_txn_records", len(writes))
        ticket = TxnTicket(
            lsn=commit_lsn,
            txn_id=txn_id,
            first_lsn=first,
            records=len(writes),
            tid=tid,
            submit_now=view.ctx.now,
        )
        if tracer is not None:
            tracer.op_submitted(trace_id, ticket, ticket.submit_now)
        if "txn_commit_before_fence" in self.mutants:
            # seeded bug: the commit record exists only in cache, yet
            # the client is told the transaction is durable — a crash
            # before the epoch's fence loses an acknowledged txn
            ticket.acked = True
            self.acked_lsn = max(self.acked_lsn, commit_lsn)
        self.probe_point("txn_committed")
        self.sealer.submit(tid, ticket)
        self._maybe_checkpoint(tid)
        return ticket

    def sync(self, tid: Optional[int] = None) -> None:
        """Seal the pending epoch (if any) on *tid*'s clock; durable on
        return.  Defaults to the current leader."""
        self.sealer.seal(self.sealer.leader_tid if tid is None else tid)

    def checkpoint(self, tid: Optional[int] = None) -> None:
        """Sync, then compact the committed state into a snapshot."""
        tid = self.sealer.leader_tid if tid is None else tid
        self.sync(tid)
        previous = self.view
        self.view = self.views[tid]
        try:
            self.checkpointer.checkpoint()
        finally:
            self.view = previous
        self._commits_at_checkpoint = self.stats.get("store_commits")

    # ------------------------------------------------------------ restart
    def adopt(self, state: RecoveredState, tid: int = 0) -> None:
        """Resume from a recovered image (same layout, same regions).

        Same protocol as :meth:`DurableStore.adopt` — erase the stale
        log tail, fence, checkpoint — plus re-pointing the transient
        tail word at ``applied_lsn`` so reservation resumes there.
        """
        if self.memtable or self.wal.records_appended:
            raise RuntimeError("adopt() requires a fresh store instance")
        view = self.views[tid]
        self.memtable = dict(state.items)
        # recovery loses per-key provenance; pin every adopted key at the
        # applied tip (conservative: sessions over-wait, never under-wait)
        self.memtable_lsn = {key: state.applied_lsn for key in state.items}
        self.acked_lsn = state.applied_lsn
        self.initiated_lsn = state.applied_lsn
        self.watermark = state.checkpoint_lsn
        self.wal.reset_tail(view, state.applied_lsn)
        stale = self.layout.log_capacity - (
            state.applied_lsn - state.checkpoint_lsn
        )
        self.wal.invalidate_slots(view, state.applied_lsn + 1, stale)
        view.ctx.fence()
        self.stats.inc("store_fences")
        self.checkpoint(tid)

    # ---------------------------------------------------------- benchmark
    def reset_measurement(self) -> None:
        """Zero measurement counters and all thread clocks (see
        :meth:`DurableStore.reset_measurement`); durable state stays."""
        self.stats.reset()
        # store_commits restarts from zero, so the periodic-checkpoint
        # baseline must too (no-op when checkpoint_every is disabled)
        self._commits_at_checkpoint = 0
        self.batch_sizes = Histogram()
        self.ack_latency = [Histogram() for _ in self.views]
        self.ack_latency_all = Histogram()
        self.wal.records_appended = 0
        self.wal.bytes_appended = 0
        self.wal.tail_cas_failures = 0
        for view in self.views:
            view.flush_requests = 0
            view.ctx.now = 0
            view.ctx.outstanding.clear()
