"""On-media layout of the durable store.

Everything the recovery path must parse out of a raw crash image is
defined here, so :mod:`repro.store.recovery` depends on nothing but a
``read(address) -> int`` callable and a :class:`StoreLayout`.

Log records are fixed-size — five 64-bit fields at the optimizer's
field stride (FliT-adjacent doubles it, faithfully doubling the log's
cache footprint):

====== ========= ====================================================
field  name      contents
====== ========= ====================================================
0      LSN       monotonic log sequence number, 1-based; 0 = never
                 written (slots are born zero)
1      OP        ``OP_PUT`` / ``OP_DELETE`` / ``OP_COMMIT`` /
                 ``OP_TXN`` / ``OP_TXN_COMMIT``
2      KEY       key for payload records; batch size for COMMIT;
                 transaction id for TXN_COMMIT
3      VALUE     value for PUT; 0 for DELETE/COMMIT; for TXN the
                 value to put (0 = delete the key); for TXN_COMMIT
                 the number of TXN records the transaction wrote
4      CRC       :func:`record_crc` over the four logical fields
====== ========= ====================================================

Transactions extend the format without changing it: a transaction's
``n`` payload records are ``OP_TXN`` records occupying a *contiguous*
run of slots (the shared log CAS-reserves the whole run at once),
immediately followed by one ``OP_TXN_COMMIT`` record carrying the txn
id and ``n``.  Recovery buffers ``OP_TXN`` records and folds them into
the epoch only when their ``OP_TXN_COMMIT`` arrives — a torn tail that
cuts the run anywhere before the commit record rolls the whole
transaction back.

Records are deliberately **packed** (no line alignment): consecutive
records share cache lines, so the log tail is rewritten and re-cleaned
across an epoch — exactly the redundant-writeback pattern Skip It
filters in hardware.

The **superblock** is a single line holding one word: the base address
of the current checkpoint *descriptor* (0 = no checkpoint yet).  The
descriptor is a five-field object — magic, bucket-heads base, bucket
count, watermark LSN, CRC — flipped into place with one word write
after the snapshot it describes is durable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

# record field indices
F_LSN = 0
F_OP = 1
F_KEY = 2
F_VALUE = 3
F_CRC = 4
RECORD_FIELDS = 5

# record opcodes
OP_PUT = 1
OP_DELETE = 2
OP_COMMIT = 3
OP_TXN = 4  # transactional payload (VALUE 0 = delete)
OP_TXN_COMMIT = 5  # per-transaction commit record (KEY = txn id)

# checkpoint descriptor field indices
D_MAGIC = 0
D_HEADS = 1
D_BUCKETS = 2
D_WATERMARK = 3
D_CRC = 4
DESCRIPTOR_FIELDS = 5
DESCRIPTOR_MAGIC = 0x51EE9C4B  # "sleep": the log below the watermark is

# checkpoint map node field indices (key, value, next-node base)
N_KEY = 0
N_VALUE = 1
N_NEXT = 2
NODE_FIELDS = 3


def record_crc(lsn: int, op: int, key: int, value: int) -> int:
    """Checksum over the *logical* record fields.

    Computed over logical values so it survives optimizer encodings
    (link-and-persist marks are stripped by the recovery reader before
    the CRC is re-checked).  Never returns 0: an all-zero torn slot
    must not accidentally carry a valid CRC.
    """
    return zlib.crc32(f"{lsn}:{op}:{key}:{value}".encode()) or 1


def descriptor_crc(heads: int, buckets: int, watermark: int) -> int:
    return zlib.crc32(f"{heads}:{buckets}:{watermark}".encode()) or 1


@dataclass(frozen=True)
class StoreLayout:
    """Addresses and geometry shared by the store and its recovery."""

    superblock: int  # address of the one-word checkpoint pointer
    log_base: int  # first byte of the circular log region
    log_capacity: int  # number of record slots
    field_stride: int  # bytes between 64-bit fields (optimizer-set)
    line_bytes: int
    num_buckets: int  # checkpoint hash-map buckets

    @property
    def slot_bytes(self) -> int:
        return RECORD_FIELDS * self.field_stride

    def slot_of(self, lsn: int) -> int:
        """Circular slot index for a (1-based) LSN."""
        return (lsn - 1) % self.log_capacity

    def slot_addr(self, index: int) -> int:
        return self.log_base + index * self.slot_bytes

    def field_addr(self, index: int, field: int) -> int:
        return self.slot_addr(index) + field * self.field_stride

    def lsn_field_addr(self, lsn: int) -> int:
        return self.field_addr(self.slot_of(lsn), F_LSN)
