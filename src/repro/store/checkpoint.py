"""Checkpointing: compact the memtable into a persistent snapshot.

A checkpoint bounds both recovery time and log growth.  The manager
builds a fresh hash-map snapshot of the committed state in new memory,
makes it durable, then flips the one-word superblock pointer — the
classic shadow-paging move, here done with the repo's own primitives:

1. build a :class:`CheckpointMap` (bucket heads + chained nodes) from
   the memtable, plain writes only;
2. ``CBO.CLEAN`` every written word, then write + clean + **fence** the
   checkpoint descriptor — snapshot and descriptor durable;
3. write the descriptor's base into the superblock word, clean,
   **fence** — the atomic flip;
4. advance the log watermark; slots at or below it become reusable.

A crash before the flip lands recovers from the *old* checkpoint (its
log suffix is still intact: the watermark — and with it slot reuse —
only advances after the flip's fence).  A crash after recovers from the
new one.  There is no in-between: the flip is a single word on one
line, and line writebacks are atomic in the model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.persist.api import PMemView
from repro.persist.heap import SimHeap
from repro.store.layout import (
    D_BUCKETS,
    D_CRC,
    D_HEADS,
    D_MAGIC,
    D_WATERMARK,
    DESCRIPTOR_FIELDS,
    DESCRIPTOR_MAGIC,
    N_KEY,
    N_NEXT,
    N_VALUE,
    NODE_FIELDS,
    StoreLayout,
    descriptor_crc,
)

_HASH_MULT = 0x9E3779B97F4A7C15


def bucket_of(key: int, num_buckets: int) -> int:
    return ((key * _HASH_MULT) >> 33) % num_buckets


class CheckpointMap:
    """An insert-only KV hash map snapshot, built once per checkpoint.

    Mirrors the repo's ``PersistentHashTable`` layout idiom (line-spaced
    bucket heads, chained line-sized nodes) but stores values alongside
    keys — the persistent structures in :mod:`repro.persist.structures`
    are key-set shaped, and a checkpoint needs the values back.
    """

    def __init__(self, heap: SimHeap, layout: StoreLayout) -> None:
        self.layout = layout
        self.heap = heap
        self.heads_base = heap.alloc_region(
            layout.num_buckets * layout.line_bytes
        )

    def head_addr(self, bucket: int) -> int:
        return self.heads_base + bucket * self.layout.line_bytes

    def write_items(
        self, view: PMemView, items: Dict[int, int]
    ) -> List[int]:
        """Write the snapshot (no flushes); returns every touched address."""
        written: List[int] = []
        stride = self.layout.field_stride
        for bucket in range(self.layout.num_buckets):
            view.write(self.head_addr(bucket), 0)
            written.append(self.head_addr(bucket))
        for key, value in sorted(items.items()):
            node = self.heap.alloc(NODE_FIELDS, stride)
            head = self.head_addr(bucket_of(key, self.layout.num_buckets))
            view.write(node.field(N_KEY), key)
            view.write(node.field(N_VALUE), value)
            view.write(node.field(N_NEXT), view.read(head))
            view.write(head, node.base)
            written.extend(
                (node.field(N_KEY), node.field(N_VALUE), node.field(N_NEXT))
            )
        return written


def read_map(
    read, heads_base: int, num_buckets: int, layout: StoreLayout
) -> Dict[int, int]:
    """Walk a checkpoint map out of a crash image."""
    items: Dict[int, int] = {}
    stride = layout.field_stride
    for bucket in range(num_buckets):
        node = read(heads_base + bucket * layout.line_bytes)
        seen = set()
        while node and node not in seen:
            seen.add(node)
            key = read(node + N_KEY * stride)
            items[key] = read(node + N_VALUE * stride)
            node = read(node + N_NEXT * stride)
    return items


def clean_address_runs(view: PMemView, addresses, line_bytes: int) -> None:
    """Ranged-clean the lines covering *addresses*, one CBO.RANGE per
    contiguous line run (the snapshot allocator hands out mostly
    adjacent nodes, so a whole checkpoint map collapses into a few
    sweeps)."""
    lines = sorted({a - a % line_bytes for a in addresses})
    run_start = run_end = None
    for line in lines:
        if run_start is None:
            run_start = run_end = line
        elif line == run_end + line_bytes:
            run_end = line
        else:
            view.clean_range(run_start, run_end - run_start + line_bytes)
            run_start = run_end = line
    if run_start is not None:
        view.clean_range(run_start, run_end - run_start + line_bytes)


class CheckpointManager:
    """Drives snapshot + flip; owns the descriptor allocation."""

    def __init__(self, store) -> None:
        self.store = store

    def checkpoint(self) -> None:
        """Snapshot the *committed* state; caller must sync() first."""
        store = self.store
        view: PMemView = store.view
        started = view.ctx.now
        ranged = getattr(store, "ranged_seal", False)

        snapshot = CheckpointMap(store.heap, store.layout)
        written = snapshot.write_items(view, store.memtable)
        if ranged:
            clean_address_runs(view, written, store.layout.line_bytes)
        else:
            for address in written:
                view.clean(address)
        store.probe_point("checkpoint_map_flushed")

        watermark = store.acked_lsn
        descriptor = store.heap.alloc(
            DESCRIPTOR_FIELDS, store.layout.field_stride
        )
        fields: Tuple[Tuple[int, int], ...] = (
            (D_MAGIC, DESCRIPTOR_MAGIC),
            (D_HEADS, snapshot.heads_base),
            (D_BUCKETS, store.layout.num_buckets),
            (D_WATERMARK, watermark),
            (
                D_CRC,
                descriptor_crc(
                    snapshot.heads_base, store.layout.num_buckets, watermark
                ),
            ),
        )
        for field, value in fields:
            view.write(descriptor.field(field), value)
        if ranged:
            # one sweep over the descriptor's contiguous fields, then a
            # completion wait in place of the fence: snapshot and
            # descriptor writebacks must land before the flip is written
            view.clean_range(
                descriptor.field(0),
                DESCRIPTOR_FIELDS * store.layout.field_stride,
            )
            view.ctx.await_writebacks()
            store.stats.inc("store_ranged_publishes")
        else:
            for field, _ in fields:
                view.clean(descriptor.field(field))
            view.ctx.fence()
            store.stats.inc("store_fences")
        store.probe_point("checkpoint_descriptor_durable")

        view.write(store.layout.superblock, descriptor.base)
        view.clean(store.layout.superblock)
        store.probe_point("checkpoint_flipped")
        if ranged:
            view.ctx.await_writebacks()
        else:
            view.ctx.fence()
            store.stats.inc("store_fences")

        store.watermark = watermark
        store.stats.inc("store_checkpoints")
        store.stats.inc("store_checkpoint_cycles", view.ctx.now - started)
        store.probe_point("checkpoint_done")
