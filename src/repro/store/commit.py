"""Group commit: coalesce operations into one clean+fence epoch.

A fence costs ``fence_base`` plus the wait for every outstanding
writeback; issuing one per operation is the naive baseline the paper's
numbers argue against.  The batcher instead accumulates tickets and, at
a size or cycle-budget trigger, seals the whole batch:

1. append one ``COMMIT`` marker record after the batch's payload,
2. ``CBO.CLEAN`` every record word of the epoch (payload first, marker
   last — the marker must not be reachable-durable while a payload
   line is provably absent *from the same clean sequence*; actual
   ordering safety comes from the CRC + LSN chain, the clean order
   just keeps the common case honest),
3. one fence,
4. acknowledge every ticket in the batch.

Recovery applies a batch only when its COMMIT marker replays, so a
crash anywhere before the fence either surfaces the whole batch or
none of it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.store.layout import OP_COMMIT
from repro.store.txn import ticket_lsns


class GroupCommitter:
    """Accumulates commit tickets and seals them in epochs."""

    def __init__(
        self,
        store,
        batch_size: int = 8,
        cycle_budget: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.store = store
        self.batch_size = batch_size
        self.cycle_budget = cycle_budget
        self.pending: List = []  # List[CommitTicket]
        self._window_start: Optional[int] = None

    # ------------------------------------------------------------- intake
    def submit(self, ticket) -> None:
        """Queue a ticket; seal the epoch if a trigger fires."""
        if not self.pending:
            self._window_start = self.store.view.ctx.now
        self.pending.append(ticket)
        if len(self.pending) >= self.batch_size:
            self.commit()
        elif (
            self.cycle_budget is not None
            and self._window_start is not None
            and self.store.view.ctx.now - self._window_start
            >= self.cycle_budget
        ):
            self.commit()

    # -------------------------------------------------------------- seal
    def commit(self) -> None:
        """Seal the pending batch; no-op when nothing is pending."""
        store = self.store
        if not self.pending:
            return
        batch, self.pending = self.pending, []
        self._window_start = None
        view = store.view
        tracer = store.tracer
        epoch = None
        if tracer is not None:
            epoch = tracer.seal_begin(0, view.ctx.now)

        marker_lsn = store.wal.append(view, OP_COMMIT, len(batch), 0)
        # the marker now exists in cache: an eviction could land it at
        # any moment, so the commit is *initiated* — the oracle's upper
        # bound on what recovery may surface
        store.initiated_lsn = marker_lsn
        if tracer is not None:
            tracer.seal_marker(epoch, marker_lsn, view.ctx.now)

        if store.ranged_seal:
            # one CBO.RANGE sweep over the whole epoch span (two on a
            # log wrap) instead of RECORD_FIELDS cleans per record
            first_lsn = min(min(ticket_lsns(t)) for t in batch)
            store.wal.clean_span(view, first_lsn, marker_lsn)
        else:
            for ticket in batch:
                # a transaction ticket covers its whole contiguous run
                for lsn in ticket_lsns(ticket):
                    store.wal.clean_record(view, lsn)
            store.wal.clean_record(view, marker_lsn)
        if tracer is not None:
            tracer.seal_cleaned(epoch, view.ctx.now)

        if "store_ack_before_fence" in store.mutants:
            # seeded bug: acknowledge while the epoch's writebacks are
            # still in flight — a crash in that window loses acked ops
            self._acknowledge(batch, marker_lsn, epoch)

        store.probe_point("epoch_flushed")
        if store.ranged_seal:
            # the range is one ordering token: wait for its sweep's
            # writebacks to land instead of issuing a FENCE — atomicity
            # still comes from the marker + CRC/LSN chain, so the
            # cheaper completion wait gives the same durability promise
            waited_from = view.ctx.now
            view.ctx.await_writebacks()
            store.stats.inc("store_ranged_seals")
            waited = view.ctx.now - waited_from
        else:
            view.ctx.fence()
            store.stats.inc("store_fences")
            waited = getattr(view.ctx, "last_fence_waited", 0)
        if tracer is not None:
            tracer.seal_fenced(epoch, view.ctx.now, waited)

        if "store_ack_before_fence" not in store.mutants:
            self._acknowledge(batch, marker_lsn, epoch)

        store.stats.inc("store_commits")
        store.batch_sizes.add(len(batch))
        store.probe_point("epoch_committed")
        if tracer is not None:
            tracer.seal_end(epoch, view.ctx.now, len(batch))

    def _acknowledge(self, batch, marker_lsn: int, epoch=None) -> None:
        tracer = self.store.tracer
        for ticket in batch:
            ticket.acked = True
            if tracer is not None and epoch is not None:
                tracer.op_acked(epoch, ticket, self.store.view.ctx.now)
        self.store.acked_lsn = marker_lsn
