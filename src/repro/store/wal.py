"""Write-ahead log: append records through a PMemView, seal with CBO.

The WAL only *writes*; making records durable is the group committer's
job (:mod:`repro.store.commit`), which cleans whole epochs at once.
Separating append from seal is the point of the exercise: per-record
flushes are what the paper's fence costs punish.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.persist.api import PMemView
from repro.store.layout import (
    F_CRC,
    F_KEY,
    F_LSN,
    F_OP,
    F_VALUE,
    RECORD_FIELDS,
    StoreLayout,
    record_crc,
)


class WriteAheadLog:
    """Circular log of fixed-size, CRC-protected records."""

    def __init__(self, layout: StoreLayout) -> None:
        self.layout = layout
        self.next_lsn = 1
        self.records_appended = 0
        self.bytes_appended = 0
        # test/oracle hook: called as (lsn, op, key, value) on every
        # append, before any of the record's words hit the cache
        self.on_append: Optional[Callable[[int, int, int, int], None]] = None

    def reserve(self, view: PMemView) -> int:
        """Claim the next slot; returns its LSN.

        The private-log base case is plain bookkeeping; the shared log
        (:class:`repro.store.shared.SharedWriteAheadLog`) overrides this
        with a CAS-bumped tail word on the shared cache hierarchy.
        """
        lsn = self.next_lsn
        self.next_lsn += 1
        return lsn

    def reserve_run(self, view: PMemView, count: int) -> int:
        """Claim *count* contiguous slots; returns the first LSN.

        One reservation covers a whole transaction, so its records can
        never interleave with another thread's — the run plus its
        TXN_COMMIT record is one unbroken LSN range in the log.
        """
        if count < 1:
            raise ValueError("reserve_run needs at least one slot")
        first = self.next_lsn
        self.next_lsn += count
        return first

    def append(self, view: PMemView, op: int, key: int, value: int) -> int:
        """Write one record into the next slot; returns its LSN.

        The LSN field is written *last*: a record is self-identifying
        only once all its payload words exist in cache.  (Durability
        still comes only from the CRC — a torn writeback can land the
        LSN word without the rest, which recovery catches.)
        """
        lsn = self.reserve(view)
        self.append_at(view, lsn, op, key, value)
        return lsn

    def append_at(
        self, view: PMemView, lsn: int, op: int, key: int, value: int
    ) -> None:
        """Write one record into an already-reserved slot *lsn*."""
        if self.on_append is not None:
            self.on_append(lsn, op, key, value)
        index = self.layout.slot_of(lsn)
        view.write(self.layout.field_addr(index, F_OP), op)
        view.write(self.layout.field_addr(index, F_KEY), key)
        view.write(self.layout.field_addr(index, F_VALUE), value)
        view.write(
            self.layout.field_addr(index, F_CRC),
            record_crc(lsn, op, key, value),
        )
        view.write(self.layout.field_addr(index, F_LSN), lsn)
        self.records_appended += 1
        self.bytes_appended += self.layout.slot_bytes

    def clean_record(self, view: PMemView, lsn: int) -> None:
        """Request a non-invalidating writeback of every record word.

        Packed slots share lines, so most of these cleans target a line
        already cleaned a moment ago — Plain pays for each, Skip It
        drops the redundant ones at the L1.
        """
        index = self.layout.slot_of(lsn)
        for field in range(RECORD_FIELDS):
            view.clean(self.layout.field_addr(index, field))

    def clean_span(self, view: PMemView, first_lsn: int, last_lsn: int) -> None:
        """Seal a whole LSN span with ranged cleans (CBO.RANGE.CLEAN).

        The circular log maps a contiguous LSN span to at most two
        contiguous byte ranges (one when it does not cross the region's
        end), so an epoch's entire clean sequence collapses into one or
        two CBO.RANGE instructions instead of ``RECORD_FIELDS`` cleans
        per record.  The sweep visits lines in address order, not the
        payload-first/marker-last order of :meth:`clean_record` — the
        CRC + LSN chain is what recovery actually relies on, so the
        ordering nicety is the price of the single instruction.
        """
        if last_lsn < first_lsn:
            raise ValueError("clean_span needs a non-empty LSN span")
        if last_lsn - first_lsn + 1 > self.layout.log_capacity:
            raise ValueError("clean_span wider than the log")
        first_slot = self.layout.slot_of(first_lsn)
        last_slot = self.layout.slot_of(last_lsn)
        runs = (
            ((first_slot, last_slot),)
            if first_slot <= last_slot
            else ((first_slot, self.layout.log_capacity - 1), (0, last_slot))
        )
        for lo, hi in runs:
            view.clean_range(
                self.layout.slot_addr(lo),
                (hi - lo + 1) * self.layout.slot_bytes,
            )

    def invalidate_slots(self, view: PMemView, first_lsn: int, count: int) -> None:
        """Zero the LSN word of *count* slots starting at *first_lsn*.

        Used by recovery adoption to erase a stale log tail: once the
        store restarts, pre-crash records beyond the replayed prefix
        carry LSNs the new instance will reuse, and a CRC-valid stale
        record in a reused slot must never be replayable.
        """
        for lsn in range(first_lsn, first_lsn + count):
            addr = self.layout.lsn_field_addr(lsn)
            view.write(addr, 0)
            view.clean(addr)
