"""Durable-store throughput driver (the group-commit figure).

Runs per-thread :class:`~repro.store.store.DurableStore` shards (one
log + memtable per thread, all on one shared cache hierarchy) under a
mixed put/delete/get workload on virtual-time threads, and reports
throughput plus the persistence traffic the sweep is about: fences,
CBOs issued vs skipped, log bytes, commit batches.

The store runs with the ``none`` policy — it does its own cleans and
fences (that is the subsystem's job); an automatic policy on top would
double-flush every log write and bury the group-commit signal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.attach import shared_store_registry, store_registry, timing_registry
from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.store.shared import SharedLogStore
from repro.store.store import DurableStore
from repro.timing.params import TimingParams
from repro.timing.scheduler import VirtualTimeScheduler
from repro.timing.system import TimingSystem


@dataclass
class StoreResult:
    """Outcome of one (optimizer, group-commit) store cell."""

    optimizer: str
    group_commit: int
    threads: int
    total_ops: int
    elapsed_cycles: int
    throughput_mops: float
    fences: int
    cbo_issued: int
    cbo_skipped: int
    wal_records: int
    wal_bytes: int
    commits: int
    checkpoints: int
    mean_batch: float
    flush_requests: int
    #: CBO.RANGE traffic (nonzero only with ``ranged_seal``)
    ranged_seals: int = 0
    cbo_range_issued: int = 0
    cbo_range_lines: int = 0
    cbo_range_skipped: int = 0
    #: ``timing.*`` + per-shard ``store.*`` metrics snapshot
    metrics: Dict[str, object] = field(default_factory=dict)


class StoreBenchmark:
    """One configured durable-store throughput experiment."""

    def __init__(
        self,
        optimizer: str,
        group_commit: int,
        threads: int = 2,
        key_range: int = 256,
        log_capacity: int = 256,
        num_buckets: int = 64,
        flit_table_entries: int = 1024,
        skip_it: Optional[bool] = None,
        ranged_seal: bool = False,
        seed: int = 12345,
    ) -> None:
        self.optimizer_name = optimizer
        self.group_commit = group_commit
        self.threads = threads
        self.key_range = key_range
        self.log_capacity = log_capacity
        self.num_buckets = num_buckets
        self.flit_table_entries = flit_table_entries
        # as in the structure benchmarks: the skip bit exists only when
        # benchmarking the skipit filter
        self.skip_it = skip_it if skip_it is not None else optimizer == "skipit"
        self.ranged_seal = ranged_seal
        self.seed = seed

    def run(self, duration: int = 200_000) -> StoreResult:
        params = TimingParams(num_threads=self.threads, skip_it=self.skip_it)
        system = TimingSystem(params)
        heap = SimHeap(line_bytes=params.line_bytes)
        optimizer = make_optimizer(
            self.optimizer_name, heap, self.flit_table_entries
        )
        policy = make_policy("none")
        stores = [
            DurableStore(
                heap,
                PMemView(ctx, policy, optimizer),
                log_capacity=self.log_capacity,
                batch_size=self.group_commit,
                num_buckets=self.num_buckets,
                ranged_seal=self.ranged_seal,
            )
            for ctx in system.threads[: self.threads]
        ]

        # Prefill each shard to ~50% occupancy and checkpoint, so
        # measurement starts from a durable steady state with a warm
        # log tail; the prefill's own traffic is then discarded.
        rng = random.Random(self.seed)
        for store in stores:
            for key in rng.sample(
                range(1, self.key_range + 1), self.key_range // 2
            ):
                store.put(key, key + self.key_range)
            store.checkpoint()
        system.persist_all()
        optimizer.declare_persisted(system)
        system.stats.reset()
        for store in stores:
            store.reset_measurement()

        steps = [
            self._make_step(store, self.seed + 7 * tid)
            for tid, store in enumerate(stores)
        ]
        scheduler = VirtualTimeScheduler(system)
        result = scheduler.run(steps, duration=duration, warmup=0)
        for store in stores:
            store.sync()

        stats = system.stats.as_dict()
        registry = timing_registry(system)
        snapshot = registry.snapshot()
        for tid, store in enumerate(stores):
            snapshot[f"store.t{tid}"] = store_registry(store).snapshot()

        def total(name: str) -> int:
            return sum(s.stats.get(name) for s in stores)

        batches = [b for s in stores for b in s.batch_sizes.samples]
        return StoreResult(
            optimizer=self.optimizer_name,
            group_commit=self.group_commit,
            threads=self.threads,
            total_ops=result.total_ops,
            elapsed_cycles=result.elapsed,
            throughput_mops=result.throughput() / 1e6,
            fences=total("store_fences"),
            cbo_issued=stats.get("cbo_issued", 0),
            cbo_skipped=stats.get("cbo_skipped", 0),
            wal_records=sum(s.wal.records_appended for s in stores),
            wal_bytes=sum(s.wal.bytes_appended for s in stores),
            commits=total("store_commits"),
            checkpoints=total("store_checkpoints"),
            mean_batch=(sum(batches) / len(batches)) if batches else 0.0,
            flush_requests=sum(s.view.flush_requests for s in stores),
            ranged_seals=total("store_ranged_seals"),
            cbo_range_issued=stats.get("cbo_range_issued", 0),
            cbo_range_lines=stats.get("cbo_range_lines", 0),
            cbo_range_skipped=stats.get("cbo_range_line_skipped", 0),
            metrics=snapshot,
        )

    def _make_step(self, store: DurableStore, seed: int):
        rng = random.Random(seed)
        key_range = self.key_range
        next_value = key_range * 2

        def step(ctx) -> None:
            nonlocal next_value
            r = rng.random()
            key = rng.randint(1, key_range)
            if r < 0.6:
                next_value += 1
                store.put(key, next_value)
            elif r < 0.8:
                store.delete(key)
            else:
                store.get(key)

        return step


@dataclass
class SharedStoreResult:
    """Outcome of one (optimizer, threads) shared-log store cell."""

    optimizer: str
    group_commit: int
    threads: int
    total_ops: int
    elapsed_cycles: int
    throughput_mops: float
    fences: int
    fences_per_kop: float
    ack_p50: float
    ack_p99: float
    cbo_issued: int
    cbo_skipped: int
    wal_records: int
    wal_bytes: int
    commits: int
    checkpoints: int
    leader_takeovers: int
    mean_batch: float
    flush_requests: int
    #: acks whose raw submit→durable delta was negative (cross-thread
    #: virtual-clock skew) and entered the histograms clamped to zero
    ack_clamped: int = 0
    #: CBO.RANGE traffic (nonzero only with ``ranged_seal``)
    ranged_seals: int = 0
    cbo_range_issued: int = 0
    cbo_range_lines: int = 0
    cbo_range_skipped: int = 0
    #: ``timing.*`` + ``store.shared.*`` metrics snapshot
    metrics: Dict[str, object] = field(default_factory=dict)


class SharedStoreBenchmark:
    """One configured shared-log store experiment (figure 18).

    Same mixed put/delete/get workload as :class:`StoreBenchmark`, but
    all threads append into one :class:`~repro.store.shared.SharedLogStore`
    instead of private shards — ``group_commit`` ops per thread are
    sealed by one leader fence, and each thread's submit→durable cycles
    land in the ack-latency histograms the figure reports.
    """

    def __init__(
        self,
        optimizer: str,
        group_commit: int,
        threads: int = 2,
        key_range: int = 256,
        log_capacity: int = 512,
        num_buckets: int = 64,
        flit_table_entries: int = 1024,
        skip_it: Optional[bool] = None,
        ranged_seal: bool = False,
        seed: int = 12345,
    ) -> None:
        self.optimizer_name = optimizer
        self.group_commit = group_commit
        self.threads = threads
        self.key_range = key_range
        self.log_capacity = log_capacity
        self.num_buckets = num_buckets
        self.flit_table_entries = flit_table_entries
        self.skip_it = skip_it if skip_it is not None else optimizer == "skipit"
        self.ranged_seal = ranged_seal
        self.seed = seed

    def run(self, duration: int = 200_000, tracer=None) -> SharedStoreResult:
        params = TimingParams(num_threads=self.threads, skip_it=self.skip_it)
        system = TimingSystem(params)
        heap = SimHeap(line_bytes=params.line_bytes)
        optimizer = make_optimizer(
            self.optimizer_name, heap, self.flit_table_entries
        )
        policy = make_policy("none")
        views = [
            PMemView(ctx, policy, optimizer)
            for ctx in system.threads[: self.threads]
        ]
        store = SharedLogStore(
            heap,
            views,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            num_buckets=self.num_buckets,
            ranged_seal=self.ranged_seal,
        )

        # Prefill to ~50% occupancy on thread 0 and checkpoint: same
        # durable steady state as the sharded baseline, traffic discarded.
        rng = random.Random(self.seed)
        for key in rng.sample(range(1, self.key_range + 1), self.key_range // 2):
            store.put(0, key, key + self.key_range)
        store.checkpoint(0)
        system.persist_all()
        optimizer.declare_persisted(system)
        system.stats.reset()
        store.reset_measurement()
        if tracer is not None:
            # attach after prefill so only measured ops are traced; left
            # attached on return so the caller can read tracer.records
            tracer.attach(store, system)

        steps = [
            self._make_step(store, tid, self.seed + 7 * tid)
            for tid in range(self.threads)
        ]
        scheduler = VirtualTimeScheduler(system)
        result = scheduler.run(steps, duration=duration, warmup=0)
        store.sync()

        stats = system.stats.as_dict()
        registry = timing_registry(system)
        snapshot = registry.snapshot()
        snapshot["store.shared"] = shared_store_registry(store).snapshot()

        ack = store.ack_latency_all
        batches = store.batch_sizes.samples
        return SharedStoreResult(
            optimizer=self.optimizer_name,
            group_commit=self.group_commit,
            threads=self.threads,
            total_ops=result.total_ops,
            elapsed_cycles=result.elapsed,
            throughput_mops=result.throughput() / 1e6,
            fences=store.stats.get("store_fences"),
            fences_per_kop=(
                store.stats.get("store_fences") * 1000.0 / result.total_ops
                if result.total_ops
                else 0.0
            ),
            ack_p50=ack.p50() if ack.count else 0.0,
            ack_p99=ack.p99() if ack.count else 0.0,
            cbo_issued=stats.get("cbo_issued", 0),
            cbo_skipped=stats.get("cbo_skipped", 0),
            wal_records=store.wal.records_appended,
            wal_bytes=store.wal.bytes_appended,
            commits=store.stats.get("store_commits"),
            checkpoints=store.stats.get("store_checkpoints"),
            leader_takeovers=store.stats.get("store_leader_takeovers"),
            mean_batch=(sum(batches) / len(batches)) if batches else 0.0,
            flush_requests=sum(v.flush_requests for v in store.views),
            ack_clamped=store.stats.get("store_ack_latency_clamped"),
            ranged_seals=store.stats.get("store_ranged_seals"),
            cbo_range_issued=stats.get("cbo_range_issued", 0),
            cbo_range_lines=stats.get("cbo_range_lines", 0),
            cbo_range_skipped=stats.get("cbo_range_line_skipped", 0),
            metrics=snapshot,
        )

    def _make_step(self, store: SharedLogStore, tid: int, seed: int):
        rng = random.Random(seed)
        key_range = self.key_range
        # disjoint value spaces keep the oracle's lost/ghost distinction
        # sharp even when threads race on one key
        next_value = key_range * 2 + tid * 10_000_000

        def step(ctx) -> None:
            nonlocal next_value
            r = rng.random()
            key = rng.randint(1, key_range)
            if r < 0.6:
                next_value += 1
                store.put(tid, key, next_value)
            elif r < 0.8:
                store.delete(tid, key)
            else:
                store.get(tid, key)

        return step
