"""Redundant-writeback microbenchmark (Figure 13).

Per cache line: a store, one necessary CBO.X, then ten redundant CBO.X to
the same (now persisted) line, with a trailing fence per region.  Run once
with Skip It disabled (naive) and once enabled; the Skip It configuration
drops the redundant requests at the L1 before they occupy the flush queue,
an FSHR, or the L2.

The paper benchmarks CBO.FLUSH and notes the results are identical for
CBO.CLEAN (§7.4).  In this reproduction the benchmark defaults to
CBO.CLEAN: after a flush the line is no longer resident, and §6.1's filter
only applies to resident lines, so the clean variant is the one that
exercises the L1-level drop the paper's Skip It discussion describes (see
EXPERIMENTS.md for the full note).
"""

from __future__ import annotations

from typing import List

from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.workloads.sweep import WritebackSweepResult, _thread_region


def _redundant_program(
    thread: int,
    size_bytes: int,
    line_bytes: int,
    clean: bool,
    redundant: int,
) -> List[Instr]:
    base = _thread_region(thread)
    make = Instr.clean if clean else Instr.flush
    program: List[Instr] = []
    for offset in range(0, size_bytes, line_bytes):
        address = base + offset
        program.append(Instr.store(address, offset + 1))
        program.extend(make(address) for _ in range(1 + redundant))
    program.append(Instr.fence())
    return program


def redundant_writeback_latency(
    size_bytes: int,
    threads: int = 1,
    skip_it: bool = True,
    clean: bool = True,
    redundant: int = 10,
    repeats: int = 3,
    params: SoCParams = None,
) -> WritebackSweepResult:
    """Latency of store + CBO.X + *redundant* extra CBO.X per line."""
    params = (params or SoCParams()).with_cores(threads).with_skip_it(skip_it)
    soc = Soc(params)
    line = params.line_bytes
    per_thread = max(line, (size_bytes // threads) // line * line)
    label = "clean" if clean else "flush"
    result = WritebackSweepResult(
        size_bytes=size_bytes,
        threads=threads,
        op=f"{label}/{'skipit' if skip_it else 'naive'}",
    )
    # one discarded warmup repetition removes first-touch effects
    for rep in range(repeats + 1):
        cycles = soc.run_programs(
            [
                _redundant_program(t, per_thread, line, clean, redundant)
                for t in range(threads)
            ]
        )
        soc.drain()
        if rep > 0:
            result.samples.append(cycles)
    return result
