"""Clean-vs-flush re-read microbenchmark (Figure 10).

Per cache line: write, issue the writeback instruction ten times, fence,
then re-read the value once the synchronous barrier has passed
("Write - Clean/Flush x 10 - Fence - Read").  A CBO.CLEAN leaves the line
resident so the re-read hits; a CBO.FLUSH invalidates it so the re-read
refetches from memory — the ~2x gap the figure shows.
"""

from __future__ import annotations

from typing import List

from repro.sim.config import SoCParams
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.workloads.sweep import WritebackSweepResult, _thread_region


def _reread_program(
    thread: int, size_bytes: int, line_bytes: int, clean: bool, cbo_repeats: int
) -> List[Instr]:
    base = _thread_region(thread)
    make = Instr.clean if clean else Instr.flush
    program: List[Instr] = []
    for offset in range(0, size_bytes, line_bytes):
        address = base + offset
        program.append(Instr.store(address, offset + 1))
        program.extend(make(address) for _ in range(cbo_repeats))
        program.append(Instr.fence())
        program.append(Instr.load(address))
    return program


def clean_vs_flush_reread(
    size_bytes: int,
    threads: int = 1,
    clean: bool = False,
    cbo_repeats: int = 10,
    repeats: int = 3,
    params: SoCParams = None,
) -> WritebackSweepResult:
    """Measure the write/CBO.X^10/fence/read loop over *size_bytes*."""
    params = (params or SoCParams()).with_cores(threads)
    soc = Soc(params)
    line = params.line_bytes
    per_thread = max(line, (size_bytes // threads) // line * line)
    result = WritebackSweepResult(
        size_bytes=size_bytes,
        threads=threads,
        op="clean" if clean else "flush",
    )
    # one discarded warmup repetition removes first-touch effects
    for rep in range(repeats + 1):
        cycles = soc.run_programs(
            [
                _reread_program(t, per_thread, line, clean, cbo_repeats)
                for t in range(threads)
            ]
        )
        soc.drain()
        if rep > 0:
            result.samples.append(cycles)
    return result
