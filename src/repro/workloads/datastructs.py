"""Persistent data-structure throughput driver (Figures 14-16).

Builds one of the four structures at a target size, then runs a mixed
workload (``update_percent`` split evenly between inserts and deletes,
the rest lookups, as in §7.4) on N virtual-time threads for a fixed
virtual duration, and reports throughput.

Structure sizes follow the spirit of §7.4: working sets chosen so the
SonicBOOM's small 544 KiB of total cache is contended — which is exactly
why FliT's auxiliary metadata hurts there (Figure 16).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.attach import timing_registry
from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.policies import make_policy
from repro.persist.structures import STRUCTURES
from repro.timing.params import TimingParams
from repro.timing.scheduler import VirtualTimeScheduler
from repro.timing.system import TimingSystem

#: key-range per structure, sized so resident data pressures the caches
#: (lists stay short because traversal is O(n)).
DEFAULT_KEY_RANGES: Dict[str, int] = {
    "list": 1024,
    "hashtable": 8192,
    "skiplist": 8192,
    "bst": 20_000,
}

#: hash-table bucket count used throughout §7.4-style runs
HASH_BUCKETS = 512


@dataclass
class DataStructureResult:
    """Throughput of one (structure, policy, optimizer) cell."""

    structure: str
    policy: str
    optimizer: str
    update_percent: int
    threads: int
    total_ops: int
    elapsed_cycles: int
    throughput_mops: float
    flush_requests: int
    cbo_issued: int
    cbo_skipped: int
    #: hierarchical metrics snapshot (``timing.*``) taken at run end
    metrics: Dict[str, object] = field(default_factory=dict)


class DataStructureBenchmark:
    """One configured throughput experiment."""

    def __init__(
        self,
        structure: str,
        policy: str,
        optimizer: str,
        update_percent: int = 5,
        threads: int = 2,
        key_range: Optional[int] = None,
        flit_table_entries: int = 1024,
        skip_it: Optional[bool] = None,
        seed: int = 12345,
    ) -> None:
        if structure not in STRUCTURES:
            raise ValueError(f"unknown structure {structure!r}")
        self.structure_name = structure
        self.policy_name = policy
        self.optimizer_name = optimizer
        self.update_percent = update_percent
        self.threads = threads
        self.key_range = key_range or DEFAULT_KEY_RANGES[structure]
        self.flit_table_entries = flit_table_entries
        # Skip It hardware is only present when benchmarking the skipit
        # filter (matching the paper: the baseline SoC lacks the skip bit)
        self.skip_it = skip_it if skip_it is not None else optimizer == "skipit"
        self.seed = seed

    @property
    def applicable(self) -> bool:
        """False for combinations the paper also excludes (BST x L&P)."""
        structure_cls = STRUCTURES[self.structure_name]
        if (
            structure_cls.uses_pointer_tagging
            and self.optimizer_name == "link-and-persist"
        ):
            return False
        return True

    def run(self, duration: int = 400_000, warmup_ops: int = 100) -> DataStructureResult:
        if not self.applicable:
            raise ValueError(
                f"{self.optimizer_name} is not applicable to "
                f"{self.structure_name} (pointer tagging)"
            )
        from repro.persist.heap import SimHeap

        params = TimingParams(num_threads=self.threads, skip_it=self.skip_it)
        system = TimingSystem(params)
        heap = SimHeap(line_bytes=params.line_bytes)
        optimizer = make_optimizer(
            self.optimizer_name, heap, self.flit_table_entries
        )
        policy = make_policy(self.policy_name)
        structure_cls = STRUCTURES[self.structure_name]
        kwargs = (
            {"num_buckets": HASH_BUCKETS}
            if self.structure_name == "hashtable"
            else {}
        )
        structure = structure_cls(
            heap, field_stride=optimizer.field_stride, **kwargs
        )
        views = [PMemView(t, policy, optimizer) for t in system.threads]
        structure.initialize(views[0])

        # Prefill to ~50% occupancy of the key range (the steady state of a
        # balanced insert/delete mix) through a non-persistent view: no
        # flushes run during setup, so every configuration starts from the
        # same warm cache state and only the measured workload's own
        # writebacks shape the result.
        prefill_view = PMemView(views[0].ctx, make_policy("none"), optimizer)
        rng = random.Random(self.seed)
        for key in rng.sample(range(1, self.key_range + 1), self.key_range // 2):
            structure.insert(prefill_view, key)
        # start measurement from a fully persisted steady state
        system.persist_all()
        optimizer.declare_persisted(system)
        views[0].ctx.now = 0
        views[0].ctx.outstanding.clear()

        update_frac = self.update_percent / 100.0
        steps = [
            self._make_step(structure, view, update_frac, self.seed + 7 * tid)
            for tid, view in enumerate(views)
        ]
        scheduler = VirtualTimeScheduler(system)
        result = scheduler.run(steps, duration=duration, warmup=warmup_ops)
        stats = system.stats.as_dict()
        registry = timing_registry(system)
        for tid, view in enumerate(views):
            registry.register_gauge(
                f"timing.threads.t{tid}.flush_requests",
                lambda v=view: v.flush_requests,
            )
        snapshot = registry.snapshot()
        return DataStructureResult(
            structure=self.structure_name,
            policy=self.policy_name,
            optimizer=self.optimizer_name,
            update_percent=self.update_percent,
            threads=self.threads,
            total_ops=result.total_ops,
            elapsed_cycles=result.elapsed,
            throughput_mops=result.throughput() / 1e6,
            flush_requests=sum(v.flush_requests for v in views),
            cbo_issued=stats.get("cbo_issued", 0),
            cbo_skipped=stats.get("cbo_skipped", 0),
            metrics=snapshot,
        )

    def _make_step(self, structure, view: PMemView, update_frac: float, seed: int):
        rng = random.Random(seed)
        key_range = self.key_range

        def step(ctx) -> None:
            r = rng.random()
            key = rng.randint(1, key_range)
            if r < update_frac / 2:
                structure.insert(view, key)
            elif r < update_frac:
                structure.delete(view, key)
            else:
                structure.contains(view, key)

        return step
