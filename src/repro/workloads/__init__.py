"""Microbenchmark workload generators for the evaluation figures."""

from repro.workloads.sweep import writeback_sweep, WritebackSweepResult
from repro.workloads.reread import clean_vs_flush_reread
from repro.workloads.redundant import redundant_writeback_latency
from repro.workloads.datastructs import (
    DataStructureBenchmark,
    DataStructureResult,
)
from repro.workloads.openloop import (
    OpenLoopClient,
    PoissonArrivals,
    ZipfianKeys,
)

__all__ = [
    "writeback_sweep",
    "WritebackSweepResult",
    "clean_vs_flush_reread",
    "redundant_writeback_latency",
    "DataStructureBenchmark",
    "DataStructureResult",
    "OpenLoopClient",
    "PoissonArrivals",
    "ZipfianKeys",
]
