"""Open-loop client generators on the virtual clock.

A closed-loop driver (every step issues the next op as soon as the
previous one returns) can never show saturation: when the store slows
down, the offered load politely slows down with it.  The serving tier's
headline figure needs the opposite — **open-loop** clients whose arrival
process does not care how the store is doing.  Requests arrive by a
Poisson process at a configured offered load; when the store falls
behind, requests *queue at the client* rather than stall the generator,
so queueing delay (and with it the p99 ack latency) grows without bound
past the knee.

Three pieces, all deterministic under a seed:

* :class:`ZipfianKeys` — YCSB-style scrambled-zipfian keys over a large
  keyspace (millions of keys at full size).  The zeta normalisation
  constant is O(n) to compute, so it is cached per ``(n, theta)``
  process-wide.
* :class:`PoissonArrivals` — exponential interarrival times at a mean
  expressed in cycles, accumulated in float and emitted on the integer
  virtual clock.
* :class:`OpenLoopClient` — one scheduler step-function per tenant:
  materialise every arrival up to the thread's current clock, serve the
  oldest queued request through a :class:`~repro.serve.tier.ServeTier`
  session, and idle-advance the clock to the next arrival when the
  queue is empty (the scheduler requires each step to move time).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: process-wide cache of zeta(n, theta) — O(n) once per keyspace shape
_ZETA_CACHE: Dict[Tuple[int, float], float] = {}

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv64(value: int) -> int:
    """FNV-1a over the rank's bytes: spreads hot ranks across the keyspace."""
    h = _FNV_OFFSET
    for _ in range(8):
        h = ((h ^ (value & 0xFF)) * _FNV_PRIME) & _MASK64
        value >>= 8
    return h


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number H_{n,theta} (cached)."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        _ZETA_CACHE[key] = cached
    return cached


class ZipfianKeys:
    """Scrambled-zipfian key generator over ``[1, n]`` (YCSB recipe).

    The raw zipfian rank concentrates popularity on the smallest ranks;
    scrambling the rank through a 64-bit FNV hash spreads the hot keys
    across the whole keyspace so they do not share cache lines or hash
    buckets by construction.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("keyspace must hold at least one key")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = zeta(n, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - zeta(2, theta) / self._zetan
        )

    def next_rank(self) -> int:
        """The raw zipfian rank in ``[1, n]`` (rank 1 is the hottest)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 1
        if uz < 1.0 + 0.5 ** self.theta:
            return 2
        return 1 + int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next(self) -> int:
        """The next scrambled key in ``[1, n]``."""
        return 1 + _fnv64(self.next_rank()) % self.n


class PoissonArrivals:
    """Poisson arrival process: exponential interarrivals on the cycle clock.

    ``mean_interarrival`` is in cycles; an offered load of *L* ops per
    kilocycle is ``mean_interarrival=1000 / L``.  Interarrival draws
    accumulate in float so the integer arrival stamps do not drift.
    """

    def __init__(self, mean_interarrival: float, seed: int = 0) -> None:
        if mean_interarrival <= 0:
            raise ValueError("mean interarrival must be positive")
        self.mean_interarrival = mean_interarrival
        self._rng = random.Random(seed)
        self._clock = 0.0

    def next(self) -> int:
        """The next arrival time in integer cycles (non-decreasing)."""
        self._clock += self._rng.expovariate(1.0 / self.mean_interarrival)
        return int(self._clock)


class OpenLoopClient:
    """One tenant's open-loop request stream, as a scheduler step-fn.

    Each :meth:`step` call serves exactly one request (or idle-advances
    the thread clock to the next arrival).  The request mix is
    ``update_fraction`` puts, ``snapshot_fraction`` snapshot reads, and
    memtable reads for the rest; put values are globally unique within
    the client's ``value_base`` space so the session oracle can map any
    observed value back to its write.
    """

    def __init__(
        self,
        tier,
        session,
        keys: ZipfianKeys,
        arrivals: PoissonArrivals,
        *,
        update_fraction: float = 0.6,
        snapshot_fraction: float = 0.15,
        value_base: int = 0,
        seed: int = 0,
    ) -> None:
        if update_fraction + snapshot_fraction > 1.0:
            raise ValueError("request mix fractions exceed 1.0")
        self.tier = tier
        self.session = session
        self.keys = keys
        self.arrivals = arrivals
        self.update_fraction = update_fraction
        self.snapshot_fraction = snapshot_fraction
        self._rng = random.Random(seed)
        self._next_value = value_base
        self.pending: Deque[int] = deque()
        self._next_arrival: Optional[int] = None
        self.generated = 0
        self.served = 0
        self.max_queue_depth = 0

    def _fill(self, now: int) -> None:
        """Materialise every arrival with a stamp at or before *now*."""
        if self._next_arrival is None:
            self._next_arrival = self.arrivals.next()
        while self._next_arrival <= now:
            self.pending.append(self._next_arrival)
            self.generated += 1
            self._next_arrival = self.arrivals.next()
        if len(self.pending) > self.max_queue_depth:
            self.max_queue_depth = len(self.pending)

    def step(self, ctx) -> None:
        """Serve one queued request, or jump the clock to the next arrival."""
        self._fill(ctx.now)
        if not self.pending:
            # open-loop idle: time passes at the arrival process's pace,
            # not the store's
            ctx.now = max(ctx.now, self._next_arrival)
            self._fill(ctx.now)
        arrival = self.pending.popleft()
        self.served += 1
        key = self.keys.next()
        r = self._rng.random()
        if r < self.update_fraction:
            self._next_value += 1
            # the arrival queue is the backlog that grows past saturation;
            # report it so admission control sees overload, not just the
            # (epoch-bounded) WAL tail
            self.tier.put(
                self.session,
                key,
                self._next_value,
                arrival=arrival,
                backlog=len(self.pending),
            )
        elif r < self.update_fraction + self.snapshot_fraction:
            self.tier.snapshot_get(self.session, key, arrival=arrival)
        else:
            self.tier.get(self.session, key, arrival=arrival)
