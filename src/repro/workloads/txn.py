"""Transactional throughput driver (the figure-20 workload).

Transfer-style transactions on a :class:`~repro.store.shared.SharedLogStore`:
each step opens a transaction, snapshot-reads its keys (charged cache
traffic through the thread's view — the read-validate phase a real
transfer performs), then either aborts client-side (~10% of attempts,
after the reads are paid for) or writes all ``txn_size`` keys and
commits.  The commit is one contiguous CAS-reserved run in the shared
WAL counting as **one ticket** toward the epoch trigger, so the
figure's headline ratio — fences per committed transaction — stays
flat as the write set grows: an 8-key transaction costs the same fence
budget as a 1-key put, and fences per *record* fall in proportion.
Every committed ticket's submit→durable cycles land in the ack-latency
histograms.

Aborts never touch the log (the whole point of client-side buffering);
their cost is the read-validate traffic already spent, reported as the
abort-latency percentiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.attach import shared_store_registry, timing_registry
from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.serve.session import SnapshotReader
from repro.sim.stats import Histogram
from repro.store.shared import SharedLogStore
from repro.timing.params import TimingParams
from repro.timing.scheduler import VirtualTimeScheduler
from repro.timing.system import TimingSystem


@dataclass
class TxnResult:
    """Outcome of one (optimizer, txn_size) transactional cell."""

    optimizer: str
    txn_size: int
    group_commit: int
    threads: int
    total_txns: int  # attempted (committed + aborted)
    committed: int
    aborted: int
    elapsed_cycles: int
    throughput_mtps: float  # million committed txns per second
    fences: int
    fences_per_txn: float
    ack_p50: float
    ack_p99: float
    abort_p50: float
    abort_p99: float
    cbo_issued: int
    cbo_skipped: int
    wal_records: int
    wal_bytes: int
    commits: int
    checkpoints: int
    flush_requests: int
    ack_clamped: int = 0
    #: ``timing.*`` + ``store.shared.*`` metrics snapshot
    metrics: Dict[str, object] = field(default_factory=dict)


class TxnBenchmark:
    """One configured transactional-store experiment (figure 20)."""

    def __init__(
        self,
        optimizer: str,
        txn_size: int,
        group_commit: int = 4,
        threads: int = 2,
        key_range: int = 256,
        log_capacity: int = 512,
        num_buckets: int = 64,
        flit_table_entries: int = 1024,
        abort_rate: float = 0.1,
        skip_it: Optional[bool] = None,
        seed: int = 12345,
    ) -> None:
        if txn_size < 1:
            raise ValueError("txn_size must be >= 1")
        self.optimizer_name = optimizer
        self.txn_size = txn_size
        self.group_commit = group_commit
        self.threads = threads
        self.key_range = key_range
        self.log_capacity = log_capacity
        self.num_buckets = num_buckets
        self.flit_table_entries = flit_table_entries
        self.abort_rate = abort_rate
        self.skip_it = skip_it if skip_it is not None else optimizer == "skipit"
        self.seed = seed

    def run(self, duration: int = 200_000) -> TxnResult:
        params = TimingParams(num_threads=self.threads, skip_it=self.skip_it)
        system = TimingSystem(params)
        heap = SimHeap(line_bytes=params.line_bytes)
        optimizer = make_optimizer(
            self.optimizer_name, heap, self.flit_table_entries
        )
        policy = make_policy("none")
        views = [
            PMemView(ctx, policy, optimizer)
            for ctx in system.threads[: self.threads]
        ]
        store = SharedLogStore(
            heap,
            views,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            num_buckets=self.num_buckets,
        )

        # Prefill to ~50% occupancy and checkpoint, so the snapshot
        # read-validate phase has a published checkpoint to walk and
        # measurement starts from a durable steady state.
        rng = random.Random(self.seed)
        for key in rng.sample(range(1, self.key_range + 1), self.key_range // 2):
            store.put(0, key, key + self.key_range)
        store.checkpoint(0)
        system.persist_all()
        optimizer.declare_persisted(system)
        system.stats.reset()
        store.reset_measurement()

        snapshots = SnapshotReader(store)
        abort_latency = Histogram()
        steps = [
            self._make_step(
                store, snapshots, abort_latency, tid, self.seed + 7 * tid
            )
            for tid in range(self.threads)
        ]
        scheduler = VirtualTimeScheduler(system)
        result = scheduler.run(steps, duration=duration, warmup=0)
        store.sync()

        stats = system.stats.as_dict()
        registry = timing_registry(system)
        snapshot = registry.snapshot()
        snapshot["store.shared"] = shared_store_registry(store).snapshot()

        committed = store.stats.get("store_txns")
        aborted = store.stats.get("store_txn_aborts")
        ack = store.ack_latency_all
        elapsed = result.elapsed
        return TxnResult(
            optimizer=self.optimizer_name,
            txn_size=self.txn_size,
            group_commit=self.group_commit,
            threads=self.threads,
            total_txns=committed + aborted,
            committed=committed,
            aborted=aborted,
            elapsed_cycles=elapsed,
            # committed txns/sec at the paper's 50 MHz core clock (§7.1)
            throughput_mtps=(
                committed * 50e6 / elapsed / 1e6 if elapsed else 0.0
            ),
            fences=store.stats.get("store_fences"),
            fences_per_txn=(
                store.stats.get("store_fences") / committed if committed else 0.0
            ),
            ack_p50=ack.p50() if ack.count else 0.0,
            ack_p99=ack.p99() if ack.count else 0.0,
            abort_p50=abort_latency.p50() if abort_latency.count else 0.0,
            abort_p99=abort_latency.p99() if abort_latency.count else 0.0,
            cbo_issued=stats.get("cbo_issued", 0),
            cbo_skipped=stats.get("cbo_skipped", 0),
            wal_records=store.wal.records_appended,
            wal_bytes=store.wal.bytes_appended,
            commits=store.stats.get("store_commits"),
            checkpoints=store.stats.get("store_checkpoints"),
            flush_requests=sum(v.flush_requests for v in store.views),
            ack_clamped=store.stats.get("store_ack_latency_clamped"),
            metrics=snapshot,
        )

    def _make_step(
        self,
        store: SharedLogStore,
        snapshots: SnapshotReader,
        abort_latency: Histogram,
        tid: int,
        seed: int,
    ):
        rng = random.Random(seed)
        key_range = self.key_range
        txn_size = self.txn_size
        abort_rate = self.abort_rate
        view = store.views[tid]
        # disjoint value spaces per thread keep provenance unambiguous
        next_value = key_range * 2 + tid * 10_000_000

        def step(ctx) -> None:
            nonlocal next_value
            began = view.ctx.now
            txn = store.begin(tid)
            keys = [rng.randint(1, key_range) for _ in range(txn_size)]
            for key in keys:
                # read-validate through the checkpoint: charged traffic
                snapshots.read(view, key)
                txn.get(key)
            if rng.random() < abort_rate:
                txn.abort()
                abort_latency.add(view.ctx.now - began)
                return
            for key in keys:
                next_value += 1
                txn.put(key, next_value)
            txn.commit()

        return step

    # each scheduler step is one transaction attempt; result.total_ops
    # therefore counts attempts, and committed/aborted split them
