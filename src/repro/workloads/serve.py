"""Serving-tier saturation driver (the figure-19 workload).

Runs N open-loop tenants against one :class:`~repro.serve.tier.ServeTier`
over a :class:`~repro.store.shared.SharedLogStore`: per-tenant zipfian
keys over a large keyspace, Poisson arrivals at a configured **offered
load** (total ops per kilocycle across tenants), admission control at
the tier, snapshot reads from the latest checkpoint, and read-your-writes
sessions.  The headline output is the **arrival→durable** latency
distribution of completed writes — queueing delay included, which is
what makes the saturation knee visible: past the store's capacity the
client queues grow and p99 diverges, and a better flush optimizer moves
the knee to a higher offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.attach import serve_registry, timing_registry
from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.serve.tier import ServeTier
from repro.store.shared import SharedLogStore
from repro.timing.params import TimingParams
from repro.timing.scheduler import VirtualTimeScheduler
from repro.timing.system import TimingSystem
from repro.workloads.openloop import (
    OpenLoopClient,
    PoissonArrivals,
    ZipfianKeys,
)


@dataclass
class ServeResult:
    """Outcome of one (optimizer, offered-load) serving cell."""

    optimizer: str
    offered_load: float  # total requests per kilocycle across tenants
    sessions: int
    group_commit: int
    generated: int  # requests the arrival processes produced
    served: int  # requests that reached the tier
    completed: int  # writes acked durable (and harvested)
    shed: int  # writes rejected by admission control
    elapsed_cycles: int
    throughput_mops: float  # completed writes (goodput), Mops/s
    ack_p50: float  # arrival → durable, completed writes
    ack_p99: float
    queue_p50: float  # arrival → service start, all requests
    queue_p99: float
    max_depth: int  # deepest write backlog the tier observed
    max_client_queue: int  # deepest per-tenant arrival queue
    backpressure_engagements: int
    snapshot_reads: int
    snapshot_fallbacks: int
    fences: int
    commits: int
    checkpoints: int
    wal_records: int
    ack_clamped: int
    #: ``timing.*`` + ``serve.*`` + ``store.shared.*`` metrics snapshot
    metrics: Dict[str, object] = field(default_factory=dict)


class ServeBenchmark:
    """One configured serving-tier saturation experiment."""

    def __init__(
        self,
        optimizer: str,
        offered_load: float,
        sessions: int = 4,
        group_commit: int = 8,
        key_space: int = 1_000_000,
        prefill_keys: int = 128,
        log_capacity: int = 512,
        num_buckets: int = 64,
        high_water: int = 48,
        low_water: int = 12,
        checkpoint_every: int = 4,
        update_fraction: float = 0.6,
        snapshot_fraction: float = 0.15,
        analytics_sessions: int = 1,
        theta: float = 0.99,
        flit_table_entries: int = 1024,
        skip_it: Optional[bool] = None,
        seed: int = 12345,
    ) -> None:
        if offered_load <= 0:
            raise ValueError("offered load must be positive")
        self.optimizer_name = optimizer
        self.offered_load = offered_load
        self.sessions = sessions
        self.group_commit = group_commit
        self.key_space = key_space
        self.prefill_keys = prefill_keys
        self.log_capacity = log_capacity
        self.num_buckets = num_buckets
        self.high_water = high_water
        self.low_water = low_water
        self.checkpoint_every = checkpoint_every
        self.update_fraction = update_fraction
        self.snapshot_fraction = snapshot_fraction
        if analytics_sessions >= sessions:
            raise ValueError("at least one OLTP session is required")
        self.analytics_sessions = analytics_sessions
        self.theta = theta
        self.flit_table_entries = flit_table_entries
        self.skip_it = skip_it if skip_it is not None else optimizer == "skipit"
        self.seed = seed

    def run(self, duration: int = 200_000, tracer=None) -> ServeResult:
        params = TimingParams(num_threads=self.sessions, skip_it=self.skip_it)
        system = TimingSystem(params)
        heap = SimHeap(line_bytes=params.line_bytes)
        optimizer = make_optimizer(
            self.optimizer_name, heap, self.flit_table_entries
        )
        policy = make_policy("none")
        views = [
            PMemView(ctx, policy, optimizer)
            for ctx in system.threads[: self.sessions]
        ]
        store = SharedLogStore(
            heap,
            views,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            checkpoint_every=self.checkpoint_every,
            num_buckets=self.num_buckets,
        )
        tier = ServeTier(
            store, high_water=self.high_water, low_water=self.low_water
        )

        # Prefill a slice of the keyspace and publish a checkpoint so
        # snapshot reads have a snapshot to hit from cycle zero; prefill
        # values live below every tenant's value space.
        hot = ZipfianKeys(self.key_space, self.theta, seed=self.seed + 977)
        prefilled = set()
        while len(prefilled) < self.prefill_keys:
            key = hot.next()
            if key not in prefilled:
                prefilled.add(key)
                store.put(0, key, 1_000 + len(prefilled))
        store.checkpoint(0)
        system.persist_all()
        optimizer.declare_persisted(system)
        system.stats.reset()
        store.reset_measurement()
        if tracer is not None:
            tracer.attach(store, system)

        # offered_load is the *total* rate: split evenly across tenants
        mean_interarrival = 1000.0 * self.sessions / self.offered_load
        oltp = self.sessions - self.analytics_sessions
        clients = []
        for sid in range(self.sessions):
            if sid < oltp:
                update, snapshot = self.update_fraction, self.snapshot_fraction
            else:
                # read-mostly "analytics" tenant: lives on the published
                # checkpoint, so its floor stays at the watermark and its
                # reads never contend on the write path
                update, snapshot = 0.05, 0.80
            clients.append(
                OpenLoopClient(
                    tier,
                    tier.session(sid, sid),
                    ZipfianKeys(
                        self.key_space, self.theta, seed=self.seed + sid
                    ),
                    PoissonArrivals(
                        mean_interarrival, seed=self.seed + 31 * sid
                    ),
                    update_fraction=update,
                    snapshot_fraction=snapshot,
                    value_base=1_000_000 + sid * 10_000_000,
                    seed=self.seed + 7 * sid,
                )
            )

        scheduler = VirtualTimeScheduler(system)
        result = scheduler.run(
            [client.step for client in clients], duration=duration, warmup=0
        )
        tier.drain()

        registry = timing_registry(system)
        snapshot = registry.snapshot()
        snapshot["serve"] = serve_registry(tier).snapshot()
        from repro.obs.attach import shared_store_registry

        snapshot["store.shared"] = shared_store_registry(store).snapshot()

        completed = tier.stats.get("serve_completed")
        elapsed = result.elapsed
        return ServeResult(
            optimizer=self.optimizer_name,
            offered_load=self.offered_load,
            sessions=self.sessions,
            group_commit=self.group_commit,
            generated=sum(c.generated for c in clients),
            served=sum(c.served for c in clients),
            completed=completed,
            shed=tier.stats.get("serve_rejected"),
            elapsed_cycles=elapsed,
            throughput_mops=(
                completed * 50e6 / elapsed / 1e6 if elapsed else 0.0
            ),
            ack_p50=tier.ack_latency.p50(),
            ack_p99=tier.ack_latency.p99(),
            queue_p50=tier.queue_wait.p50(),
            queue_p99=tier.queue_wait.p99(),
            max_depth=tier.max_depth,
            max_client_queue=max(c.max_queue_depth for c in clients),
            backpressure_engagements=tier.admission.engagements,
            snapshot_reads=tier.stats.get("serve_snapshot_reads"),
            snapshot_fallbacks=tier.stats.get("serve_snapshot_fallback"),
            fences=store.stats.get("store_fences"),
            commits=store.stats.get("store_commits"),
            checkpoints=store.stats.get("store_checkpoints"),
            wal_records=store.wal.records_appended,
            ack_clamped=tier.stats.get("serve_ack_latency_clamped"),
            metrics=snapshot,
        )
