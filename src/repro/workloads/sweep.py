"""Writeback-size sweep (Figure 9; SonicBOOM series of Figures 11-12).

Per repetition: each thread dirties its own disjoint region, then flushes
(or cleans) it line by line and fences once at the end; the measured
interval covers the writebacks and the fence, matching §7.2's
"we dirty the cache, then each thread flushes sequentially and fences
once at the end".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.config import SoCParams
from repro.sim.stats import median, stdev
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc

#: Regions are spaced apart so threads never contend for lines (§7.2:
#: "non-contended lines, i.e. each thread flushes a different cache region").
REGION_STRIDE = 1 << 20
REGION_BASE = 1 << 24


@dataclass
class WritebackSweepResult:
    """Latency samples for one (size, threads, op) point."""

    size_bytes: int
    threads: int
    op: str
    samples: List[int] = field(default_factory=list)
    #: wall seconds spent inside run_programs/drain only (no SoC
    #: construction, no program building) and the total cycles the engine
    #: stepped — warmup and dirtying included — for raw-speed accounting
    engine_seconds: float = 0.0
    engine_cycles: int = 0

    @property
    def median(self) -> float:
        return median(self.samples)

    @property
    def stdev(self) -> float:
        return stdev(self.samples)


def _thread_region(thread: int) -> int:
    return REGION_BASE + thread * REGION_STRIDE


def _dirty_program(thread: int, size_bytes: int, line_bytes: int) -> List[Instr]:
    base = _thread_region(thread)
    return [
        Instr.store(base + offset, offset + 1)
        for offset in range(0, size_bytes, line_bytes)
    ]


def _writeback_program(
    thread: int, size_bytes: int, line_bytes: int, clean: bool
) -> List[Instr]:
    base = _thread_region(thread)
    make = Instr.clean if clean else Instr.flush
    program = [
        make(base + offset) for offset in range(0, size_bytes, line_bytes)
    ]
    program.append(Instr.fence())
    return program


def writeback_sweep(
    size_bytes: int,
    threads: int = 1,
    clean: bool = False,
    repeats: int = 5,
    params: SoCParams = None,
) -> WritebackSweepResult:
    """Measure flushing *size_bytes* split evenly across *threads* threads."""
    params = (params or SoCParams()).with_cores(threads)
    soc = Soc(params)
    line = params.line_bytes
    per_thread = max(line, (size_bytes // threads) // line * line)
    result = WritebackSweepResult(
        size_bytes=size_bytes,
        threads=threads,
        op="clean" if clean else "flush",
    )
    # one discarded warmup repetition removes first-touch effects
    for rep in range(repeats + 1):
        dirty = [_dirty_program(t, per_thread, line) for t in range(threads)]
        wb = [
            _writeback_program(t, per_thread, line, clean)
            for t in range(threads)
        ]
        begin = time.perf_counter()
        soc.run_programs(dirty)
        soc.drain()
        cycles = soc.run_programs(wb)
        soc.drain()
        result.engine_seconds += time.perf_counter() - begin
        if rep > 0:
            result.samples.append(cycles)
    result.engine_cycles = soc.engine.cycle
    return result


def sweep_series(
    sizes: List[int],
    threads: int,
    clean: bool = False,
    repeats: int = 3,
    params: SoCParams = None,
) -> Dict[int, WritebackSweepResult]:
    """One Figure 9 series: size -> sweep result."""
    return {
        size: writeback_sweep(size, threads, clean, repeats, params)
        for size in sizes
    }
