"""Bounded FIFO used for all inter-component links.

Hardware queues have a fixed depth; pushing into a full queue must be
impossible rather than silently absorbed.  ``BoundedQueue`` therefore
exposes ``can_push`` for the ready/valid handshake and raises if a
component pushes without checking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """A component pushed into a full queue without checking ``can_push``."""


class BoundedQueue(Generic[T]):
    """FIFO with a hardware-style capacity bound.

    Parameters
    ----------
    capacity:
        Maximum number of buffered entries.  ``None`` models an unbounded
        conceptual link (used only for statistics sinks, never for
        backpressured datapaths).
    name:
        Label used in error messages and debugging dumps.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "queue") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def can_push(self, count: int = 1) -> bool:
        """True when *count* more entries fit."""
        if self.capacity is None:
            return True
        return len(self._items) + count <= self.capacity

    def push(self, item: T) -> None:
        if self.full:
            raise QueueFullError(f"push into full queue '{self.name}'")
        self._items.append(item)

    def peek(self) -> T:
        return self._items[0]

    def pop(self) -> T:
        return self._items.popleft()

    def remove(self, item: T) -> None:
        """Remove a specific entry (used for invalidating queued requests)."""
        self._items.remove(item)

    def clear(self) -> None:
        self._items.clear()
