"""Cycle-level simulation kernel.

The kernel is deliberately small: components register with an
:class:`~repro.sim.engine.Engine` and are ticked once per simulated cycle.
All inter-component communication happens through bounded queues
(:mod:`repro.sim.queue`) so that back-pressure is explicit, as it is in the
RTL the paper modifies.
"""

from repro.sim.engine import Engine, SimulationDeadlock
from repro.sim.queue import BoundedQueue
from repro.sim.stats import Histogram, StatCounter, median, stdev

__all__ = [
    "Engine",
    "SimulationDeadlock",
    "BoundedQueue",
    "StatCounter",
    "Histogram",
    "median",
    "stdev",
]
