"""Central configuration dataclasses for the simulated SoC.

Defaults mirror the paper's experimental platform (§7.1): a dual-core
SonicBOOM, 32 KiB 8-way L1 data caches, a shared 512 KiB inclusive L2,
16 B system bus, 8 FSHRs.  Latency knobs are calibrated so that one
``CBO.X`` to a dirty line costs ~100 cycles end to end (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.ways} ways x {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        return address // (self.line_bytes * self.num_sets)

    def line_address(self, address: int) -> int:
        return address - (address % self.line_bytes)


@dataclass(frozen=True)
class LatencyParams:
    """Fixed-cycle latencies of the memory system.

    ``dram_latency`` dominates the ~100-cycle CBO.X cost as in the paper,
    where "memory latency dominates" (§7.3).
    """

    l1_hit: int = 3
    l1_meta_access: int = 1
    l2_pipeline: int = 8
    dram_latency: int = 75
    bus_bytes: int = 16  # SonicBOOM system bus width (Figure 3)
    dram_bus_bytes: int = 64  # FASED-style DRAM model moves a line per beat


@dataclass(frozen=True)
class FlushUnitParams:
    """Flush unit sizing (§5.2)."""

    num_fshrs: int = 8
    flush_queue_depth: int = 16
    coalesce: bool = True  # merge same-line same-kind CBO.X in the queue
    # cross-kind coalescing (clean<->flush), the §5.3 future-work extension
    coalesce_cross_kind: bool = False
    wide_data_array: bool = True  # 1-cycle full-line read (paper's widening)


@dataclass(frozen=True)
class SoCParams:
    """Top-level SoC configuration."""

    num_cores: int = 2
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=32 * 1024, ways=8)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=512 * 1024, ways=8)
    )
    num_l1_mshrs: int = 4
    rpq_depth: int = 8
    num_l2_mshrs: int = 64
    l2_list_buffer_depth: int = 16
    latencies: LatencyParams = field(default_factory=LatencyParams)
    flush_unit: FlushUnitParams = field(default_factory=FlushUnitParams)
    skip_it: bool = True
    ldq_entries: int = 32
    stq_entries: int = 32
    lsu_fire_width: int = 2  # LSU fires two requests per cycle (Figure 2)

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes

    def with_skip_it(self, enabled: bool) -> "SoCParams":
        """Copy of this config with Skip It toggled (for naive-vs-SkipIt runs)."""
        return replace(self, skip_it=enabled)

    def with_cores(self, num_cores: int) -> "SoCParams":
        return replace(self, num_cores=num_cores)


DEFAULT_SOC = SoCParams()
