"""The cycle engine that drives every hardware model in lockstep.

A *component* is any object with a ``tick(cycle)`` method.  Each simulated
cycle the engine calls ``tick`` on every registered component in
registration order, mirroring how synchronous RTL evaluates once per clock
edge.  Components must only *sample* queue state during their tick and
perform pushes/pops through :class:`repro.sim.queue.BoundedQueue`, whose
capacity bounds model the finite buffering of the real design.

The engine carries a watchdog: if ``watchdog_interval`` cycles elapse
without any component reporting progress (via :meth:`Engine.note_progress`),
the run aborts with :class:`SimulationDeadlock`.  The paper devotes §5.4 to
arguing deadlock freedom of the probe/flush/writeback handshake; the
watchdog is how this reproduction falsifies that argument if the model ever
violates it.  To make a firing watchdog debuggable rather than a bare
stack trace, components may register *diagnostics providers*
(:meth:`Engine.add_diagnostics`); when the watchdog fires, their dumps —
queue occupancies, in-flight FSHR/MSHR states — plus the last events from
an attached observability bus travel on the exception as ``.report``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Protocol, Tuple

#: how many trailing bus events a deadlock report carries
DEADLOCK_EVENT_TAIL = 32


def format_deadlock_report(report: Dict[str, object]) -> str:
    """Render a diagnostics report for the exception message."""
    return json.dumps(report, indent=2, sort_keys=True, default=str)


class SimulationDeadlock(RuntimeError):
    """Raised when no component makes progress for the watchdog interval.

    Attributes
    ----------
    report:
        Structured diagnostics gathered at the moment the watchdog fired:
        queue occupancies, in-flight FSHR/MSHR states, and (when an
        observability bus is attached) the last events.  Empty when no
        diagnostics providers were registered.
    """

    def __init__(self, message: str, report: Optional[Dict[str, object]] = None):
        if report:
            message = f"{message}\n--- deadlock diagnostics ---\n" + (
                format_deadlock_report(report)
            )
        super().__init__(message)
        self.report: Dict[str, object] = report or {}


class Component(Protocol):
    """Anything tickable by the engine."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class Engine:
    """Drives registered components one cycle at a time.

    Parameters
    ----------
    watchdog_interval:
        Number of consecutive cycles without progress after which the run
        is declared deadlocked.  ``0`` disables the watchdog.
    """

    def __init__(self, watchdog_interval: int = 200_000) -> None:
        self.cycle = 0
        self.watchdog_interval = watchdog_interval
        self.obs = None  # observability bus; attached via repro.obs.attach
        self._components: List[Component] = []
        self._last_progress_cycle = 0
        self._diagnostics: List[Tuple[str, Callable[[], Dict[str, object]]]] = []

    def register(self, component: Component) -> None:
        """Add *component* to the tick order (registration order is tick order)."""
        self._components.append(component)

    def add_diagnostics(
        self, name: str, provider: Callable[[], Dict[str, object]]
    ) -> None:
        """Register a provider contributing a section to deadlock reports."""
        self._diagnostics.append((name, provider))

    def note_progress(self) -> None:
        """Record that some component did useful work this cycle.

        Called by components whenever they move a message, retire an
        instruction, or change architectural state.  Feeds the watchdog.
        """
        self._last_progress_cycle = self.cycle

    def diagnostics_report(self) -> Dict[str, object]:
        """Gather every provider's dump plus the trailing bus events."""
        report: Dict[str, object] = {
            "cycle": self.cycle,
            "last_progress_cycle": self._last_progress_cycle,
        }
        for name, provider in self._diagnostics:
            try:
                report[name] = provider()
            except Exception as exc:  # diagnostics must never mask the deadlock
                report[name] = f"<diagnostics provider failed: {exc!r}>"
        if self.obs is not None:
            report["last_events"] = self.obs.last_events(DEADLOCK_EVENT_TAIL)
        return report

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by *cycles* cycles."""
        for _ in range(cycles):
            self.cycle += 1
            for component in self._components:
                component.tick(self.cycle)
            self._check_watchdog()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Step until *predicate* returns True; return the cycle count consumed.

        Raises
        ------
        SimulationDeadlock
            If the watchdog fires, or *max_cycles* elapses first.
        """
        start = self.cycle
        while not predicate():
            if max_cycles is not None and self.cycle - start >= max_cycles:
                raise SimulationDeadlock(
                    f"predicate not satisfied within {max_cycles} cycles",
                    report=self.diagnostics_report(),
                )
            self.step()
        return self.cycle - start

    def _check_watchdog(self) -> None:
        if not self.watchdog_interval:
            return
        if self.cycle - self._last_progress_cycle > self.watchdog_interval:
            raise SimulationDeadlock(
                f"no progress for {self.watchdog_interval} cycles "
                f"(cycle {self.cycle}); probe/flush/writeback handshake "
                "has deadlocked",
                report=self.diagnostics_report(),
            )
