"""The cycle engine that drives every hardware model in lockstep.

A *component* is any object with a ``tick(cycle)`` method.  Each simulated
cycle the engine calls ``tick`` on every registered component in
registration order, mirroring how synchronous RTL evaluates once per clock
edge.  Components must only *sample* queue state during their tick and
perform pushes/pops through :class:`repro.sim.queue.BoundedQueue`, whose
capacity bounds model the finite buffering of the real design.

The engine carries a watchdog: if ``watchdog_interval`` cycles elapse
without any component reporting progress (via :meth:`Engine.note_progress`),
the run aborts with :class:`SimulationDeadlock`.  The paper devotes §5.4 to
arguing deadlock freedom of the probe/flush/writeback handshake; the
watchdog is how this reproduction falsifies that argument if the model ever
violates it.  To make a firing watchdog debuggable rather than a bare
stack trace, components may register *diagnostics providers*
(:meth:`Engine.add_diagnostics`); when the watchdog fires, their dumps —
queue occupancies, in-flight FSHR/MSHR states — plus the last events from
an attached observability bus travel on the exception as ``.report``.

Event-horizon fast-forward
--------------------------

Ticking every idle Python object once per cycle dominates the wall-clock
of long latency stretches (a DRAM round trip is ~150 cycles of no-ops).
Components may therefore implement an optional ``next_event_cycle(cycle)``
hook returning the earliest *future* cycle at which their ``tick`` could
do anything, or ``None`` when the component is purely reactive (it acts
only in response to another component's event).  The contract is that
``tick`` is a strict no-op — no state change, no stats, no emissions —
for every cycle before the reported one, *given that no other component
acts either*.  When every registered component honours the contract,
:meth:`Engine.run_until` can jump the clock straight to the earliest
reported event instead of stepping idle cycles one by one; cycle counts
and statistics are identical to the stepped run by construction.  Any
component without the hook disables fast-forward for its engine.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Protocol, Tuple

#: how many trailing bus events a deadlock report carries
DEADLOCK_EVENT_TAIL = 32


def format_deadlock_report(report: Dict[str, object]) -> str:
    """Render a diagnostics report for the exception message."""
    return json.dumps(report, indent=2, sort_keys=True, default=str)


class SimulationDeadlock(RuntimeError):
    """Raised when no component makes progress for the watchdog interval.

    Attributes
    ----------
    report:
        Structured diagnostics gathered at the moment the watchdog fired:
        queue occupancies, in-flight FSHR/MSHR states, and (when an
        observability bus is attached) the last events.  Empty when no
        diagnostics providers were registered.
    """

    #: banner introducing the attached diagnostics in the message
    banner = "deadlock diagnostics"

    def __init__(self, message: str, report: Optional[Dict[str, object]] = None):
        if report:
            message = f"{message}\n--- {self.banner} ---\n" + (
                format_deadlock_report(report)
            )
        super().__init__(message)
        self.report: Dict[str, object] = report or {}


class SimulationTimeout(SimulationDeadlock):
    """Raised when ``run_until``'s *max_cycles* budget elapses.

    A plain predicate timeout: the simulation was still making progress
    (or simply idle), the caller's cycle budget just ran out.  Subclasses
    :class:`SimulationDeadlock` so existing ``except SimulationDeadlock``
    call sites keep working, but the message no longer claims the
    probe/flush/writeback handshake has deadlocked.
    """

    banner = "timeout diagnostics"


class Component(Protocol):
    """Anything tickable by the engine."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class Engine:
    """Drives registered components one cycle at a time.

    Parameters
    ----------
    watchdog_interval:
        Number of consecutive cycles without progress after which the run
        is declared deadlocked.  ``0`` disables the watchdog.
    fast_forward:
        Default for :meth:`run_until`'s event-horizon fast-forward.  Only
        effective when every registered component implements
        ``next_event_cycle``; cycle counts and stats are unchanged either
        way (see the module docstring).
    """

    def __init__(
        self, watchdog_interval: int = 200_000, fast_forward: bool = True
    ) -> None:
        self.cycle = 0
        self.watchdog_interval = watchdog_interval
        self.fast_forward = fast_forward
        self.obs = None  # observability bus; attached via repro.obs.attach
        self._components: List[Component] = []
        self._event_hooks: List[Callable[[int], Optional[int]]] = []
        self._hooks_complete = True  # every component has next_event_cycle
        self._last_progress_cycle = 0
        self._diagnostics: List[Tuple[str, Callable[[], Dict[str, object]]]] = []
        self._cycle_hooks: List[Callable[[int], None]] = []

    def register(self, component: Component) -> None:
        """Add *component* to the tick order (registration order is tick order)."""
        self._components.append(component)
        hook = getattr(component, "next_event_cycle", None)
        if hook is None:
            self._hooks_complete = False
        else:
            self._event_hooks.append(hook)

    def add_diagnostics(
        self, name: str, provider: Callable[[], Dict[str, object]]
    ) -> None:
        """Register a provider contributing a section to deadlock reports."""
        self._diagnostics.append((name, provider))

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Call *hook(cycle)* after every stepped cycle's ticks.

        Cycle hooks are the crash-point injector's attachment surface
        (:mod:`repro.verify`): they observe the post-tick state of every
        component once per simulated cycle.  Registering one disables the
        engine's event-horizon fast-forward for the rest of the run —
        skipped cycles would never reach the hook, and an injector's whole
        point is to see *every* boundary.
        """
        self._cycle_hooks.append(hook)
        self.fast_forward = False

    def remove_cycle_hook(self, hook: Callable[[int], None]) -> None:
        if hook in self._cycle_hooks:
            self._cycle_hooks.remove(hook)

    def note_progress(self) -> None:
        """Record that some component did useful work this cycle.

        Called by components whenever they move a message, retire an
        instruction, or change architectural state.  Feeds the watchdog.
        """
        self._last_progress_cycle = self.cycle

    def diagnostics_report(self) -> Dict[str, object]:
        """Gather every provider's dump plus the trailing bus events."""
        report: Dict[str, object] = {
            "cycle": self.cycle,
            "last_progress_cycle": self._last_progress_cycle,
        }
        for name, provider in self._diagnostics:
            try:
                report[name] = provider()
            except Exception as exc:  # diagnostics must never mask the deadlock
                report[name] = f"<diagnostics provider failed: {exc!r}>"
        if self.obs is not None:
            report["last_events"] = self.obs.last_events(DEADLOCK_EVENT_TAIL)
        return report

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by *cycles* cycles."""
        components = self._components
        hooks = self._cycle_hooks
        interval = self.watchdog_interval
        for _ in range(cycles):
            cycle = self.cycle = self.cycle + 1
            for component in components:
                component.tick(cycle)
            if hooks:
                for hook in hooks:
                    hook(cycle)
            # inline watchdog check (the method call is per-cycle hot)
            if interval and self.cycle - self._last_progress_cycle > interval:
                self._check_watchdog()

    def next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle at which any component may act.

        Returns ``None`` when every component is idle forever (a genuine
        deadlock: no event is pending anywhere).  Returns ``cycle + 1``
        whenever fast-forward cannot safely skip anything — a component
        lacks the hook, or reports imminent work.
        """
        floor = self.cycle + 1
        if not self._hooks_complete:
            return floor
        horizon: Optional[int] = None
        for hook in self._event_hooks:
            nxt = hook(self.cycle)
            if nxt is None:
                continue
            if nxt <= floor:
                return floor
            if horizon is None or nxt < horizon:
                horizon = nxt
        return horizon

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: Optional[int] = None,
        fast_forward: Optional[bool] = None,
    ) -> int:
        """Step until *predicate* returns True; return the cycle count consumed.

        With *fast_forward* (default: the engine's ``fast_forward`` flag),
        stretches of cycles in which no component would do anything are
        skipped by jumping the clock to the next event horizon; the jump
        is capped so watchdog and timeout checks still fire on exactly the
        same cycle as a stepped run.

        Raises
        ------
        SimulationTimeout
            If *max_cycles* elapses before the predicate is satisfied.
        SimulationDeadlock
            If the watchdog fires, or no component reports any pending
            event while the predicate is unsatisfied.
        """
        if fast_forward is None:
            fast_forward = self.fast_forward
        start = self.cycle
        while not predicate():
            if max_cycles is not None and self.cycle - start >= max_cycles:
                raise SimulationTimeout(
                    f"predicate not satisfied within {max_cycles} cycles",
                    report=self.diagnostics_report(),
                )
            if fast_forward and self.cycle > self._last_progress_cycle:
                self._jump_to_horizon(start, max_cycles)
            self.step()
        return self.cycle - start

    def _jump_to_horizon(self, start: int, max_cycles: Optional[int]) -> None:
        """Advance the clock so the next ``step`` lands on the event horizon.

        The jump never passes the cycle at which a stepped run would
        raise a timeout (``start + max_cycles``) or fire the watchdog
        (``last_progress + watchdog_interval + 1``); intervening cycles
        are no-ops by the ``next_event_cycle`` contract, so skipping them
        leaves cycle counts and stats untouched.
        """
        horizon = self.next_event_cycle()
        limit: Optional[int] = None
        if max_cycles is not None:
            limit = start + max_cycles
        if self.watchdog_interval:
            fire = self._last_progress_cycle + self.watchdog_interval + 1
            limit = fire if limit is None else min(limit, fire)
        if horizon is None:
            if limit is None:
                raise SimulationDeadlock(
                    "no component reports a pending event; the simulation "
                    "can never satisfy the predicate",
                    report=self.diagnostics_report(),
                )
            horizon = limit
        elif limit is not None:
            horizon = min(horizon, limit)
        if horizon > self.cycle + 1:
            self.cycle = horizon - 1

    def _check_watchdog(self) -> None:
        if not self.watchdog_interval:
            return
        if self.cycle - self._last_progress_cycle > self.watchdog_interval:
            raise SimulationDeadlock(
                f"no progress for {self.watchdog_interval} cycles "
                f"(cycle {self.cycle}); probe/flush/writeback handshake "
                "has deadlocked",
                report=self.diagnostics_report(),
            )
