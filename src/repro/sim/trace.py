"""Non-invasive interconnect tracing.

``TraceRecorder`` is a thin adapter over the observability event bus
(:mod:`repro.obs`): attaching it acquires the SoC's shared
:class:`~repro.obs.events.EventBus` (reference-counted, so it composes
with :class:`~repro.obs.attach.Observability`), subscribes to the
``tilelink`` event category, and keeps one :class:`TraceEvent` per
message: cycle, channel name, message type, address, and params.  Useful
for debugging coherence interleavings and for tests that assert *which*
messages a scenario produces (e.g. "this redundant clean generated no
RootRelease").

``detach()`` unsubscribes and drops the bus reference; when it was the
last holder, every instrumentation hook in the simulator reverts to a
no-op.  ``max_events`` bounds memory on long runs: only the newest
*max_events* records are kept.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.obs.attach import acquire_bus, release_bus
from repro.obs.events import Event


@dataclass(frozen=True)
class TraceEvent:
    """One message leaving on one channel."""

    cycle: int
    channel: str
    message_type: str
    address: int
    source: int
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.cycle:>6}] {self.channel:<10} {self.message_type:<12} "
            f"addr={self.address:#x} src={self.source} {self.detail}"
        )


class TraceRecorder:
    """Records channel traffic for a SoC.

    Usage::

        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([...])
        for event in trace.filter(message_type="ProbeAck"):
            print(event)
        trace.detach()  # instrumentation reverts to no-ops
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._soc = None
        self._bus = None

    @classmethod
    def attach(cls, soc, max_events: Optional[int] = None) -> "TraceRecorder":
        recorder = cls(max_events=max_events)
        recorder._soc = soc
        recorder._bus = acquire_bus(soc)
        recorder._bus.subscribe(recorder._on_event)
        return recorder

    def detach(self) -> None:
        """Stop recording and release the bus (restores no-op hooks)."""
        if self._bus is None:
            return
        self._bus.unsubscribe(self._on_event)
        release_bus(self._soc)
        self._bus = None
        self._soc = None

    @property
    def attached(self) -> bool:
        return self._bus is not None

    def _on_event(self, event: Event) -> None:
        if event.category != "tilelink":
            return
        self._events.append(
            TraceEvent(
                cycle=event.cycle,
                channel=event.track,
                message_type=event.name,
                address=event.args.get("address", 0),
                source=event.args.get("source", -1),
                detail=event.args.get("detail", ""),
            )
        )

    # ------------------------------------------------------------- queries
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(
        self,
        message_type: Optional[str] = None,
        address: Optional[int] = None,
        channel: Optional[str] = None,
    ) -> List[TraceEvent]:
        out = self.events
        if message_type is not None:
            out = [e for e in out if e.message_type == message_type]
        if address is not None:
            out = [e for e in out if e.address == address]
        if channel is not None:
            out = [e for e in out if e.channel.startswith(channel)]
        return list(out)

    def count(self, **kwargs) -> int:
        return len(self.filter(**kwargs))

    def clear(self) -> None:
        self._events.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(str(e) for e in events)
