"""Non-invasive interconnect tracing.

``TraceRecorder`` wraps the ``send`` method of every TileLink channel in a
:class:`~repro.uarch.soc.Soc` and records one event per message: cycle,
channel name, message type, address, and params.  Useful for debugging
coherence interleavings and for tests that assert *which* messages a
scenario produces (e.g. "this redundant clean generated no RootRelease").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One message leaving on one channel."""

    cycle: int
    channel: str
    message_type: str
    address: int
    source: int
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.cycle:>6}] {self.channel:<10} {self.message_type:<12} "
            f"addr={self.address:#x} src={self.source} {self.detail}"
        )


def _describe(message) -> str:
    parts = []
    for attribute in ("grow", "cap", "shrink", "param"):
        value = getattr(message, attribute, None)
        if value is not None:
            parts.append(f"{attribute}={getattr(value, 'value', value)}")
    if getattr(message, "data", None) is not None:
        parts.append(f"data[{len(message.data)}B]")
    if getattr(message, "dirty", False):
        parts.append("dirty")
    return " ".join(parts)


class TraceRecorder:
    """Records channel traffic for a SoC.

    Usage::

        soc = Soc()
        trace = TraceRecorder.attach(soc)
        soc.run_programs([...])
        for event in trace.filter(message_type="ProbeAck"):
            print(event)
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._attached = False

    @classmethod
    def attach(cls, soc) -> "TraceRecorder":
        recorder = cls()
        for link in soc.l2.links:
            for name in "abcde":
                recorder._wrap(getattr(link, name), soc)
        for channel in (soc.dram.chan_a, soc.dram.chan_c, soc.dram.chan_d):
            recorder._wrap(channel, soc)
        recorder._attached = True
        return recorder

    def _wrap(self, channel, soc) -> None:
        original: Callable = channel.send

        def traced_send(message, now, _original=original, _channel=channel):
            self.events.append(
                TraceEvent(
                    cycle=soc.engine.cycle,
                    channel=_channel.name,
                    message_type=type(message).__name__,
                    address=getattr(message, "address", 0),
                    source=getattr(message, "source", -1),
                    detail=_describe(message),
                )
            )
            return _original(message, now)

        channel.send = traced_send

    # ------------------------------------------------------------- queries
    def filter(
        self,
        message_type: Optional[str] = None,
        address: Optional[int] = None,
        channel: Optional[str] = None,
    ) -> List[TraceEvent]:
        out = self.events
        if message_type is not None:
            out = [e for e in out if e.message_type == message_type]
        if address is not None:
            out = [e for e in out if e.address == address]
        if channel is not None:
            out = [e for e in out if e.channel.startswith(channel)]
        return list(out)

    def count(self, **kwargs) -> int:
        return len(self.filter(**kwargs))

    def clear(self) -> None:
        self.events.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(str(e) for e in events)
