"""Statistics helpers shared by the simulator and the benchmark harness."""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence


def median(values: Sequence[float]) -> float:
    """Median of *values* (the paper reports medians of 50 repetitions)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (paper reports sigma alongside medians)."""
    if not values:
        raise ValueError("stdev of empty sequence")
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


class StatCounter:
    """Named event counters for a hardware component."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts[name]

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"StatCounter({body})"


class Histogram:
    """Latency histogram with summary accessors."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def median(self) -> float:
        return median(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of empty histogram")
        return sum(self._samples) / len(self._samples)

    def stdev(self) -> float:
        return stdev(self._samples)

    def percentile(self, p: float) -> float:
        """The *p*-th percentile, or 0.0 for an empty histogram.

        Zero (matching :meth:`summary`) rather than an exception: latency
        histograms legitimately end a run empty — a state never visited,
        a quick run too short to ack — and every consumer would otherwise
        need the same ``if h.count`` guard.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return float(ordered[idx])

    def p50(self) -> float:
        """Median as a percentile (the latency-metric convention)."""
        return self.percentile(50.0)

    def p99(self) -> float:
        """Tail latency; equals the max for histograms under 100 samples."""
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        """Summary statistics dict; all zeros (not an error) when empty.

        The metrics snapshot and the bench report call this on histograms
        that may legitimately have no samples (e.g. a latency histogram
        for an FSM state the run never visited).
        """
        if not self._samples:
            return {
                "count": 0,
                "mean": 0.0,
                "median": 0.0,
                "stdev": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "mean": self.mean(),
            "median": self.median(),
            "stdev": self.stdev(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
