"""Store-specific crash-point sweep: the durability contract, checked.

The generic §4 oracle reasons about words and CBO floors; the store
needs an *application-level* contract on top:

* **No lost commit** — every acknowledged epoch survives any crash:
  ``recover().applied_lsn >= store.acked_lsn`` at every crash point.
* **No ghost commit** — recovery never surfaces an epoch whose COMMIT
  marker was not yet written to cache:
  ``applied_lsn <= store.initiated_lsn``.  (An *initiated* epoch — its
  marker exists in cache but its fence has not retired — may legally
  land early via eviction or an in-flight writeback; acknowledged
  durability is exactly the fence's promise, not an upper bound.)
* **Exact prefix state** — the recovered KV map must equal replaying
  the submitted-operation journal up to ``applied_lsn``: atomic
  epochs, no torn records applied, no stale resurrections.

The sweep drives a seeded workload through a real
:class:`~repro.store.store.DurableStore` and evaluates the contract at
every protocol boundary the store exposes (submit, epoch flush, fence
retirement, each checkpoint stage).  At the two boundaries with real
in-flight writeback windows — after an epoch's cleans and after the
superblock flip — it additionally enumerates a crash at every distinct
writeback-completion time, so the mid-writeback orderings are checked,
not just the quiescent images.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store.layout import OP_DELETE, OP_PUT, OP_TXN, OP_TXN_COMMIT
from repro.store.recovery import RecoveryError, recover
from repro.store.shared import SharedLogStore
from repro.store.store import DurableStore
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.verify.injector import MAX_VIOLATIONS, timing_crash_image
from repro.verify.mutants import TIMING_MUTANTS
from repro.verify.oracle import Violation

#: boundaries where writebacks of a just-sealed unit are still in
#: flight — worth enumerating every completion-time sub-window
WINDOWED_BOUNDARIES = frozenset({"epoch_flushed", "checkpoint_flipped"})


@dataclass
class StoreSweepReport:
    """Outcome of one store crash sweep configuration."""

    config: str
    boundaries: int = 0
    crash_points: int = 0
    recoveries: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return (
            f"store/{self.config}: {self.crash_points} crash points over "
            f"{self.boundaries} boundaries -> {status}"
        )


class StoreOracle:
    """Journal of submitted operations + the three contract checks."""

    def __init__(self) -> None:
        # lsn -> (op, key, value); markers included (op=OP_COMMIT)
        self.journal: Dict[int, Tuple[int, int, int]] = {}

    def observe(self, lsn: int, op: int, key: int, value: int) -> None:
        self.journal[lsn] = (op, key, value)

    def reference_state(self, applied_lsn: int) -> Dict[int, int]:
        """KV state after replaying the journal prefix up to a marker.

        Mirrors :func:`repro.store.recovery.recover` exactly, including
        transactions: OP_TXN records buffer and fold in only at their
        OP_TXN_COMMIT, so a transaction whose commit record lies beyond
        ``applied_lsn`` contributes nothing.
        """
        state: Dict[int, int] = {}
        txn_buffer: List[Tuple[int, int]] = []  # (key, value); 0 = delete
        for lsn in sorted(self.journal):
            if lsn > applied_lsn:
                break
            op, key, value = self.journal[lsn]
            if op == OP_PUT:
                state[key] = value
            elif op == OP_DELETE:
                state.pop(key, None)
            elif op == OP_TXN:
                txn_buffer.append((key, value))
            elif op == OP_TXN_COMMIT:
                for tkey, tvalue in txn_buffer[-value:] if value else []:
                    if tvalue:
                        state[tkey] = tvalue
                    else:
                        state.pop(tkey, None)
                txn_buffer.clear()
        return state

    def check(
        self,
        read,
        layout,
        *,
        acked_lsn: int,
        initiated_lsn: int,
        at: object,
        check_lsn: bool = True,
        txn_partial: bool = False,
    ) -> List[Violation]:
        try:
            state = recover(
                read, layout, check_lsn=check_lsn, txn_partial=txn_partial
            )
        except RecoveryError as exc:
            return [
                Violation(
                    kind="unrecoverable",
                    word=layout.superblock,
                    detail=str(exc),
                    at=at,
                )
            ]
        return self.check_state(
            state,
            layout,
            acked_lsn=acked_lsn,
            initiated_lsn=initiated_lsn,
            at=at,
        )

    def check_state(
        self,
        state,
        layout,
        *,
        acked_lsn: int,
        initiated_lsn: int,
        at: object,
    ) -> List[Violation]:
        """The three contract checks against an already-recovered *state*
        (split out so wrappers like the stage-7 session oracle can layer
        further checks on the same recovery)."""
        violations: List[Violation] = []
        if state.applied_lsn < acked_lsn:
            violations.append(
                Violation(
                    kind="lost",
                    word=layout.lsn_field_addr(acked_lsn),
                    detail=(
                        f"acked epoch lsn={acked_lsn} but recovery "
                        f"applied only lsn={state.applied_lsn} "
                        f"(stop: {state.stop_reason})"
                    ),
                    at=at,
                )
            )
        if state.applied_lsn > initiated_lsn:
            violations.append(
                Violation(
                    kind="ghost",
                    word=layout.lsn_field_addr(state.applied_lsn),
                    detail=(
                        f"recovery applied lsn={state.applied_lsn} beyond "
                        f"the last initiated epoch lsn={initiated_lsn}"
                    ),
                    at=at,
                )
            )
        reference = self.reference_state(state.applied_lsn)
        if state.items != reference:
            missing = sorted(set(reference) - set(state.items))[:4]
            extra = sorted(set(state.items) - set(reference))[:4]
            wrong = sorted(
                k
                for k in set(reference) & set(state.items)
                if reference[k] != state.items[k]
            )[:4]
            violations.append(
                Violation(
                    kind="corrupt",
                    word=layout.log_base,
                    detail=(
                        f"recovered state != journal prefix at "
                        f"lsn={state.applied_lsn}: missing={missing} "
                        f"extra={extra} wrong={wrong}"
                    ),
                    at=at,
                )
            )
        return violations


class StoreCrashSweep:
    """Drive one (optimizer, group-commit) config through a crash sweep."""

    def __init__(
        self,
        optimizer: str = "skipit",
        group_commit: int = 8,
        *,
        ops: int = 48,
        seed: int = 0,
        log_capacity: Optional[int] = None,
        checkpoint_every: int = 3,
        num_buckets: int = 16,
        key_range: int = 24,
        mutants: Sequence[str] = (),
        ranged_seal: bool = False,
    ) -> None:
        self.optimizer = optimizer
        self.group_commit = group_commit
        self.ops = ops
        self.seed = seed
        # the log must hold a full batch; small enough that long sweeps
        # wrap (wrap + stale-tail handling is part of what we verify)
        self.log_capacity = log_capacity or max(40, 2 * group_commit + 8)
        self.checkpoint_every = checkpoint_every
        self.num_buckets = num_buckets
        self.key_range = key_range
        self.mutants = tuple(mutants)
        self.ranged_seal = ranged_seal

    def run(self) -> StoreSweepReport:
        config = f"{self.optimizer}/gc={self.group_commit}"
        if self.ranged_seal:
            config = f"ranged/{config}"
        report = StoreSweepReport(config=config)
        params = TimingParams(
            num_threads=1, skip_it=(self.optimizer == "skipit")
        )
        system = TimingSystem(params)
        heap = SimHeap(params.line_bytes)
        view = PMemView(
            system.threads[0],
            make_policy("none"),
            make_optimizer(self.optimizer, heap),
        )
        store = DurableStore(
            heap,
            view,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            checkpoint_every=self.checkpoint_every,
            num_buckets=self.num_buckets,
            ranged_seal=self.ranged_seal,
        )
        oracle = StoreOracle()
        store.wal.on_append = oracle.observe
        check_lsn = "store_replay_trusts_crc" not in self.mutants
        # hardware-level mutants (the truncated-sweep bug) live in the
        # timing model's flag set, not the store's
        system.mutants.update(m for m in self.mutants if m in TIMING_MUTANTS)
        store.mutants.update(
            m
            for m in self.mutants
            if m != "store_replay_trusts_crc" and m not in TIMING_MUTANTS
        )

        def probe(name: str) -> None:
            report.boundaries += 1
            if len(report.violations) >= MAX_VIOLATIONS:
                return
            ats: List[Optional[int]] = [None]
            if name in WINDOWED_BOUNDARIES:
                ats.extend(sorted({wb.done for wb in system.in_flight}))
            for at in ats:
                report.crash_points += 1
                report.recoveries += 1
                image = timing_crash_image(system, at=at)
                report.violations.extend(
                    oracle.check(
                        persisted_reader(image),
                        store.layout,
                        acked_lsn=store.acked_lsn,
                        initiated_lsn=store.initiated_lsn,
                        at=f"{name}@{'now' if at is None else at}",
                        check_lsn=check_lsn,
                    )[: MAX_VIOLATIONS - len(report.violations)]
                )

        store.probe = probe
        rng = random.Random(self.seed)
        next_value = 1
        for _ in range(self.ops):
            key = rng.randint(1, self.key_range)
            if rng.random() < 0.7:
                store.put(key, 1_000_000 + next_value)
                next_value += 1
            else:
                store.delete(key)
        store.sync()
        store.checkpoint()
        return report


class SharedStoreCrashSweep:
    """Crash-sweep one (optimizer, group-commit) shared-log config.

    Same contract and oracle as :class:`StoreCrashSweep`, but the
    journal is written by N virtual-time threads interleaving their
    appends into one :class:`~repro.store.shared.SharedLogStore` —
    round-robin here, which still exercises cross-thread sealing because
    the epoch trigger lands on different threads as epochs and the
    leader-grace deferrals drift.  The CAS-bumped tail makes global LSN
    order the submission order, so the journal-prefix oracle applies to
    the interleaved log unchanged; what is *new* under test is that the
    sealing thread's single fence really covers records written (and
    left dirty) by every other thread's L1.
    """

    def __init__(
        self,
        optimizer: str = "skipit",
        group_commit: int = 8,
        *,
        threads: int = 3,
        ops: int = 48,
        seed: int = 0,
        log_capacity: Optional[int] = None,
        checkpoint_every: int = 3,
        num_buckets: int = 16,
        key_range: int = 24,
        mutants: Sequence[str] = (),
        ranged_seal: bool = False,
    ) -> None:
        self.optimizer = optimizer
        self.group_commit = group_commit
        self.threads = threads
        self.ops = ops
        self.seed = seed
        self.log_capacity = log_capacity or max(
            48, 2 * group_commit * threads + 2 * threads + 8
        )
        self.checkpoint_every = checkpoint_every
        self.num_buckets = num_buckets
        self.key_range = key_range
        self.mutants = tuple(mutants)
        self.ranged_seal = ranged_seal

    def run(self) -> StoreSweepReport:
        config = (
            f"shared/{self.optimizer}/gc={self.group_commit}"
            f"/t={self.threads}"
        )
        if self.ranged_seal:
            config = f"ranged/{config}"
        report = StoreSweepReport(config=config)
        params = TimingParams(
            num_threads=self.threads, skip_it=(self.optimizer == "skipit")
        )
        system = TimingSystem(params)
        heap = SimHeap(params.line_bytes)
        policy = make_policy("none")
        optimizer = make_optimizer(self.optimizer, heap)
        views = [
            PMemView(ctx, policy, optimizer)
            for ctx in system.threads[: self.threads]
        ]
        store = SharedLogStore(
            heap,
            views,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            checkpoint_every=self.checkpoint_every,
            num_buckets=self.num_buckets,
            ranged_seal=self.ranged_seal,
        )
        oracle = StoreOracle()
        store.wal.on_append = oracle.observe
        check_lsn = "store_replay_trusts_crc" not in self.mutants
        system.mutants.update(m for m in self.mutants if m in TIMING_MUTANTS)
        store.mutants.update(
            m
            for m in self.mutants
            if m != "store_replay_trusts_crc" and m not in TIMING_MUTANTS
        )

        def probe(name: str) -> None:
            report.boundaries += 1
            if len(report.violations) >= MAX_VIOLATIONS:
                return
            ats: List[Optional[int]] = [None]
            if name in WINDOWED_BOUNDARIES:
                ats.extend(sorted({wb.done for wb in system.in_flight}))
            for at in ats:
                report.crash_points += 1
                report.recoveries += 1
                image = timing_crash_image(system, at=at)
                report.violations.extend(
                    oracle.check(
                        persisted_reader(image),
                        store.layout,
                        acked_lsn=store.acked_lsn,
                        initiated_lsn=store.initiated_lsn,
                        at=f"{name}@{'now' if at is None else at}",
                        check_lsn=check_lsn,
                    )[: MAX_VIOLATIONS - len(report.violations)]
                )

        store.probe = probe
        rng = random.Random(self.seed)
        next_value = 1
        for i in range(self.ops):
            tid = i % self.threads
            key = rng.randint(1, self.key_range)
            if rng.random() < 0.7:
                store.put(tid, key, 1_000_000 + next_value)
                next_value += 1
            else:
                store.delete(tid, key)
        store.sync()
        store.checkpoint()
        return report


def run_shared_store_sweep(
    optimizers: Sequence[str] = ("plain", "flit-adjacent", "flit-hashtable", "link-and-persist", "skipit"),
    group_commits: Sequence[int] = (1, 8, 64),
    *,
    threads: int = 3,
    ops: int = 48,
    seed: int = 0,
) -> List[Tuple[str, StoreSweepReport]]:
    """The optimizer x batch-size shared-log sweep (verify CLI stage)."""
    results = []
    for optimizer in optimizers:
        for group_commit in group_commits:
            sweep = SharedStoreCrashSweep(
                optimizer, group_commit, threads=threads, ops=ops, seed=seed
            )
            report = sweep.run()
            results.append((report.config, report))
    return results


def run_store_sweep(
    optimizers: Sequence[str] = ("plain", "flit-adjacent", "flit-hashtable", "link-and-persist", "skipit"),
    group_commits: Sequence[int] = (1, 8, 64),
    *,
    ops: int = 48,
    seed: int = 0,
) -> List[Tuple[str, StoreSweepReport]]:
    """The full optimizer x batch-size store sweep (verify CLI stage)."""
    results = []
    for optimizer in optimizers:
        for group_commit in group_commits:
            sweep = StoreCrashSweep(
                optimizer, group_commit, ops=ops, seed=seed
            )
            report = sweep.run()
            results.append((report.config, report))
    return results


def run_ranged_store_sweep(
    optimizers: Sequence[str] = ("plain", "flit-adjacent", "flit-hashtable", "link-and-persist", "skipit"),
    group_commits: Sequence[int] = (1, 8, 64),
    *,
    ops: int = 48,
    seed: int = 0,
) -> List[Tuple[str, StoreSweepReport]]:
    """The store sweep with CBO.RANGE epoch sealing (verify CLI stage).

    Same contract, same oracle — but epochs are sealed with one ranged
    clean and a completion wait instead of per-record cleans + a fence,
    so the ``epoch_flushed`` windows enumerate every mid-range cursor
    position of the sweep (each covered line's writeback lands at a
    distinct staggered time).
    """
    results = []
    for optimizer in optimizers:
        for group_commit in group_commits:
            sweep = StoreCrashSweep(
                optimizer,
                group_commit,
                ops=ops,
                seed=seed,
                ranged_seal=True,
            )
            report = sweep.run()
            results.append((report.config, report))
    return results
