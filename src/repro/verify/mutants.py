"""Known-bad model variants the verification harness must catch.

A green harness proves nothing unless it is known to turn red on real
bugs.  This module re-introduces historical and plausible defects behind
test-only switches:

* **Timing mutants** toggle flags in
  :attr:`repro.timing.system.TimingSystem.mutants`; the model consults
  them at the exact code paths the original bugs lived in (e.g.
  ``l3_dirty_clean_lost`` is the PR 2 data-loss bug where CBO.CLEAN
  treated a line absent from L2 as persisted while the victim L3 held the
  only dirty copy).
* **Soc mutants** monkeypatch the cycle-level model inside a context
  manager, since the RTL-ish code has no test hooks.

``tests/test_verify_oracle.py`` asserts every mutant listed here makes
the corresponding injector report violations — the oracle's self-test.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

#: timing-model mutants: flag -> what breaks when it is set
TIMING_MUTANTS: Dict[str, str] = {
    "l3_dirty_clean_lost": (
        "CBO.CLEAN treats a line absent from L2 as persisted while the "
        "victim L3 holds the only dirty copy (the PR 2 bug)"
    ),
    "clean_forgets_l2_dirty": (
        "CBO.X clears the L2 dirty bit but drops the DRAM payload"
    ),
    "store_keeps_skip": (
        "a re-dirtying store leaves the skip bit set, so the next CBO.X "
        "is wrongly dropped (§6.2 unsoundness)"
    ),
    "skip_dirty_grant": (
        "fills from a dirty L2 (GrantDataDirty) set the skip bit as if "
        "the line were persisted"
    ),
    "fence_forgets_writebacks": (
        "FENCE commits without waiting for the thread's outstanding "
        "writebacks (§5.3 violation)"
    ),
    "range_skips_unreached_lines": (
        "CBO.RANGE reports completion with the lines past its cursor "
        "never swept — a crash after the op's ordering token retires "
        "loses every write in the unreached tail.  The ranged store "
        "sweep injects this via TimingSystem.mutants"
    ),
}


@contextmanager
def timing_mutant(system, name: str) -> Iterator[None]:
    """Enable one timing-model mutant for the duration of the block."""
    if name not in TIMING_MUTANTS:
        raise ValueError(f"unknown timing mutant {name!r}")
    system.mutants.add(name)
    try:
        yield
    finally:
        system.mutants.discard(name)


#: Soc mutants: name -> what breaks while the patch is active
SOC_MUTANTS: Dict[str, str] = {
    "grant_dirty_sets_skip": (
        "GrantData marked dirty still sets the skip bit on install, so a "
        "not-yet-persisted line pretends to be persisted"
    ),
    "fence_ignores_flushing": (
        "fences commit while the flush counter is nonzero, so a crash "
        "after the fence can lose the CBO.X payload still in the FSHRs"
    ),
}


#: store mutants: seeded application-level bugs the store crash sweep
#: (:class:`repro.verify.store.StoreCrashSweep`) must turn red on.
#: Inject by passing ``mutants=(name,)`` to the sweep: ack-before-fence
#: flows into :attr:`DurableStore.mutants`, the replay mutant flips
#: ``check_lsn=False`` on :func:`repro.store.recovery.recover`.
STORE_MUTANTS: Dict[str, str] = {
    "store_ack_before_fence": (
        "group commit acknowledges its tickets before the epoch's fence "
        "retires, so a crash in the in-flight writeback window loses "
        "acknowledged operations"
    ),
    "store_replay_trusts_crc": (
        "log replay trusts the CRC alone and ignores the LSN chain, so "
        "after the log wraps, stale records from an earlier lap (whose "
        "CRCs are self-consistent) resurface as fresh commits"
    ),
}


#: shared-log mutants: seeded bugs the *shared* crash sweep
#: (:class:`repro.verify.store.SharedStoreCrashSweep`) must turn red on.
#: Same injection path (``mutants=(name,)`` on the sweep, flowing into
#: :attr:`SharedLogStore.mutants`).
SHARED_STORE_MUTANTS: Dict[str, str] = {
    "shared_ack_before_fence": (
        "the sealing leader acknowledges the *other* threads' tickets "
        "before its fence retires — as if its fence only covered its own "
        "records — so a crash in the epoch's in-flight writeback window "
        "loses acknowledged follower updates"
    ),
}


#: serving-tier mutants: seeded bugs the stage-7 session sweep
#: (:class:`repro.verify.serve.ServeCrashSweep`) must turn red on.
#: Inject by passing ``mutants=(name,)`` to the sweep, flowing into
#: :attr:`repro.serve.tier.ServeTier.mutants`.
SERVE_MUTANTS: Dict[str, str] = {
    "stale_snapshot_read": (
        "snapshot reads ignore the session's LSN floor and answer from "
        "the published checkpoint even when it predates the session's "
        "own writes — read-your-writes and monotonic reads both break"
    ),
    "shed_acked_op": (
        "admission control applies its decision only after the op has "
        "been ticketed, so a request reported 'shed' to the client is "
        "nonetheless journaled, sealed, and recovered"
    ),
}


#: transaction mutants: seeded bugs the stage-8 txn sweeps
#: (:class:`repro.verify.txn.TxnCrashSweep` /
#: :class:`repro.verify.txn.SharedTxnCrashSweep`) must turn red on.
#: ``txn_commit_before_fence`` flows into the store's ``mutants`` set;
#: ``txn_partial_replay`` flips ``txn_partial=True`` on
#: :func:`repro.store.recovery.recover`.
TXN_MUTANTS: Dict[str, str] = {
    "txn_partial_replay": (
        "recovery applies the surviving prefix of a transaction whose "
        "commit record was torn off, instead of rolling the run back "
        "whole — exactly the partial-transaction state the TxnOracle "
        "subset check rejects"
    ),
    "txn_commit_before_fence": (
        "the transaction commit path acknowledges the ticket as soon as "
        "the OP_TXN_COMMIT record is in cache, before any epoch seal or "
        "fence — a crash before the fence loses an acknowledged "
        "transaction"
    ),
}


@contextmanager
def soc_mutant(name: str) -> Iterator[None]:
    """Patch the cycle-level model with one known bug for the block.

    Patches the *classes*, so apply before constructing the Soc or after —
    either works, every instance is affected while the block is active.
    """
    if name == "grant_dirty_sets_skip":
        from repro.uarch.l1 import L1DataCache

        original = L1DataCache._handle_grant

        def patched(self, grant, cycle):
            original(self, grant, cycle)
            hit = self.meta.lookup(grant.address)
            if hit is not None and self.params.skip_it:
                hit[1].skip = True

        L1DataCache._handle_grant = patched
        try:
            yield
        finally:
            L1DataCache._handle_grant = original
    elif name == "fence_ignores_flushing":
        from repro.uarch.cpu import Core

        original_blocker = Core._fence_blocker

        def patched_blocker(self):
            blocker = original_blocker(self)
            return None if blocker == "flush" else blocker

        Core._fence_blocker = patched_blocker
        try:
            yield
        finally:
            Core._fence_blocker = original_blocker
    else:
        raise ValueError(f"unknown soc mutant {name!r}")
