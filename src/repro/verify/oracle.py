"""The §4/§6 durability oracle.

The oracle tracks, per word, the sequence of architecturally-written
values (its *history*) and the *floor*: the oldest version the
persistence domain may still hold.  The floor rises when a fence seals a
CBO.X — from that point on, a crash image whose version for the word is
older than the floor means a fenced store was lost.  Three checks:

``lost``
    A word's persisted version is older than its floor: the §4 contract
    (CBO.X + fence ⇒ persisted) was violated.
``ghost``
    The persisted value was never architecturally written: the crash
    image contains bytes no execution could have produced.
``skip_unsound``
    A line carries the Skip It bit while it is dirty or differs from the
    persistence domain — the §6.2 soundness invariant.  Skipping a CBO.X
    on such a line silently drops the durability contract.

Histories assume *value-unique stores*: every store in a checked program
writes a distinct nonzero value, so a persisted value identifies its
version.  The program generators in :mod:`repro.verify.fuzz` guarantee
this; :meth:`WordHistory.observe` rejects duplicates loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: version number of the initial (all-zeroes) contents of a word
INITIAL_VERSION = 0


@dataclass(frozen=True)
class Violation:
    """One oracle failure at a crash point."""

    kind: str  # "lost" | "ghost" | "skip_unsound"
    word: int
    detail: str
    at: object = None  # cycle (Soc) or op index (TimingSystem)

    def __str__(self) -> str:
        where = f" @ {self.at}" if self.at is not None else ""
        return f"[{self.kind}] word {self.word:#x}{where}: {self.detail}"


class WordHistory:
    """Per-word architectural write history with version numbers.

    Version 0 is the initial zero contents; version ``k`` is the ``k``-th
    observed write.  Values must be unique per word (and nonzero) so a
    persisted value maps back to exactly one version.
    """

    def __init__(self) -> None:
        self._values: Dict[int, List[int]] = {}

    def words(self) -> Iterable[int]:
        return self._values.keys()

    def observe(self, word: int, value: int) -> Optional[int]:
        """Record *value* as the newest architectural value of *word*.

        Returns the new version number, or ``None`` when the value is
        unchanged (no new write happened).
        """
        history = self._values.setdefault(word, [])
        if history and history[-1] == value:
            return None
        if not history and value == 0:
            return None  # still the initial contents
        if value in history or value == 0:
            raise ValueError(
                f"word {word:#x}: value {value} repeats in history; the "
                "oracle needs value-unique nonzero stores"
            )
        history.append(value)
        return len(history)

    def latest_version(self, word: int) -> int:
        return len(self._values.get(word, ()))

    def version_of(self, word: int, value: int) -> Optional[int]:
        """Version holding *value*, or ``None`` when no version ever did."""
        if value == 0:
            return INITIAL_VERSION
        history = self._values.get(word, [])
        try:
            return history.index(value) + 1
        except ValueError:
            return None

    def value_of(self, word: int, version: int) -> int:
        if version == INITIAL_VERSION:
            return 0
        return self._values[word][version - 1]


class DurabilityOracle:
    """Checks crash images against the fenced-durability floor."""

    def __init__(self, history: Optional[WordHistory] = None) -> None:
        self.history = history or WordHistory()
        self.floor: Dict[int, int] = {}
        self.seals = 0

    def seal(self, versions: Dict[int, int]) -> None:
        """Raise the floor: a fence retired a CBO.X that covered *versions*.

        ``versions`` maps each word of the CBO's line to the version it
        had when the CBO issued — everything at or below that version is
        now guaranteed persisted.
        """
        self.seals += 1
        for word, version in versions.items():
            if version > self.floor.get(word, INITIAL_VERSION):
                self.floor[word] = version

    def check_image(
        self,
        image: Dict[int, int],
        at: object = None,
        ceiling: Optional[Dict[int, int]] = None,
    ) -> List[Violation]:
        """Diff a crash image (word → value) against history and floor.

        *ceiling* optionally maps each word to the newest version the
        execution has architecturally produced so far; a persisted value
        from a version above it is data from the future — written to the
        persistence domain before the store that produces it executed.
        """
        violations: List[Violation] = []
        for word in set(self.history.words()) | set(self.floor):
            value = image.get(word, 0)
            version = self.history.version_of(word, value)
            if version is None:
                violations.append(
                    Violation(
                        kind="ghost",
                        word=word,
                        detail=f"persisted value {value} was never written",
                        at=at,
                    )
                )
                continue
            if ceiling is not None and version > ceiling.get(word, 0):
                violations.append(
                    Violation(
                        kind="ghost",
                        word=word,
                        detail=(
                            f"persisted version {version} (value {value}) "
                            f"is from the future: only "
                            f"{ceiling.get(word, 0)} writes have executed"
                        ),
                        at=at,
                    )
                )
                continue
            floor = self.floor.get(word, INITIAL_VERSION)
            if version < floor:
                violations.append(
                    Violation(
                        kind="lost",
                        word=word,
                        detail=(
                            f"persisted version {version} (value {value}) "
                            f"is older than the fenced floor {floor} (value "
                            f"{self.history.value_of(word, floor)})"
                        ),
                        at=at,
                    )
                )
        return violations


# --------------------------------------------------------------- skip bits
def check_soc_skip_bits(soc, at: object = None) -> List[Violation]:
    """§6.2 on the cycle model: skip ⇒ clean ∧ byte-identical to DRAM."""
    violations: List[Violation] = []
    for l1 in soc.l1s:
        for set_idx, way, entry in l1.meta.iter_valid():
            if not entry.skip:
                continue
            address = l1.meta.address_of(set_idx, entry)
            if entry.dirty:
                violations.append(
                    Violation(
                        kind="skip_unsound",
                        word=address,
                        detail=f"L1 {l1.agent_id} skip bit set on dirty line",
                        at=at,
                    )
                )
                continue
            cached = l1.data.read_line(set_idx, way)
            memory_line = soc.memory.peek_line(address)
            if cached != memory_line:
                violations.append(
                    Violation(
                        kind="skip_unsound",
                        word=address,
                        detail=(
                            f"L1 {l1.agent_id} skip bit set but line "
                            "differs from DRAM"
                        ),
                        at=at,
                    )
                )
    return violations


def check_timing_skip_bits(system, at: object = None) -> List[Violation]:
    """§6.2 on the timing model: skip ⇒ clean ∧ persisted-or-in-flight.

    The timing model sets the skip bit at CBO issue while the DRAM write
    is still in flight (the same fence that covers the CBO waits for it),
    so in-flight payloads of the line count as persistence-domain bytes
    for this invariant.
    """
    violations: List[Violation] = []
    for tid, l1 in enumerate(system.l1s):
        for line, rec in l1.items():
            if not rec.skip:
                continue
            if rec.dirty:
                violations.append(
                    Violation(
                        kind="skip_unsound",
                        word=line,
                        detail=f"thread {tid} skip bit set on dirty line",
                        at=at,
                    )
                )
                continue
            effective = dict(system.persisted)
            for wb in system.in_flight:
                if wb.line == line:
                    effective.update(wb.values)
            for word in system._words_of(line):
                if system.arch.get(word, 0) != effective.get(word, 0):
                    violations.append(
                        Violation(
                            kind="skip_unsound",
                            word=word,
                            detail=(
                                f"thread {tid} skip bit set but word holds "
                                f"{system.arch.get(word, 0)} vs persisted "
                                f"{effective.get(word, 0)}"
                            ),
                            at=at,
                        )
                    )
    return violations
