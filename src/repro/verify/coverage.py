"""FSM coverage riding the observability bus.

A verification run that never drove the flush unit through
``root_release_data`` says nothing about the §5.2 writeback path, however
green it looks.  :class:`FsmCoverage` subscribes to an
:class:`~repro.obs.events.EventBus` and tallies three universes:

* **FSHR states** — every state a ``cbo`` span passes through (the §5.2
  FSM: queued, meta_write, fill_buffer, root_release_data, root_release,
  root_release_ack).  This is the gating universe:
  :meth:`FsmCoverage.meets_floor` compares it against the coverage floor.
* **TileLink opcodes** — message class names crossing any channel.
* **Interleavings** — which *categories* of activity (CBO, probe,
  eviction, L1 MSHR) were simultaneously in flight when a new span
  opened.  Concurrent CBO+probe or CBO+eviction windows are exactly the
  §5.4 interference cases.

``merge`` combines trackers from multiple runs so a sweep can gate on
aggregate coverage.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional

#: the §5.2 FSHR FSM, plus the flush-queue wait that precedes it
FSHR_STATES = frozenset(
    {
        "queued",
        "meta_write",
        "fill_buffer",
        "root_release_data",
        "root_release",
        "root_release_ack",
    }
)

#: the CBO.RANGE sweep FSM: the scan cursor plus the per-line pipeline
#: twins it drives for the line under the cursor
RANGE_STATES = frozenset(
    {
        "range_scan",
        "range_meta_write",
        "range_fill_buffer",
        "range_release_data",
        "range_release",
        "range_release_ack",
    }
)

#: the combined gating universe: ``--floor`` is measured against this
ALL_FSHR_STATES = FSHR_STATES | RANGE_STATES

#: every TileLink message class the model can emit (Grant is modelled as
#: GrantData throughout: the L2 always responds with data)
TILELINK_OPS = frozenset(
    {
        "Acquire",
        "Probe",
        "ProbeAck",
        "Release",
        "GrantData",
        "ReleaseAck",
        "GrantAck",
    }
)

#: span categories whose overlap makes an interesting interleaving
INTERLEAVING_CATEGORIES = frozenset({"cbo", "probe", "eviction", "l1_mshr"})

#: default gating floor on FSHR-state coverage (the acceptance bar)
DEFAULT_FLOOR = 0.9


class FsmCoverage:
    """Event-bus subscriber tallying FSM/opcode/interleaving coverage."""

    def __init__(self, floor: float = DEFAULT_FLOOR) -> None:
        self.floor = floor
        self.fshr_states: Counter = Counter()
        self.tilelink_ops: Counter = Counter()
        self.interleavings: Counter = Counter()  # FrozenSet[str] -> count
        self._open_categories: Counter = Counter()
        self._bus = None

    # ------------------------------------------------------------- wiring
    def attach(self, bus) -> "FsmCoverage":
        bus.subscribe(self._on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def _on_event(self, event) -> None:
        if event.category == "tilelink":
            if event.name in TILELINK_OPS:
                self.tilelink_ops[event.name] += 1
            return
        name = event.name
        state: Optional[str] = None
        if ":" in name:
            state = name.rsplit(":", 1)[1]
        if event.category == "cbo" and state is not None:
            if state == "begin":
                self.fshr_states["queued"] += 1
            elif state in ALL_FSHR_STATES:
                self.fshr_states[state] += 1
        if event.category in INTERLEAVING_CATEGORIES and state is not None:
            if state == "begin":
                self._open_categories[event.category] += 1
                signature: FrozenSet[str] = frozenset(
                    category
                    for category, count in self._open_categories.items()
                    if count > 0
                )
                self.interleavings[signature] += 1
            elif state == "end":
                if self._open_categories[event.category] > 0:
                    self._open_categories[event.category] -= 1

    # -------------------------------------------------------------- gating
    def fshr_coverage(self) -> float:
        """Coverage of the per-line FSM (including the flush-queue wait)."""
        return len(set(self.fshr_states) & FSHR_STATES) / len(FSHR_STATES)

    def range_coverage(self) -> float:
        """Coverage of the CBO.RANGE sweep FSM."""
        return len(set(self.fshr_states) & RANGE_STATES) / len(RANGE_STATES)

    def total_coverage(self) -> float:
        """Combined coverage over both universes — what the floor gates."""
        return len(set(self.fshr_states) & ALL_FSHR_STATES) / len(
            ALL_FSHR_STATES
        )

    def missing_fshr_states(self) -> List[str]:
        return sorted(FSHR_STATES - set(self.fshr_states))

    def missing_range_states(self) -> List[str]:
        return sorted(RANGE_STATES - set(self.fshr_states))

    def missing_tilelink_ops(self) -> List[str]:
        return sorted(TILELINK_OPS - set(self.tilelink_ops))

    def meets_floor(self, floor: Optional[float] = None) -> bool:
        return self.total_coverage() >= (self.floor if floor is None else floor)

    def merge(self, other: "FsmCoverage") -> "FsmCoverage":
        self.fshr_states.update(other.fshr_states)
        self.tilelink_ops.update(other.tilelink_ops)
        self.interleavings.update(other.interleavings)
        return self

    # ------------------------------------------------------------- report
    def report(self) -> Dict[str, object]:
        return {
            "fshr_coverage": self.fshr_coverage(),
            "range_coverage": self.range_coverage(),
            "total_coverage": self.total_coverage(),
            "fshr_states": dict(self.fshr_states),
            "fshr_missing": self.missing_fshr_states(),
            "range_missing": self.missing_range_states(),
            "tilelink_ops": dict(self.tilelink_ops),
            "tilelink_missing": self.missing_tilelink_ops(),
            "interleavings": {
                "+".join(sorted(sig)): count
                for sig, count in sorted(
                    self.interleavings.items(), key=lambda kv: sorted(kv[0])
                )
            },
        }

    def report_lines(self) -> List[str]:
        lines = [
            f"FSHR state coverage: {self.total_coverage():.0%} "
            f"(floor {self.floor:.0%}; per-line {self.fshr_coverage():.0%}, "
            f"range {self.range_coverage():.0%})"
        ]
        for state in sorted(FSHR_STATES):
            count = self.fshr_states.get(state, 0)
            mark = " " if count else "!"
            lines.append(f"  {mark} {state:<20} {count}")
        for state in sorted(RANGE_STATES):
            count = self.fshr_states.get(state, 0)
            mark = " " if count else "!"
            lines.append(f"  {mark} {state:<20} {count}")
        lines.append(
            "TileLink opcodes: "
            f"{len(set(self.tilelink_ops) & TILELINK_OPS)}/{len(TILELINK_OPS)}"
        )
        for op in sorted(TILELINK_OPS):
            count = self.tilelink_ops.get(op, 0)
            mark = " " if count else "!"
            lines.append(f"  {mark} {op:<20} {count}")
        lines.append(f"Interleaving signatures: {len(self.interleavings)}")
        for sig, count in sorted(
            self.interleavings.items(), key=lambda kv: sorted(kv[0])
        ):
            lines.append(f"    {'+'.join(sorted(sig)):<28} {count}")
        return lines
