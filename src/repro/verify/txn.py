"""Stage 7: transaction-atomicity crash sweep (`repro.store.txn`).

The store sweeps (stages 4–5) already pin the journal-prefix contract:
recovery surfaces an exact prefix of sealed epochs.  Transactions add
a stronger clause *inside* an epoch: a multi-key write set is
all-or-nothing — no crash image may recover a **proper subset** of a
transaction's writes, and no image may surface any write of a
transaction whose commit record did not replay.

:class:`TxnOracle` layers exactly that over :class:`StoreOracle`.  It
watches the WAL append stream (``wal.on_append``), reassembles each
transaction's write set when its ``OP_TXN_COMMIT`` record goes by, and
at every crash point checks, per transaction:

* **uncommitted** (commit record beyond ``applied_lsn``) — none of its
  writes may be visible in the recovered state;
* **committed** — of the writes still *expected* visible (not
  overwritten by later journaled effects), either all or none may be
  missing; some-but-not-all is a torn transaction.

Both tests lean on the sweep workload's unique put values: a value
seen in the recovered map identifies exactly one journaled write.

The sweeps drive mixed plain/transactional workloads through a real
:class:`~repro.store.store.DurableStore` (:class:`TxnCrashSweep`) and
a 3-thread :class:`~repro.store.shared.SharedLogStore`
(:class:`SharedTxnCrashSweep`), probing every reserve / append /
commit / seal / checkpoint boundary, with writeback-completion
sub-windows at the two boundaries that have real in-flight windows —
the same discipline as stages 4–5.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.store.layout import OP_TXN, OP_TXN_COMMIT
from repro.store.shared import SharedLogStore
from repro.store.store import DurableStore
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.verify.injector import MAX_VIOLATIONS, timing_crash_image
from repro.verify.oracle import Violation
from repro.verify.store import (
    StoreOracle,
    StoreSweepReport,
    WINDOWED_BOUNDARIES,
)

#: mutant names this sweep understands (see repro.verify.mutants)
_REPLAY_MUTANTS = frozenset({"store_replay_trusts_crc", "txn_partial_replay"})


class TxnOracle(StoreOracle):
    """Journal-prefix oracle plus per-transaction atomicity."""

    def __init__(self) -> None:
        super().__init__()
        # open-run buffer: (lsn, key, value) of OP_TXN records not yet
        # sealed by their OP_TXN_COMMIT (runs are contiguous, so the
        # last n entries always belong to the commit record seen next)
        self._txn_buffer: List[Tuple[int, int, int]] = []
        #: txn id -> (commit-record LSN, ((lsn, key, value), ...))
        self.txns: Dict[int, Tuple[int, Tuple[Tuple[int, int, int], ...]]] = {}

    def observe(self, lsn: int, op: int, key: int, value: int) -> None:
        super().observe(lsn, op, key, value)
        if op == OP_TXN:
            self._txn_buffer.append((lsn, key, value))
        elif op == OP_TXN_COMMIT:
            writes = tuple(self._txn_buffer[-value:]) if value else ()
            if value:
                del self._txn_buffer[-value:]
            self.txns[key] = (lsn, writes)

    def check_state(
        self,
        state,
        layout,
        *,
        acked_lsn: int,
        initiated_lsn: int,
        at: object,
    ) -> List[Violation]:
        violations = super().check_state(
            state,
            layout,
            acked_lsn=acked_lsn,
            initiated_lsn=initiated_lsn,
            at=at,
        )
        reference = self.reference_state(state.applied_lsn)
        for txn_id, (commit_lsn, writes) in self.txns.items():
            # deletes are covered by the exact-prefix check; the subset
            # test needs puts, whose unique values identify provenance
            puts = [(key, value) for (_lsn, key, value) in writes if value]
            if not puts:
                continue
            if commit_lsn > state.applied_lsn:
                visible = [
                    key for key, value in puts
                    if state.items.get(key) == value
                ]
                if visible:
                    violations.append(
                        Violation(
                            kind="txn_partial",
                            word=layout.lsn_field_addr(commit_lsn),
                            detail=(
                                f"txn {txn_id} (commit lsn={commit_lsn}) "
                                f"did not replay (applied="
                                f"{state.applied_lsn}) but its writes to "
                                f"keys {visible[:4]} are visible"
                            ),
                            at=at,
                        )
                    )
            else:
                # committed: writes the journal still expects visible
                # (no later effect on the key up to applied_lsn) must be
                # all present or — impossible for a correct store, but
                # the test is subset-shaped — all absent
                expected = [
                    (key, value) for key, value in puts
                    if reference.get(key) == value
                ]
                seen = [
                    state.items.get(key) == value for key, value in expected
                ]
                if seen and any(seen) and not all(seen):
                    missing = [
                        key for (key, value), ok in zip(expected, seen)
                        if not ok
                    ]
                    violations.append(
                        Violation(
                            kind="txn_partial",
                            word=layout.lsn_field_addr(commit_lsn),
                            detail=(
                                f"committed txn {txn_id} (commit lsn="
                                f"{commit_lsn} <= applied="
                                f"{state.applied_lsn}) recovered torn: "
                                f"keys {missing[:4]} missing"
                            ),
                            at=at,
                        )
                    )
        return violations


def _drive_workload(rng: random.Random, clients, ops: int, key_range: int) -> None:
    """Mixed plain/transactional traffic over one or more store handles.

    ``clients`` is a sequence of ``(put, delete, begin)`` triples —
    one per virtual thread — visited round-robin.  Roughly half the
    steps are plain ops; the rest are transactions of 2–4 writes
    (mostly puts, the odd delete), of which ~10% abort client-side.
    Put values are globally unique so the oracle can attribute every
    recovered value to exactly one journaled write.
    """
    next_value = 1
    for i in range(ops):
        put, delete, begin = clients[i % len(clients)]
        roll = rng.random()
        if roll < 0.45:
            key = rng.randint(1, key_range)
            if rng.random() < 0.75:
                put(key, 1_000_000 + next_value)
                next_value += 1
            else:
                delete(key)
            continue
        txn = begin()
        for _ in range(rng.randint(2, 4)):
            key = rng.randint(1, key_range)
            if rng.random() < 0.85:
                txn.put(key, 1_000_000 + next_value)
                next_value += 1
            else:
                txn.delete(key)
        if roll < 0.5:
            txn.abort()
        else:
            txn.commit()


class TxnCrashSweep:
    """Crash-sweep transactions on a private-log :class:`DurableStore`."""

    def __init__(
        self,
        optimizer: str = "skipit",
        group_commit: int = 8,
        *,
        ops: int = 36,
        seed: int = 0,
        log_capacity: Optional[int] = None,
        checkpoint_every: int = 3,
        num_buckets: int = 16,
        key_range: int = 24,
        mutants: Sequence[str] = (),
    ) -> None:
        self.optimizer = optimizer
        self.group_commit = group_commit
        self.ops = ops
        self.seed = seed
        # must hold a full batch of txn tickets (a ticket can span five
        # slots) plus marker slack; small enough that sweeps wrap
        self.log_capacity = log_capacity or max(64, 5 * group_commit + 8)
        self.checkpoint_every = checkpoint_every
        self.num_buckets = num_buckets
        self.key_range = key_range
        self.mutants = tuple(mutants)

    def run(self) -> StoreSweepReport:
        report = StoreSweepReport(
            config=f"txn/{self.optimizer}/gc={self.group_commit}"
        )
        params = TimingParams(
            num_threads=1, skip_it=(self.optimizer == "skipit")
        )
        system = TimingSystem(params)
        heap = SimHeap(params.line_bytes)
        view = PMemView(
            system.threads[0],
            make_policy("none"),
            make_optimizer(self.optimizer, heap),
        )
        store = DurableStore(
            heap,
            view,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            checkpoint_every=self.checkpoint_every,
            num_buckets=self.num_buckets,
        )
        oracle = TxnOracle()
        store.wal.on_append = oracle.observe
        check_lsn = "store_replay_trusts_crc" not in self.mutants
        txn_partial = "txn_partial_replay" in self.mutants
        store.mutants.update(
            m for m in self.mutants if m not in _REPLAY_MUTANTS
        )

        def probe(name: str) -> None:
            report.boundaries += 1
            if len(report.violations) >= MAX_VIOLATIONS:
                return
            ats: List[Optional[int]] = [None]
            if name in WINDOWED_BOUNDARIES:
                ats.extend(sorted({wb.done for wb in system.in_flight}))
            for at in ats:
                report.crash_points += 1
                report.recoveries += 1
                image = timing_crash_image(system, at=at)
                report.violations.extend(
                    oracle.check(
                        persisted_reader(image),
                        store.layout,
                        acked_lsn=store.acked_lsn,
                        initiated_lsn=store.initiated_lsn,
                        at=f"{name}@{'now' if at is None else at}",
                        check_lsn=check_lsn,
                        txn_partial=txn_partial,
                    )[: MAX_VIOLATIONS - len(report.violations)]
                )

        store.probe = probe
        rng = random.Random(self.seed)
        _drive_workload(
            rng,
            [(store.put, store.delete, store.begin)],
            self.ops,
            self.key_range,
        )
        store.sync()
        store.checkpoint()
        return report


class SharedTxnCrashSweep:
    """Crash-sweep transactions on a 3-thread :class:`SharedLogStore`.

    What is new under test beyond :class:`TxnCrashSweep`: the
    CAS-reserved contiguous run really is contiguous under interleaved
    multi-thread appends, and the sealing thread's single fence covers
    txn records written (and left dirty) by every other thread's L1.
    """

    def __init__(
        self,
        optimizer: str = "skipit",
        group_commit: int = 8,
        *,
        threads: int = 3,
        ops: int = 36,
        seed: int = 0,
        log_capacity: Optional[int] = None,
        checkpoint_every: int = 3,
        num_buckets: int = 16,
        key_range: int = 24,
        mutants: Sequence[str] = (),
    ) -> None:
        self.optimizer = optimizer
        self.group_commit = group_commit
        self.threads = threads
        self.ops = ops
        self.seed = seed
        # an epoch is batch_size tickets per thread, each up to five
        # slots wide, plus leader-grace overshoot and marker slack
        self.log_capacity = log_capacity or max(
            96, 5 * group_commit * threads + 5 * threads + 8
        )
        self.checkpoint_every = checkpoint_every
        self.num_buckets = num_buckets
        self.key_range = key_range
        self.mutants = tuple(mutants)

    def run(self) -> StoreSweepReport:
        report = StoreSweepReport(
            config=(
                f"txn-shared/{self.optimizer}/gc={self.group_commit}"
                f"/t={self.threads}"
            )
        )
        params = TimingParams(
            num_threads=self.threads, skip_it=(self.optimizer == "skipit")
        )
        system = TimingSystem(params)
        heap = SimHeap(params.line_bytes)
        policy = make_policy("none")
        optimizer = make_optimizer(self.optimizer, heap)
        views = [
            PMemView(ctx, policy, optimizer)
            for ctx in system.threads[: self.threads]
        ]
        store = SharedLogStore(
            heap,
            views,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            checkpoint_every=self.checkpoint_every,
            num_buckets=self.num_buckets,
        )
        oracle = TxnOracle()
        store.wal.on_append = oracle.observe
        check_lsn = "store_replay_trusts_crc" not in self.mutants
        txn_partial = "txn_partial_replay" in self.mutants
        store.mutants.update(
            m for m in self.mutants if m not in _REPLAY_MUTANTS
        )

        def probe(name: str) -> None:
            report.boundaries += 1
            if len(report.violations) >= MAX_VIOLATIONS:
                return
            ats: List[Optional[int]] = [None]
            if name in WINDOWED_BOUNDARIES:
                ats.extend(sorted({wb.done for wb in system.in_flight}))
            for at in ats:
                report.crash_points += 1
                report.recoveries += 1
                image = timing_crash_image(system, at=at)
                report.violations.extend(
                    oracle.check(
                        persisted_reader(image),
                        store.layout,
                        acked_lsn=store.acked_lsn,
                        initiated_lsn=store.initiated_lsn,
                        at=f"{name}@{'now' if at is None else at}",
                        check_lsn=check_lsn,
                        txn_partial=txn_partial,
                    )[: MAX_VIOLATIONS - len(report.violations)]
                )

        store.probe = probe
        rng = random.Random(self.seed)
        handles = [store.handle(tid) for tid in range(self.threads)]
        _drive_workload(
            rng,
            [(h.put, h.delete, h.begin) for h in handles],
            self.ops,
            self.key_range,
        )
        store.sync()
        store.checkpoint()
        return report


def run_txn_sweep(
    optimizers: Sequence[str] = ("plain", "flit-adjacent", "flit-hashtable", "link-and-persist", "skipit"),
    group_commits: Sequence[int] = (1, 8, 64),
    *,
    threads: int = 3,
    ops: int = 36,
    seed: int = 0,
) -> List[Tuple[str, StoreSweepReport]]:
    """The optimizer x batch-size txn sweep (verify CLI stage 8).

    Runs on the shared log — the harder configuration: contiguous-run
    reservation under interleaving plus cross-thread sealing.  The
    private-log :class:`TxnCrashSweep` is exercised by the unit tier.
    """
    results = []
    for optimizer in optimizers:
        for group_commit in group_commits:
            sweep = SharedTxnCrashSweep(
                optimizer, group_commit, threads=threads, ops=ops, seed=seed
            )
            report = sweep.run()
            results.append((report.config, report))
    return results
