"""Serving-tier crash-point sweep: session guarantees, checked (stage 7).

The store sweeps (stages 4–5) prove the *durability* contract; the
serving tier adds *session* contracts on top, and each one is a place
where a correct store can still lie to a client:

* **Journal-prefix durability** — unchanged from stage 5: at every
  crash point the recovered state equals replaying the submitted-op
  journal up to ``applied_lsn``, nothing acked is lost, nothing
  uninitiated surfaces.
* **Read-your-writes** — a session that wrote key *k* at LSN *w* never
  reads an older value of *k* afterwards, whatever the read path
  (memtable or checkpoint snapshot).
* **Monotonic reads** — per (session, key): once a value at LSN *v* is
  observed, no later read of that key observes anything older.
* **Shed means shed** — a request the admission controller rejected
  must never be journaled, acked, or recovered.  (The honest tier
  rejects *before* ticketing, so this is vacuous there; the seeded
  ``shed_acked_op`` mutant tickets first and must turn red.)

The read-path checks run *online* — every read flows through the tier's
oracle hooks and is checked against the journal at observation time, so
a stale snapshot read is caught at the exact request that saw it.  The
durability and shed checks run at every crash point, like stage 5.

Values are globally unique per write (the workload guarantees it), so
any observed value maps back to exactly one journal LSN.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.persist.api import PMemView
from repro.persist.flushopt import make_optimizer
from repro.persist.heap import SimHeap
from repro.persist.policies import make_policy
from repro.persist.structures.base import persisted_reader
from repro.serve.tier import ServeTier
from repro.store.layout import OP_PUT
from repro.store.recovery import RecoveryError, recover
from repro.store.shared import SharedLogStore
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.verify.injector import MAX_VIOLATIONS, timing_crash_image
from repro.verify.oracle import Violation
from repro.verify.store import (
    StoreOracle,
    StoreSweepReport,
    WINDOWED_BOUNDARIES,
)


class SessionOracle:
    """Journal + per-session observation history + the session checks.

    Wraps a :class:`~repro.verify.store.StoreOracle` (which keeps the
    LSN→op journal off ``wal.on_append``) and layers:

    * ``(key, value) → lsn`` provenance, so any value a read returns is
      traced to the write that produced it (workload values are unique);
    * per ``(sid, key)`` last own-write LSN (read-your-writes floor) and
      highest observed LSN (monotonic-reads floor), checked online;
    * the shed ledger: every rejected request id with the ticket the
      tier minted for it (``None`` for the honest tier, which rejects
      before ticketing).
    """

    def __init__(self) -> None:
        self.store = StoreOracle()
        self.value_lsn: Dict[Tuple[int, int], int] = {}
        self.session_write: Dict[Tuple[int, int], int] = {}
        self.session_seen: Dict[Tuple[int, int], int] = {}
        self.shed: Dict[int, object] = {}  # rid -> ticket or None
        #: read-path violations caught at observation time
        self.online: List[Violation] = []
        self._shed_flagged: set = set()

    # -------------------------------------------------- tier/store hooks
    def observe_append(self, lsn: int, op: int, key: int, value: int) -> None:
        """``wal.on_append`` hook: journal + value provenance."""
        self.store.observe(lsn, op, key, value)
        if op == OP_PUT:
            self.value_lsn[(key, value)] = lsn

    def observe_write(self, sid: int, key: int, ticket) -> None:
        """``tier.on_write`` hook: raise the session's RYW floor."""
        self.session_write[(sid, key)] = ticket.lsn
        if ticket.lsn > self.session_seen.get((sid, key), 0):
            self.session_seen[(sid, key)] = ticket.lsn

    def observe_read(
        self, sid: int, key: int, value: Optional[int], source: str
    ) -> None:
        """``tier.on_read`` hook: RYW + monotonic reads, online."""
        at = f"{source} read s{sid} k{key}"
        if value is None:
            observed = 0
            shown = "absence"
        else:
            lsn = self.value_lsn.get((key, value))
            if lsn is None:
                self.online.append(
                    Violation(
                        kind="session_unknown_value",
                        word=key,
                        detail=(
                            f"session {sid} read value {value} for key "
                            f"{key} that no journaled write produced"
                        ),
                        at=at,
                    )
                )
                return
            observed = lsn
            shown = f"value {value} (lsn={lsn})"
        own = self.session_write.get((sid, key), 0)
        if observed < own:
            self.online.append(
                Violation(
                    kind="session_ryw",
                    word=key,
                    detail=(
                        f"session {sid} wrote key {key} at lsn={own} but "
                        f"then read {shown}"
                    ),
                    at=at,
                )
            )
        seen = self.session_seen.get((sid, key), 0)
        if observed < seen:
            self.online.append(
                Violation(
                    kind="session_monotonic",
                    word=key,
                    detail=(
                        f"session {sid} had observed key {key} at "
                        f"lsn={seen} but then read {shown}"
                    ),
                    at=at,
                )
            )
        elif observed > seen:
            self.session_seen[(sid, key)] = observed

    def observe_shed(self, rid: int, ticket) -> None:
        """``tier.on_shed`` hook: remember what rejection really did."""
        self.shed[rid] = ticket

    # ------------------------------------------------ crash-point checks
    def check(
        self,
        read,
        layout,
        *,
        acked_lsn: int,
        initiated_lsn: int,
        at: object,
        check_lsn: bool = True,
    ) -> List[Violation]:
        """Stage-5 durability contract + shed ops must not be recovered."""
        try:
            state = recover(read, layout, check_lsn=check_lsn)
        except RecoveryError as exc:
            return [
                Violation(
                    kind="unrecoverable",
                    word=layout.superblock,
                    detail=str(exc),
                    at=at,
                )
            ]
        violations = self.store.check_state(
            state,
            layout,
            acked_lsn=acked_lsn,
            initiated_lsn=initiated_lsn,
            at=at,
        )
        violations.extend(self.shed_check(state.applied_lsn, at))
        return violations

    def shed_check(self, applied_lsn: int, at: object) -> List[Violation]:
        """Any shed request whose op reached the recovered prefix.

        Each offending rid is reported once (the first crash point that
        shows it) to keep the report readable; one is enough for red.
        """
        out: List[Violation] = []
        for rid in sorted(self.shed):
            ticket = self.shed[rid]
            if ticket is None or rid in self._shed_flagged:
                continue
            if ticket.lsn <= applied_lsn or ticket.acked:
                self._shed_flagged.add(rid)
                out.append(
                    Violation(
                        kind="shed_acked",
                        word=ticket.lsn,
                        detail=(
                            f"request {rid} was shed by admission control "
                            f"but its op (lsn={ticket.lsn}, "
                            f"acked={ticket.acked}) is in the recovered "
                            f"prefix (applied_lsn={applied_lsn})"
                        ),
                        at=at,
                    )
                )
        return out


class ServeCrashSweep:
    """Crash-sweep one (optimizer, group-commit) served configuration.

    Same probe discipline as stage 5 — a crash image at every protocol
    boundary, plus every writeback-completion sub-window at the two
    windowed boundaries — but the workload is driven through a
    :class:`~repro.serve.tier.ServeTier` with real sessions, admission
    control (``high_water`` low enough that backpressure engages and
    sheds), and snapshot reads.  Each session ends with repeated
    put-then-snapshot-read pairs on its own key: the tightest
    read-your-writes window, which the honest floor gate must serve
    from the memtable and the ``stale_snapshot_read`` mutant answers
    from the stale checkpoint.
    """

    def __init__(
        self,
        optimizer: str = "skipit",
        group_commit: int = 8,
        *,
        sessions: int = 2,
        ops: int = 48,
        seed: int = 0,
        log_capacity: Optional[int] = None,
        checkpoint_every: int = 3,
        num_buckets: int = 16,
        key_range: int = 24,
        high_water: int = 6,
        low_water: int = 2,
        mutants: Sequence[str] = (),
    ) -> None:
        self.optimizer = optimizer
        self.group_commit = group_commit
        self.sessions = sessions
        self.ops = ops
        self.seed = seed
        self.log_capacity = log_capacity or max(
            48, 2 * group_commit * sessions + 2 * sessions + 8
        )
        self.checkpoint_every = checkpoint_every
        self.num_buckets = num_buckets
        self.key_range = key_range
        self.high_water = high_water
        self.low_water = low_water
        self.mutants = tuple(mutants)

    def run(self) -> StoreSweepReport:
        report = StoreSweepReport(
            config=(
                f"serve/{self.optimizer}/gc={self.group_commit}"
                f"/s={self.sessions}"
            )
        )
        params = TimingParams(
            num_threads=self.sessions, skip_it=(self.optimizer == "skipit")
        )
        system = TimingSystem(params)
        heap = SimHeap(params.line_bytes)
        policy = make_policy("none")
        optimizer = make_optimizer(self.optimizer, heap)
        views = [
            PMemView(ctx, policy, optimizer)
            for ctx in system.threads[: self.sessions]
        ]
        store = SharedLogStore(
            heap,
            views,
            log_capacity=self.log_capacity,
            batch_size=self.group_commit,
            checkpoint_every=self.checkpoint_every,
            num_buckets=self.num_buckets,
        )
        tier = ServeTier(
            store, high_water=self.high_water, low_water=self.low_water
        )
        tier.mutants.update(self.mutants)
        oracle = SessionOracle()
        store.wal.on_append = oracle.observe_append
        tier.on_read = oracle.observe_read
        tier.on_write = oracle.observe_write
        tier.on_shed = oracle.observe_shed

        def probe(name: str) -> None:
            report.boundaries += 1
            if len(report.violations) >= MAX_VIOLATIONS:
                return
            ats: List[Optional[int]] = [None]
            if name in WINDOWED_BOUNDARIES:
                ats.extend(sorted({wb.done for wb in system.in_flight}))
            for at in ats:
                report.crash_points += 1
                report.recoveries += 1
                image = timing_crash_image(system, at=at)
                report.violations.extend(
                    oracle.check(
                        persisted_reader(image),
                        store.layout,
                        acked_lsn=store.acked_lsn,
                        initiated_lsn=store.initiated_lsn,
                        at=f"{name}@{'now' if at is None else at}",
                    )[: MAX_VIOLATIONS - len(report.violations)]
                )

        store.probe = probe

        # Prefill every key and publish a checkpoint so snapshot reads
        # have a snapshot from the first request on (probed + journaled
        # like everything else; values live in their own space).
        for key in range(1, self.key_range + 1):
            store.put(0, key, 2_000_000 + key)
        store.checkpoint(0)

        handles = [tier.session(sid, sid) for sid in range(self.sessions)]
        rng = random.Random(self.seed)
        next_value = 1
        for i in range(self.ops):
            session = handles[i % self.sessions]
            key = rng.randint(1, self.key_range)
            r = rng.random()
            if r < 0.5:
                tier.put(session, key, 1_000_000 + next_value)
                next_value += 1
            elif r < 0.75:
                tier.get(session, key)
            else:
                tier.snapshot_get(session, key)

        # The targeted read-your-writes window, twice per session: a
        # single unlucky checkpoint between one put and its read could
        # mask the stale-snapshot mutant; two back-to-back pairs cannot
        # both be masked (checkpoint_every > 1 commit apart).
        for session in handles:
            key = session.sid + 1
            for _ in range(2):
                tier.put(session, key, 1_000_000 + next_value)
                next_value += 1
                tier.snapshot_get(session, key)

        tier.drain()
        store.checkpoint(0)
        report.violations.extend(
            oracle.online[: MAX_VIOLATIONS - len(report.violations)]
        )
        report.violations.extend(
            oracle.shed_check(store.acked_lsn, at="final")[
                : MAX_VIOLATIONS - len(report.violations)
            ]
        )
        return report


def run_serve_sweep(
    optimizers: Sequence[str] = ("plain", "flit-adjacent", "flit-hashtable", "link-and-persist", "skipit"),
    group_commits: Sequence[int] = (1, 8, 64),
    *,
    sessions: int = 2,
    ops: int = 48,
    seed: int = 0,
) -> List[Tuple[str, StoreSweepReport]]:
    """The optimizer x batch-size served-session sweep (verify stage 7)."""
    results = []
    for optimizer in optimizers:
        for group_commit in group_commits:
            sweep = ServeCrashSweep(
                optimizer,
                group_commit,
                sessions=sessions,
                ops=ops,
                seed=seed,
            )
            report = sweep.run()
            results.append((report.config, report))
    return results
