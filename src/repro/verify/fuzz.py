"""Differential cross-model fuzzing: cycle-level Soc vs fast timing model.

The two simulators implement the same §4/§6 semantics at wildly different
fidelities; wherever their observable behaviour is specified to agree,
generated programs must not tell them apart.  The fuzzer:

1. generates one straight-line memory program per core — value-unique
   stores, per-core word ownership on shared lines (false sharing is fair
   game, true racing of one word is not, so final images are
   deterministic), plus a *sealing epilogue* (fence, clean every touched
   line, fence) so both models end fully persisted;
2. runs the programs on a :class:`~repro.uarch.soc.Soc` (coalescing
   disabled: the timing model has no queue to merge in, so per-line
   counts would legitimately diverge) and on a
   :class:`~repro.timing.system.TimingSystem`;
3. diffs the persisted images — and, for single-core programs, the
   per-line skip/issue decisions and per-line DRAM writeback counts;
4. shrinks a failing program set to a minimal reproducer by greedy
   delta-debugging over the program bodies.

Every case is identified by its seed: ``DifferentialFuzzer().run_case(
ProgramGenerator(seed).generate_bodies())`` reproduces it exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import DEFAULT_SOC
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.requests import MemOp
from repro.uarch.soc import Soc

#: default lines the generator draws from — distinct L1/L2 sets, so
#: programs exercise multiple sets without forcing capacity evictions
#: (capacity-eviction DRAM traffic would legitimately differ per model)
DEFAULT_LINES = tuple(0x3000 + i * 0x40 for i in range(4))

WORDS_PER_LINE = 8
WORD_BYTES = 8


@dataclass
class DiffReport:
    """Outcome of one differential case."""

    seed: Optional[int]
    mismatches: List[str] = field(default_factory=list)
    soc_cycles: int = 0
    bodies: Optional[List[List[Instr]]] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        where = f"seed={self.seed}" if self.seed is not None else "case"
        if self.ok:
            return f"{where}: models agree ({self.soc_cycles} soc cycles)"
        return f"{where}: {len(self.mismatches)} mismatches:\n  " + "\n  ".join(
            self.mismatches
        )


class ProgramGenerator:
    """Seeded generator of per-core memory programs the oracle can track.

    Word ownership: word slot *k* of every line belongs to core
    ``k % num_cores``, so two cores share lines (and fight over them
    coherence-wise) without ever racing one word.  Store values come from
    a global counter — unique and nonzero, as the durability oracle
    requires.
    """

    #: op mix: stores dominate so CBOs usually have something to persist.
    #: Ranged ops stay CLEAN/FLUSH only — the timing model has no
    #: invalidate-without-writeback, so CBO.RANGE.INVAL is Soc-only.
    WEIGHTS = (
        (MemOp.STORE, 8),
        (MemOp.LOAD, 4),
        (MemOp.CBO_CLEAN, 3),
        (MemOp.CBO_FLUSH, 2),
        (MemOp.CBO_RANGE_CLEAN, 2),
        (MemOp.CBO_RANGE_FLUSH, 1),
        (MemOp.FENCE, 2),
    )

    def __init__(
        self,
        seed: int,
        num_cores: int = 2,
        ops_per_core: int = 24,
        lines: Sequence[int] = DEFAULT_LINES,
        fenced_cbos: bool = False,
    ) -> None:
        self.seed = seed
        self.num_cores = num_cores
        self.ops_per_core = ops_per_core
        self.lines = tuple(lines)
        # fenced_cbos puts a fence after every CBO.  The cycle model
        # pipelines: a load overlapping an in-flight flush of the same
        # line can fill from a transiently-dirty L2 copy and get no skip
        # bit, where the atomic timing model fills post-flush from DRAM
        # and sets it.  Both are legal; per-line issue/skip decision
        # parity is only specified for quiescent CBOs, so the count-diff
        # configs generate fenced ones.
        self.fenced_cbos = fenced_cbos
        self.rng = random.Random(seed)
        self._next_value = 1

    def _word_for(self, core: int) -> int:
        line = self.rng.choice(self.lines)
        slots = [
            k for k in range(WORDS_PER_LINE) if k % self.num_cores == core
        ]
        return line + self.rng.choice(slots) * WORD_BYTES

    def generate_bodies(self) -> List[List[Instr]]:
        """One program body per core (no epilogue)."""
        ops = [op for op, weight in self.WEIGHTS for _ in range(weight)]
        bodies: List[List[Instr]] = []
        for core in range(self.num_cores):
            body: List[Instr] = []
            for _ in range(self.ops_per_core):
                op = self.rng.choice(ops)
                if op is MemOp.STORE:
                    body.append(
                        Instr.store(self._word_for(core), self._next_value)
                    )
                    self._next_value += 1
                elif op is MemOp.LOAD:
                    body.append(Instr.load(self.rng.choice(self.lines)))
                elif op is MemOp.CBO_CLEAN:
                    body.append(Instr.clean(self.rng.choice(self.lines)))
                    if self.fenced_cbos:
                        body.append(Instr.fence())
                elif op is MemOp.CBO_FLUSH:
                    body.append(Instr.flush(self.rng.choice(self.lines)))
                    if self.fenced_cbos:
                        body.append(Instr.fence())
                elif op in (MemOp.CBO_RANGE_CLEAN, MemOp.CBO_RANGE_FLUSH):
                    # the line pool is contiguous: any [start, start+span)
                    # slice is a valid range operand
                    start = self.rng.randrange(len(self.lines))
                    span = self.rng.randint(1, len(self.lines) - start)
                    ctor = (
                        Instr.clean_range
                        if op is MemOp.CBO_RANGE_CLEAN
                        else Instr.flush_range
                    )
                    body.append(ctor(self.lines[start], span * 64))
                    if self.fenced_cbos:
                        body.append(Instr.fence())
                else:
                    body.append(Instr.fence())
            bodies.append(body)
        return bodies

    @staticmethod
    def with_epilogue(bodies: Sequence[List[Instr]]) -> List[List[Instr]]:
        """Append the sealing epilogue: fence, clean touched lines, fence."""
        programs = []
        for body in bodies:
            touched = sorted(
                {
                    instr.address - (instr.address % 64)
                    for instr in body
                    if instr.op is MemOp.STORE
                }
            )
            epilogue = [Instr.fence()]
            epilogue += [Instr.clean(line) for line in touched]
            epilogue.append(Instr.fence())
            programs.append(list(body) + epilogue)
        return programs

    @staticmethod
    def schedule_of(
        programs: Sequence[List[Instr]],
    ) -> List[Tuple[int, Instr]]:
        """Deterministic round-robin interleaving for the timing model."""
        schedule: List[Tuple[int, Instr]] = []
        cursors = [0] * len(programs)
        remaining = sum(len(p) for p in programs)
        while remaining:
            for tid, program in enumerate(programs):
                if cursors[tid] < len(program):
                    schedule.append((tid, program[cursors[tid]]))
                    cursors[tid] += 1
                    remaining -= 1
        return schedule


class DifferentialFuzzer:
    """Runs generated programs on both models and diffs the observables."""

    def __init__(self, skip_it: bool = True, num_cores: int = 2) -> None:
        self.skip_it = skip_it
        self.num_cores = num_cores

    # ------------------------------------------------------------ backends
    def _soc_params(self):
        return dc_replace(
            DEFAULT_SOC.with_cores(self.num_cores),
            skip_it=self.skip_it,
            flush_unit=dc_replace(DEFAULT_SOC.flush_unit, coalesce=False),
        )

    def run_soc(self, programs: Sequence[List[Instr]]):
        """Returns (image, issued per line, range issues per base line,
        skipped per line, dram writes per line, cycles)."""
        from repro.obs.attach import acquire_bus, release_bus

        soc = Soc(self._soc_params())
        issued: Dict[int, int] = {}
        skipped: Dict[int, int] = {}
        range_issued: Dict[int, int] = {}

        def on_event(event) -> None:
            if event.category != "cbo":
                return
            address = event.args.get("address")
            if address is None:
                return
            if event.name.endswith(":begin"):
                # one span per op: ranged spans are keyed by their base
                # line and compared against the timing model's
                # cbo_range_issued events, not the per-line counter
                if ".range." in event.name:
                    range_issued[address] = range_issued.get(address, 0) + 1
                else:
                    issued[address] = issued.get(address, 0) + 1
            elif event.name == "skipped":
                skipped[address] = skipped.get(address, 0) + 1

        dram_writes: Dict[int, int] = {}
        original_write = soc.memory.write_line

        def counting_write(address: int, data: bytes) -> None:
            dram_writes[address] = dram_writes.get(address, 0) + 1
            original_write(address, data)

        soc.memory.write_line = counting_write
        bus = acquire_bus(soc)
        bus.subscribe(on_event)
        try:
            cycles = soc.run_programs(programs)
            soc.drain()
        finally:
            bus.unsubscribe(on_event)
            release_bus(soc)
            soc.memory.write_line = original_write
        words = self._words(programs)
        image = {w: soc.persisted_value(w) for w in words}
        return image, issued, range_issued, skipped, dram_writes, cycles

    def run_timing(self, programs: Sequence[List[Instr]]):
        """Returns (image, issued per line, range issues per base line,
        skipped per line, dram writes per line)."""
        from repro.obs.attach import attach_timing

        system = TimingSystem(
            TimingParams(num_threads=self.num_cores, skip_it=self.skip_it)
        )
        issued: Dict[int, int] = {}
        skipped: Dict[int, int] = {}
        range_issued: Dict[int, int] = {}

        def on_event(event) -> None:
            address = event.args.get("address")
            if event.name == "cbo_issued":
                issued[address] = issued.get(address, 0) + 1
            elif event.name == "cbo_range_issued":
                range_issued[address] = range_issued.get(address, 0) + 1
            elif event.name == "cbo_skipped":
                skipped[address] = skipped.get(address, 0) + 1

        bus = attach_timing(system)
        bus.subscribe(on_event)
        try:
            for tid, instr in ProgramGenerator.schedule_of(programs):
                ctx = system.threads[tid]
                if instr.op is MemOp.STORE:
                    ctx.store(instr.address, instr.data)
                elif instr.op is MemOp.LOAD:
                    ctx.load(instr.address)
                elif instr.op is MemOp.CBO_CLEAN:
                    ctx.clean(instr.address)
                elif instr.op is MemOp.CBO_FLUSH:
                    ctx.flush(instr.address)
                elif instr.op is MemOp.CBO_RANGE_CLEAN:
                    ctx.clean_range(instr.address, instr.length)
                elif instr.op is MemOp.CBO_RANGE_FLUSH:
                    ctx.flush_range(instr.address, instr.length)
                elif instr.op is MemOp.FENCE:
                    ctx.fence()
                else:
                    raise ValueError(f"untracked op {instr.op}")
        finally:
            bus.unsubscribe(on_event)
            system.obs = None
        words = self._words(programs)
        image = {w: system.persisted_image().get(w, 0) for w in words}
        return image, issued, range_issued, skipped, dict(system.wb_lines)

    @staticmethod
    def _words(programs: Sequence[List[Instr]]) -> List[int]:
        return sorted(
            {
                instr.address
                for program in programs
                for instr in program
                if instr.op is MemOp.STORE
            }
        )

    # ------------------------------------------------------------- compare
    def run_case(
        self,
        bodies: Sequence[List[Instr]],
        seed: Optional[int] = None,
    ) -> DiffReport:
        programs = ProgramGenerator.with_epilogue(bodies)
        report = DiffReport(seed=seed, bodies=[list(b) for b in bodies])
        (
            soc_image,
            soc_issued,
            soc_ranges,
            soc_skipped,
            soc_writes,
            cycles,
        ) = self.run_soc(programs)
        report.soc_cycles = cycles
        t_image, t_issued, t_ranges, t_skipped, t_writes = self.run_timing(
            programs
        )
        for word in soc_image:
            if soc_image[word] != t_image[word]:
                report.mismatches.append(
                    f"image[{word:#x}]: soc={soc_image[word]} "
                    f"timing={t_image[word]}"
                )
        if self.num_cores == 1:
            # decision/count parity is only deterministic single-threaded:
            # with >1 cores the interleavings differ by construction
            self._diff_counts(report, "issued", soc_issued, t_issued)
            self._diff_counts(report, "range_issued", soc_ranges, t_ranges)
            self._diff_counts(report, "skipped", soc_skipped, t_skipped)
            self._diff_counts(report, "dram_writes", soc_writes, t_writes)
        return report

    @staticmethod
    def _diff_counts(
        report: DiffReport,
        label: str,
        soc_counts: Dict[int, int],
        timing_counts: Dict[int, int],
    ) -> None:
        for line in sorted(set(soc_counts) | set(timing_counts)):
            a, b = soc_counts.get(line, 0), timing_counts.get(line, 0)
            if a != b:
                report.mismatches.append(
                    f"{label}[{line:#x}]: soc={a} timing={b}"
                )

    # ---------------------------------------------------------------- runs
    def run(self, cases: int, seed: int = 0) -> List[DiffReport]:
        """Run *cases* seeded cases; returns the failing reports."""
        failures = []
        for case in range(cases):
            case_seed = seed + case
            generator = ProgramGenerator(
                case_seed,
                num_cores=self.num_cores,
                fenced_cbos=self.num_cores == 1,
            )
            report = self.run_case(generator.generate_bodies(), seed=case_seed)
            if not report.ok:
                failures.append(report)
        return failures

    # -------------------------------------------------------------- shrink
    def shrink(
        self, bodies: Sequence[List[Instr]], max_rounds: int = 10
    ) -> List[List[Instr]]:
        """Greedy delta-debugging: drop any op whose removal keeps the diff.

        The sealing epilogue is regenerated for each candidate, so
        shrinking never introduces divergence that is merely an artifact
        of unsealed trailing state.
        """
        current = [list(body) for body in bodies]
        if self.run_case(current).ok:
            return current  # nothing to shrink
        for _ in range(max_rounds):
            shrunk = False
            for core in range(len(current)):
                index = 0
                while index < len(current[core]):
                    candidate = [list(body) for body in current]
                    del candidate[core][index]
                    if not self.run_case(candidate).ok:
                        current = candidate
                        shrunk = True
                    else:
                        index += 1
            if not shrunk:
                break
        return current
