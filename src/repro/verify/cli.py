"""``python -m repro.verify`` — the verification harness entry point.

``--smoke`` (the default, also the CI gate) runs eight stages:

1. **Timing crash-point matrix** — {clean, flush} x dirty-in-{own L1,
   other L1, L2, victim L3} x Skip It on/off through
   :class:`~repro.verify.injector.TimingCrashInjector`, checking the
   crash image at every operation boundary (including the mid-writeback
   window between CBO issue and fence).
2. **Soc crash-point sweep** — cycle-level programs chosen to drive the
   flush unit through every FSHR state and the §5.4 probe interference
   window, through :class:`~repro.verify.injector.SocCrashInjector`
   (sampled crash points; ``--exhaustive`` checks every cycle), with
   :class:`~repro.verify.coverage.FsmCoverage` riding the same event bus.
3. **Differential fuzzing** — a few seeded cross-model cases
   (``--fuzz N`` runs more; a failing case is shrunk to a minimal
   reproducer and reported with its seed).
4. **Store crash sweep** — the :mod:`repro.store` durable KV store
   driven through its crash-point sweep
   (:class:`~repro.verify.store.StoreCrashSweep`): every optimizer x
   group-commit {1, 8, 64}, checking at every protocol boundary
   (including mid-writeback windows) that acknowledged commits survive,
   nothing beyond the last initiated epoch surfaces, and the recovered
   state equals the journal prefix.
5. **Shared-log crash sweep** — the same contract over
   :class:`~repro.verify.store.SharedStoreCrashSweep`: N threads
   interleaving appends into one shared WAL, epochs sealed by a leader
   whose single fence must cover every thread's records; crashes at
   every seal boundary and writeback-completion window.
6. **Ranged seal crash sweep** — the store sweep again with
   ``ranged_seal`` on (:func:`~repro.verify.store.run_ranged_store_sweep`):
   epochs sealed by one ``CBO.RANGE.CLEAN`` over the log span plus a
   completion wait; the mid-range crash windows enumerate every cursor
   position of the sweep, every optimizer x group-commit {1, 8, 64}.
7. **Serve session sweep** — the serving tier's contracts over
   :class:`~repro.verify.serve.ServeCrashSweep`: sessions driving a
   :class:`~repro.serve.tier.ServeTier` (admission control engaged,
   snapshot reads exercised), checking journal-prefix durability at
   every crash point plus read-your-writes, per-session monotonic
   reads, and that shed requests are never journaled or recovered.
8. **Transaction sweep** — multi-key atomicity over
   :class:`~repro.verify.txn.SharedTxnCrashSweep`: mixed plain and
   transactional traffic on the 3-thread shared log, every optimizer x
   group-commit {1, 8, 64}; the :class:`~repro.verify.txn.TxnOracle`
   rejects any crash image recovering a proper subset of a
   transaction's writes or any write of an uncommitted transaction.

Exit status: 0 all green, 1 on any oracle violation or model divergence,
2 when FSM coverage is below the floor (``--floor``, default 90% of
FSHR states).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Tuple

from repro.sim.config import CacheGeometry
from repro.timing.params import TimingParams
from repro.timing.system import TimingSystem
from repro.uarch.cpu import Instr
from repro.uarch.soc import Soc
from repro.verify.coverage import DEFAULT_FLOOR, FsmCoverage
from repro.verify.fuzz import DifferentialFuzzer
from repro.verify.injector import (
    CrashPointReport,
    SocCrashInjector,
    TimingCrashInjector,
)
from repro.verify.serve import run_serve_sweep
from repro.verify.store import (
    run_ranged_store_sweep,
    run_shared_store_sweep,
    run_store_sweep,
)
from repro.verify.txn import run_txn_sweep

MATRIX_ADDR = 0x10000
MATRIX_VALUE = 42
MATRIX_LOCATIONS = ("own_l1", "other_l1", "l2", "l3")


# ------------------------------------------------------ timing matrix
def matrix_system(skip_it: bool) -> TimingSystem:
    """Small geometries so the L3-dirty cell is reachable with few stores."""
    return TimingSystem(
        TimingParams(
            num_threads=2,
            skip_it=skip_it,
            l1=CacheGeometry(size_bytes=256, ways=2),
            l2=CacheGeometry(size_bytes=512, ways=2),
            l3=CacheGeometry(size_bytes=4096, ways=4),
        )
    )


def matrix_schedule(
    system: TimingSystem, op: str, location: str
) -> List[Tuple[int, Instr]]:
    """Dirty MATRIX_ADDR in exactly *location*, then CBO + fence."""
    schedule: List[Tuple[int, Instr]] = [
        (0, Instr.store(MATRIX_ADDR, MATRIX_VALUE))
    ]
    if location == "other_l1":
        schedule = [(1, Instr.store(MATRIX_ADDR, MATRIX_VALUE))]
    elif location == "l2":
        # a reader probe pulls the dirty data down into the L2 copy
        schedule.append((1, Instr.load(MATRIX_ADDR)))
    elif location == "l3":
        # conflict stores push the line out of L1 and L2 into the L3
        stride = system.params.l2.num_sets * system.params.line_bytes
        schedule += [
            (0, Instr.store(MATRIX_ADDR + i * stride, 100 + i))
            for i in range(1, 5)
        ]
    cbo = Instr.clean if op == "clean" else Instr.flush
    tid = 1 if location == "other_l1" else 0
    schedule += [(tid, cbo(MATRIX_ADDR)), (tid, Instr.fence())]
    return schedule


def run_timing_matrix() -> List[Tuple[str, CrashPointReport]]:
    """The {clean,flush} x location x skip_it sweep, every op boundary."""
    results = []
    for skip_it in (False, True):
        for op in ("clean", "flush"):
            for location in MATRIX_LOCATIONS:
                system = matrix_system(skip_it)
                schedule = matrix_schedule(system, op, location)
                injector = TimingCrashInjector(system)
                report = injector.run(schedule)
                name = f"{op}/{location}/skip={'on' if skip_it else 'off'}"
                results.append((name, report))
    return results


# --------------------------------------------------------- soc sweep
def _soc_cases(skip_it: bool) -> List[Tuple[str, List[List[Instr]]]]:
    """Programs that drive the FSHR FSM through every state.

    Values are unique nonzero per program set (the oracle requires it);
    each case runs on a fresh Soc so values may repeat across cases.
    """
    a_line, b_line, c_line, miss = 0x3000, 0x3040, 0x3080, 0x7000
    cases = []
    # dirty-hit clean + flush: meta_write -> fill_buffer ->
    # root_release_data -> root_release_ack; the second core's late load
    # probes mid-flush (the §5.4 interference window)
    cases.append(
        (
            "dirty_hit",
            [
                [
                    Instr.store(a_line, 1),
                    Instr.clean(a_line),
                    Instr.fence(),
                    Instr.store(b_line, 2),
                    Instr.flush(b_line),
                    Instr.fence(),
                ],
                [
                    Instr.store(c_line, 3),
                    Instr.clean(c_line),
                    Instr.fence(),
                    Instr.load(a_line),
                    Instr.load(b_line),
                ],
            ],
        )
    )
    # clean-hit (no dirty data): meta_write -> root_release (nodata);
    # reachable with Skip It off, or on a miss either way
    cases.append(
        (
            "clean_hit_and_miss",
            [
                [
                    Instr.store(a_line, 1),
                    Instr.clean(a_line),
                    Instr.fence(),
                    Instr.clean(a_line),  # skip on: dropped; off: nodata
                    Instr.flush(a_line),
                    Instr.fence(),
                    Instr.clean(miss),  # miss: root_release, no meta_write
                    Instr.fence(),
                ]
            ],
        )
    )
    # redundant clean after load fill: GrantData sets the skip bit, the
    # second clean must be dropped (skip on) or go nodata (skip off)
    cases.append(
        (
            "skip_path",
            [
                [
                    Instr.load(b_line),
                    Instr.clean(b_line),
                    Instr.fence(),
                    Instr.store(b_line, 4),
                    Instr.clean(b_line),
                    Instr.fence(),
                ]
            ],
        )
    )
    # CBO.RANGE over a mixed region: two dirty lines (range_meta_write ->
    # range_fill_buffer -> range_release_data -> range_release_ack), one
    # clean-resident line (range_release nodata with Skip It off, scan
    # filter with it on), all walked by range_scan under one flush-queue
    # entry; the second core's loads probe mid-sweep, and the per-line
    # redundant clean afterwards keeps both FSM families in one run
    cases.append(
        (
            "ranged_sweep",
            [
                [
                    Instr.store(a_line, 5),
                    Instr.store(c_line, 6),
                    Instr.load(b_line),
                    Instr.clean_range(a_line, 3 * 64),
                    Instr.fence(),
                    Instr.store(b_line, 7),
                    Instr.flush_range(b_line, 2 * 64),
                    Instr.fence(),
                ],
                [
                    Instr.load(a_line),
                    Instr.load(b_line),
                ],
            ],
        )
    )
    return cases


def run_soc_sweep(
    mode: str, floor: float
) -> Tuple[List[Tuple[str, CrashPointReport]], FsmCoverage]:
    from repro.obs.attach import acquire_bus, release_bus

    coverage = FsmCoverage(floor=floor)
    results = []
    for skip_it in (False, True):
        for name, programs in _soc_cases(skip_it):
            soc = Soc(Soc().params.with_skip_it(skip_it))
            bus = acquire_bus(soc)
            coverage.attach(bus)
            try:
                report = SocCrashInjector(soc, mode=mode).run(programs)
            finally:
                coverage.detach()
                release_bus(soc)
            results.append(
                (f"{name}/skip={'on' if skip_it else 'off'}", report)
            )
    return results, coverage


# -------------------------------------------------------------- fuzz
def run_fuzz(
    cases: int, seed: int, num_cores: int
) -> List[Tuple[str, object]]:
    """Seeded differential cases; failing ones are shrunk for the report."""
    lines: List[Tuple[str, object]] = []
    for cores in sorted({1, num_cores}):
        fuzzer = DifferentialFuzzer(skip_it=True, num_cores=cores)
        failures = fuzzer.run(cases, seed=seed)
        lines.append((f"{cores}-core x{cases}", failures))
        for failure in failures[:1]:
            shrunk = fuzzer.shrink(failure.bodies)
            failure.bodies = shrunk
    return lines


# -------------------------------------------------------------- main
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="crash-point fault injection + differential fuzzing",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="sampled crash-point sweep + coverage gate (the default)",
    )
    parser.add_argument(
        "--exhaustive",
        action="store_true",
        help="check the Soc crash image every cycle instead of sampling",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=3,
        metavar="N",
        help="differential cases per core-count (default 3)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cores", type=int, default=2, help="cores for multi-core fuzzing"
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help="FSHR-state coverage gate (default %(default)s)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON"
    )
    args = parser.parse_args(argv)
    mode = "exhaustive" if args.exhaustive else "sampled"

    started = time.time()
    failures = 0
    out = []

    out.append("== timing crash-point matrix ==")
    for name, report in run_timing_matrix():
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<24} {report.crash_points} crash points, "
            f"{report.seals} seals"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append(f"== soc crash-point sweep ({mode}) ==")
    soc_results, coverage = run_soc_sweep(mode, args.floor)
    for name, report in soc_results:
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<28} {report.crash_points} crash points "
            f"over {report.boundaries} cycles, {report.seals} seals"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append(f"== differential fuzzing (seed {args.seed}) ==")
    for label, case_failures in run_fuzz(args.fuzz, args.seed, args.cores):
        mark = "ok" if not case_failures else "FAIL"
        out.append(f"  {mark} {label}: {len(case_failures)} divergences")
        failures += len(case_failures)
        for failure in case_failures[:1]:
            out.append("       " + failure.summary().replace("\n", "\n       "))

    out.append("== store crash sweep ==")
    for name, report in run_store_sweep():
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<28} {report.crash_points} crash points "
            f"over {report.boundaries} boundaries"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append("== shared-log crash sweep ==")
    for name, report in run_shared_store_sweep():
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<28} {report.crash_points} crash points "
            f"over {report.boundaries} boundaries"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append("== ranged seal crash sweep ==")
    for name, report in run_ranged_store_sweep():
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<28} {report.crash_points} crash points "
            f"over {report.boundaries} boundaries"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append("== serve session sweep ==")
    for name, report in run_serve_sweep():
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<28} {report.crash_points} crash points "
            f"over {report.boundaries} boundaries"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append("== txn atomicity sweep ==")
    for name, report in run_txn_sweep():
        mark = "ok" if report.ok else "FAIL"
        out.append(
            f"  {mark} {name:<28} {report.crash_points} crash points "
            f"over {report.boundaries} boundaries"
        )
        failures += len(report.violations)
        for violation in report.violations[:3]:
            out.append(f"       {violation}")

    out.append("== fsm coverage ==")
    out.extend("  " + line for line in coverage.report_lines())

    elapsed = time.time() - started
    gate_ok = coverage.meets_floor(args.floor)
    status = 0 if failures == 0 and gate_ok else (1 if failures else 2)
    out.append(
        f"== verdict: {'PASS' if status == 0 else 'FAIL'} "
        f"({failures} failures, coverage "
        f"{'met' if gate_ok else 'BELOW FLOOR'}, {elapsed:.1f}s) =="
    )
    print("\n".join(out))

    if args.json:
        payload = {
            "mode": mode,
            "failures": failures,
            "coverage": coverage.report(),
            "elapsed_seconds": elapsed,
            "status": status,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
    return status


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
