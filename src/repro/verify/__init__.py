"""Crash-point fault injection, differential fuzzing and FSM coverage.

The paper's core claim is a *durability contract* (§4): after a ``CBO.X``
to a line plus a fence, every store to that line that preceded the CBO is
in the persistence domain — and the Skip It bit (§6) never lets a dirty
line masquerade as persisted.  This package turns that contract into
machine-checked properties at every simulated boundary:

* :mod:`repro.verify.oracle` — the §4 durability oracle (fenced stores
  recovered, no ghost values, skip-bit lines byte-identical to DRAM);
* :mod:`repro.verify.injector` — crash-point enumeration over the
  cycle-level :class:`~repro.uarch.soc.Soc` (every cycle in exhaustive
  mode, every TileLink message / FSHR transition / DRAM write in sampled
  mode) and over the fast :class:`~repro.timing.system.TimingSystem`
  (every operation boundary, including mid-writeback windows);
* :mod:`repro.verify.fuzz` — differential cross-model fuzzing: the same
  generated programs on both simulators, diffing persisted images,
  skip/issue decisions and per-line writeback counts, with trace
  shrinking;
* :mod:`repro.verify.coverage` — FSM coverage riding the
  :class:`~repro.obs.events.EventBus`: FSHR states, TileLink opcodes and
  probe/WBU/CBO interleavings, with a gating floor;
* :mod:`repro.verify.mutants` — known-bad model variants the harness
  must catch (self-test of the oracle).

``python -m repro.verify --smoke`` runs the sampled sweep and exits
nonzero on any violation or on FSM coverage below the floor.
"""

from repro.verify.coverage import FsmCoverage
from repro.verify.fuzz import DifferentialFuzzer, ProgramGenerator
from repro.verify.injector import (
    CrashPointReport,
    SocCrashInjector,
    TimingCrashInjector,
    timing_crash_image,
)
from repro.verify.mutants import (
    SOC_MUTANTS,
    TIMING_MUTANTS,
    soc_mutant,
    timing_mutant,
)
from repro.verify.oracle import DurabilityOracle, Violation, WordHistory

__all__ = [
    "CrashPointReport",
    "DifferentialFuzzer",
    "DurabilityOracle",
    "FsmCoverage",
    "ProgramGenerator",
    "SOC_MUTANTS",
    "SocCrashInjector",
    "TIMING_MUTANTS",
    "TimingCrashInjector",
    "Violation",
    "WordHistory",
    "soc_mutant",
    "timing_crash_image",
    "timing_mutant",
]
