"""Crash-point enumeration over both simulators.

The key trick is *crash-image equivalence*: neither simulator needs to be
re-run per crash point.

For the cycle-level :class:`~repro.uarch.soc.Soc`, a crash at cycle N
keeps exactly ``memory`` (main memory *is* the persistence domain —
dropping the volatile caches is conceptual), so the DRAM contents at the
end of cycle N *are* the crash image for a crash at N.  One run therefore
checks every crash point by inspecting DRAM once per boundary.

For the fast :class:`~repro.timing.system.TimingSystem`,
:meth:`~repro.timing.system.TimingSystem.persisted_image` plays the same
role: the persisted words plus every in-flight DRAM write whose
completion time has passed.  Checking it after every operation enumerates
all operation-boundary crash points, including the mid-writeback window
between a CBO.X's issue and the fence that retires it.

Floors (what *must* survive) come from the §4 contract, not from model
internals — a model bug must not be able to weaken the oracle that judges
it:

* Soc: a CBO.X covers every **same-core** store to its line that
  committed before the CBO fired (the L1 nacks CBOs while a same-line
  MSHR is live, so committed stores are always in the array by then).
  Remote stores may still sit unreplayed in a remote MSHR when the probe
  arrives, so they are conservatively excluded.
* TimingSystem: operations are atomic, so a CBO covers the full
  architectural line at issue.  A *skipped* CBO is the one exception: the
  model sets the skip bit at CBO issue (hardware sets it at the
  RootReleaseAck), so a foreign thread's writeback may still be in flight
  when skip legitimately reads as "persisted"; skipped CBOs therefore
  seal only what is durable or settled by the issuing thread's fence.

In both models the floor is *sealed* (becomes binding) only when a fence
of the issuing core/thread commits, per §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.uarch.cpu import Instr, _Status
from repro.uarch.requests import MemOp
from repro.verify.oracle import (
    DurabilityOracle,
    Violation,
    check_soc_skip_bits,
    check_timing_skip_bits,
)

#: program ops the oracle can track (value-unique stores, no INVAL/ZERO,
#: whose discard/zeroing semantics would make version tracking ambiguous)
TRACKABLE_OPS = frozenset(
    {
        MemOp.LOAD,
        MemOp.STORE,
        MemOp.CBO_CLEAN,
        MemOp.CBO_FLUSH,
        MemOp.CBO_RANGE_CLEAN,
        MemOp.CBO_RANGE_FLUSH,
        MemOp.FENCE,
    }
)

#: CBO ops that establish a durability floor when they fire
_FLOOR_OPS = frozenset(
    {
        MemOp.CBO_CLEAN,
        MemOp.CBO_FLUSH,
        MemOp.CBO_RANGE_CLEAN,
        MemOp.CBO_RANGE_FLUSH,
    }
)

_RANGE_OPS = frozenset({MemOp.CBO_RANGE_CLEAN, MemOp.CBO_RANGE_FLUSH})


def _covered_lines(instr: Instr, line_of, line_bytes: int) -> range:
    """Line base addresses an op covers: one line, or the whole range."""
    base = line_of(instr.address)
    if instr.op in _RANGE_OPS:
        last = line_of(instr.address + instr.length - 1)
        return range(base, last + 1, line_bytes)
    return range(base, base + 1, line_bytes)

#: events in these categories mark a cycle as a sampled crash point
SAMPLED_CATEGORIES = frozenset({"tilelink", "cbo", "core", "probe", "eviction"})

#: stop collecting after this many violations; a broken model would
#: otherwise fail at thousands of consecutive boundaries
MAX_VIOLATIONS = 20


@dataclass
class CrashPointReport:
    """Outcome of one crash-point sweep."""

    model: str  # "soc" | "timing"
    mode: str  # "sampled" | "exhaustive"
    crash_points: int = 0
    boundaries: int = 0  # cycles (soc) or ops (timing) traversed
    seals: int = 0
    words: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return (
            f"{self.model}/{self.mode}: {self.crash_points} crash points "
            f"over {self.boundaries} boundaries, {self.seals} seals, "
            f"{self.words} words -> {status}"
        )


def _check_programs(programs: Sequence[Sequence[Instr]]) -> None:
    for program in programs:
        for instr in program:
            if instr.op not in TRACKABLE_OPS:
                raise ValueError(
                    f"oracle cannot track {instr.op}; use "
                    f"{sorted(op.value for op in TRACKABLE_OPS)}"
                )


class SocCrashInjector:
    """Enumerates crash points of a cycle-level run via engine cycle hooks.

    ``mode="exhaustive"`` checks the crash image every cycle;
    ``mode="sampled"`` checks only *interesting* cycles — any cycle with a
    TileLink message, CBO/FSHR activity, a fence commit, a DRAM write, or
    an instruction status change.  Sampled mode provably checks every
    cycle at which the crash image can differ from the previous one: DRAM
    only changes on a DRAM write, and floors only change on instruction
    boundaries.
    """

    def __init__(self, soc, mode: str = "sampled") -> None:
        if mode not in ("sampled", "exhaustive"):
            raise ValueError(f"unknown mode {mode!r}")
        self.soc = soc
        self.mode = mode
        self.oracle = DurabilityOracle()
        self.report = CrashPointReport(model="soc", mode=mode)
        self._owner: Dict[int, int] = {}  # word -> writing core
        self._line_words: Dict[int, Set[int]] = {}
        self._version_count: Dict[int, int] = {}
        self._slot_status: List[List[_Status]] = []
        # per core: (slot index, floor versions) for fired, unfenced CBOs
        self._pending: List[List[Tuple[int, Dict[int, int]]]] = []
        self._event_flag = False
        self._last_writes = 0
        self._bus = None

    # ------------------------------------------------------------- wiring
    def _prepare(self, programs: Sequence[List[Instr]]) -> None:
        _check_programs(programs)
        line_of = self.soc.params.l1.line_address
        for core_idx, program in enumerate(programs):
            for instr in program:
                if instr.op is not MemOp.STORE:
                    continue
                word = instr.address
                owner = self._owner.setdefault(word, core_idx)
                if owner != core_idx:
                    raise ValueError(
                        f"word {word:#x} written by cores {owner} and "
                        f"{core_idx}; the oracle needs one writer per word"
                    )
                self._line_words.setdefault(line_of(word), set()).add(word)
                self.oracle.history.observe(word, instr.data)
                self._version_count.setdefault(word, 0)
        self.report.words = len(self._owner)
        padded: List[List[Instr]] = list(programs) + [
            [] for _ in range(len(self.soc.cores) - len(programs))
        ]
        self._slot_status = [
            [_Status.WAITING] * len(program) for program in padded
        ]
        self._pending = [[] for _ in padded]
        # the static history pre-populates versions; reset the live counts
        for word in self._version_count:
            self._version_count[word] = 0

    def _on_event(self, event) -> None:
        if event.category in SAMPLED_CATEGORIES:
            self._event_flag = True

    # ---------------------------------------------------------------- run
    def run(
        self,
        programs: Sequence[List[Instr]],
        max_cycles: Optional[int] = 500_000,
    ) -> CrashPointReport:
        """Run *programs* on the Soc, checking every crash point."""
        from repro.obs.attach import acquire_bus, release_bus

        self._prepare(programs)
        self._bus = acquire_bus(self.soc)
        self._bus.subscribe(self._on_event)
        self.soc.engine.add_cycle_hook(self._on_cycle)
        self._last_writes = self.soc.memory.writes
        try:
            self.soc.run_programs(programs, max_cycles=max_cycles)
            self.soc.drain()
            self._check(self.soc.engine.cycle)  # quiescent final image
        finally:
            self.soc.engine.remove_cycle_hook(self._on_cycle)
            self._bus.unsubscribe(self._on_event)
            release_bus(self.soc)
            self._bus = None
        self.report.seals = self.oracle.seals
        return self.report

    # -------------------------------------------------------- cycle hook
    def _on_cycle(self, cycle: int) -> None:
        self.report.boundaries += 1
        interesting = self._event_flag or self.mode == "exhaustive"
        self._event_flag = False
        writes = self.soc.memory.writes
        if writes != self._last_writes:
            self._last_writes = writes
            interesting = True
        if self._scan_slots():
            interesting = True
        if interesting:
            self._check(cycle)

    def _scan_slots(self) -> bool:
        """Track instruction completions; returns True on any transition."""
        changed = False
        line_of = self.soc.params.l1.line_address
        for core_idx, core in enumerate(self.soc.cores):
            statuses = self._slot_status[core_idx]
            for idx, slot in enumerate(core.slots):
                current = slot.status
                if current is statuses[idx]:
                    continue
                previous = statuses[idx]
                statuses[idx] = current
                changed = True
                op = slot.instr.op
                if op is MemOp.STORE and previous is _Status.WAITING:
                    # data is in the array (hit) or RPQ (miss) from the
                    # fire cycle on; count it for the ghost ceiling now
                    self._version_count[slot.instr.address] += 1
                elif op in _FLOOR_OPS and previous is _Status.WAITING:
                    # a ranged CBO floors every covered line: the L1
                    # nacks dependent lines mid-sweep exactly as it
                    # nacks a per-line CBO, so any same-core store that
                    # committed before the range fired is in the array
                    # when the cursor reaches its line
                    line_bytes = self.soc.params.l1.line_bytes
                    floors = {}
                    for line in _covered_lines(
                        slot.instr, line_of, line_bytes
                    ):
                        for w in self._line_words.get(line, ()):
                            if self._owner[w] == core_idx:
                                floors[w] = self._version_count[w]
                    self._pending[core_idx].append((idx, floors))
                elif op is MemOp.FENCE and current is _Status.DONE:
                    keep = []
                    for cbo_idx, floors in self._pending[core_idx]:
                        if cbo_idx < idx:
                            self.oracle.seal(floors)
                        else:  # pragma: no cover - younger CBO, keep
                            keep.append((cbo_idx, floors))
                    self._pending[core_idx] = keep
        return changed

    # -------------------------------------------------------------- check
    def _check(self, cycle: int) -> None:
        if len(self.report.violations) >= MAX_VIOLATIONS:
            return
        self.report.crash_points += 1
        image = {w: self.soc.persisted_value(w) for w in self._owner}
        found = self.oracle.check_image(
            image, at=cycle, ceiling=self._version_count
        )
        found += check_soc_skip_bits(self.soc, at=cycle)
        self.report.violations.extend(found[:MAX_VIOLATIONS])


def timing_crash_image(system, at: Optional[int] = None) -> Dict[int, int]:
    """The crash image of a timing system at virtual time *at*.

    Shared by :class:`TimingCrashInjector` and
    :class:`repro.persist.recovery.CrashChecker` so both judge crashes
    through one code path (non-destructively, unlike ``system.crash``).
    """
    return system.persisted_image(at)


class TimingCrashInjector:
    """Enumerates every operation-boundary crash point of a timing run.

    Drives a *schedule* — a global sequence of ``(thread id, Instr)``
    pairs — through a :class:`~repro.timing.system.TimingSystem` and
    checks the crash image after every operation.  Because the in-flight
    writeback window is real in the timing model, this exercises crashes
    *between* a CBO.X and its completion, which the Soc's cycle hook sees
    as mid-FSHR cycles.
    """

    def __init__(self, system, mode: str = "sampled") -> None:
        self.system = system
        self.mode = mode  # every op boundary is checked either way
        self.oracle = DurabilityOracle()
        self.report = CrashPointReport(model="timing", mode=mode)
        self._line_words: Dict[int, Set[int]] = {}
        self._version_count: Dict[int, int] = {}
        self._pending: List[List[Dict[int, int]]] = []

    def _prepare(self, schedule: Sequence[Tuple[int, Instr]]) -> None:
        _check_programs([[instr for _, instr in schedule]])
        for _, instr in schedule:
            if instr.op is not MemOp.STORE:
                continue
            word = instr.address
            line = self.system.line_of(word)
            self._line_words.setdefault(line, set()).add(word)
            self.oracle.history.observe(word, instr.data)
            self._version_count.setdefault(word, 0)
        self.report.words = len(self._version_count)
        self._pending = [[] for _ in self.system.threads]

    def _guaranteed_floors(self, tid: int, line: int) -> Dict[int, int]:
        """Versions a *skipped* CBO may seal: durable or settled by our fence."""
        image = dict(self.system.persisted)
        for wb in self.system.in_flight:
            if wb.tid == tid:
                image.update(wb.values)
        floors = {}
        for w in self._line_words.get(line, ()):
            version = self.oracle.history.version_of(w, image.get(w, 0))
            if version is not None:
                floors[w] = version
        return floors

    def run(self, schedule: Sequence[Tuple[int, Instr]]) -> CrashPointReport:
        self._prepare(schedule)
        system = self.system
        for step, (tid, instr) in enumerate(schedule):
            ctx = system.threads[tid]
            op = instr.op
            if op is MemOp.STORE:
                ctx.store(instr.address, instr.data)
                self._version_count[instr.address] += 1
            elif op is MemOp.LOAD:
                ctx.load(instr.address)
            elif op in (MemOp.CBO_CLEAN, MemOp.CBO_FLUSH):
                line = system.line_of(instr.address)
                skipped_before = system.stats.get("cbo_skipped")
                if op is MemOp.CBO_CLEAN:
                    ctx.clean(instr.address)
                else:
                    ctx.flush(instr.address)
                if system.stats.get("cbo_skipped") > skipped_before:
                    floors = self._guaranteed_floors(tid, line)
                else:
                    # §4 contract: an issued CBO covers the whole
                    # architectural line as of its issue
                    floors = {
                        w: self._version_count[w]
                        for w in self._line_words.get(line, ())
                    }
                self._pending[tid].append(floors)
            elif op in _RANGE_OPS:
                line_bytes = system.params.line_bytes
                lines = _covered_lines(instr, system.line_of, line_bytes)
                skipped_before = system.stats.get("cbo_range_line_skipped")
                if op is MemOp.CBO_RANGE_CLEAN:
                    ctx.clean_range(instr.address, instr.length)
                else:
                    ctx.flush_range(instr.address, instr.length)
                any_skipped = (
                    system.stats.get("cbo_range_line_skipped")
                    > skipped_before
                )
                floors = {}
                for line in lines:
                    if any_skipped:
                        # the sweep filtered at least one line and the
                        # stat cannot attribute which: fall back to the
                        # skipped-CBO rule for the whole range (durable
                        # or settled by this thread's fence — which now
                        # includes the sweep's own in-flight payloads)
                        floors.update(self._guaranteed_floors(tid, line))
                    else:
                        for w in self._line_words.get(line, ()):
                            floors[w] = self._version_count[w]
                self._pending[tid].append(floors)
            elif op is MemOp.FENCE:
                ctx.fence()
                for floors in self._pending[tid]:
                    self.oracle.seal(floors)
                self._pending[tid].clear()
            self.report.boundaries += 1
            self._check(step)
        self.report.seals = self.oracle.seals
        return self.report

    def _check(self, step: int) -> None:
        if len(self.report.violations) >= MAX_VIOLATIONS:
            return
        self.report.crash_points += 1
        image = timing_crash_image(self.system)
        found = self.oracle.check_image(
            image, at=step, ceiling=self._version_count
        )
        found += check_timing_skip_bits(self.system, at=step)
        self.report.violations.extend(found[:MAX_VIOLATIONS])
