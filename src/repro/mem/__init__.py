"""Main-memory models.

``MainMemory`` is the flat backing store (the persistence domain in the
NVMM scenarios the paper motivates).  ``DramModel`` wraps it in a
fixed-latency TileLink manager as FASED does for FireSim (§7.1).
"""

from repro.mem.memory import MainMemory
from repro.mem.dram import DramModel

__all__ = ["MainMemory", "DramModel"]
