"""Flat line-granular main memory.

In the NVMM scenarios that motivate the paper (§1, §2.5) main memory *is*
the persistence domain: a line is persisted exactly when its bytes here
match every cached copy.  Untouched memory reads as zeroes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class MainMemory:
    """Byte-addressable memory stored as line-granular records."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._lines: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def _check_aligned(self, address: int) -> None:
        if address % self.line_bytes:
            raise ValueError(f"address {address:#x} is not line-aligned")

    def read_line(self, address: int) -> bytes:
        self._check_aligned(address)
        self.reads += 1
        return self._lines.get(address, bytes(self.line_bytes))

    def write_line(self, address: int, data: bytes) -> None:
        self._check_aligned(address)
        if len(data) != self.line_bytes:
            raise ValueError(
                f"line write of {len(data)} bytes, expected {self.line_bytes}"
            )
        self.writes += 1
        self._lines[address] = bytes(data)

    def peek_line(self, address: int) -> bytes:
        """Read without perturbing statistics (debug/checker use)."""
        self._check_aligned(address)
        return self._lines.get(address, bytes(self.line_bytes))

    def snapshot(self) -> Dict[int, bytes]:
        """Copy of all written lines; models the state surviving a crash."""
        return dict(self._lines)

    def lines(self) -> Iterator[Tuple[int, bytes]]:
        return iter(self._lines.items())
