"""Fixed-latency DRAM front-end (the FASED stand-in).

The L2 talks to main memory over a TileLink-style link: ``Acquire`` fetches
a line (answered with ``GrantData``) and ``Release`` writes one back
(answered with ``ReleaseAck``).  Every request is served
``latency`` cycles after its last beat arrives, modelling a closed-page
DRAM access; the data payloads still pay beat costs on the channels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mem.memory import MainMemory
from repro.sim.engine import Engine
from repro.tilelink.channel import BeatChannel
from repro.tilelink.messages import Acquire, GrantData, Release, ReleaseAck


class DramModel:
    """TileLink manager that answers the L2's outer link."""

    def __init__(
        self,
        engine: Engine,
        memory: MainMemory,
        latency: int = 60,
        bus_bytes: int = 16,
    ) -> None:
        self.engine = engine
        self.memory = memory
        self.latency = latency
        # inbound from L2 (A for Acquire, C for Release), outbound to L2 (D)
        self.chan_a: BeatChannel[Acquire] = BeatChannel("dram.a", bus_bytes)
        self.chan_c: BeatChannel[Release] = BeatChannel("dram.c", bus_bytes)
        self.chan_d: BeatChannel[object] = BeatChannel("dram.d", bus_bytes)
        self._pending: List[Tuple[int, object]] = []  # (ready_cycle, request)
        engine.register(self)

    def tick(self, cycle: int) -> None:
        # guarded per source so an idle DRAM costs three truthiness tests
        if self.chan_a.pending:
            for message in self.chan_a.drain_ready(cycle):
                self._pending.append((cycle + self.latency, message))
                self.engine.note_progress()
        if self.chan_c.pending:
            for message in self.chan_c.drain_ready(cycle):
                self._pending.append((cycle + self.latency, message))
                self.engine.note_progress()
        if not self._pending:
            return
        still_pending: List[Tuple[int, object]] = []
        for ready, request in self._pending:
            if ready > cycle:
                still_pending.append((ready, request))
                continue
            self._respond(request, cycle)
            self.engine.note_progress()
        self._pending = still_pending

    def _respond(self, request: object, cycle: int) -> None:
        if isinstance(request, Acquire):
            data = self.memory.read_line(request.address)
            self.chan_d.send(
                GrantData(
                    source=request.source,
                    address=request.address,
                    grow=request.grow,
                    data=data,
                    dirty=False,
                ),
                cycle,
            )
        elif isinstance(request, Release):
            if request.data is not None:
                self.memory.write_line(request.address, request.data)
            self.chan_d.send(
                ReleaseAck(source=request.source, address=request.address), cycle
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"DRAM cannot serve {type(request).__name__}")

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle DRAM could act (fast-forward hook).

        Inbound channel deliveries and due responses; the outbound D
        channel is the L2's event, reported there.
        """
        best: Optional[int] = None
        for channel in (self.chan_a, self.chan_c):
            if channel.pending:
                nxt = channel.pending[0][0]
                if best is None or nxt < best:
                    best = nxt
        for ready, _ in self._pending:
            if best is None or ready < best:
                best = ready
        return best

    @property
    def busy(self) -> bool:
        return bool(self._pending) or not (
            self.chan_a.idle and self.chan_c.idle and self.chan_d.idle
        )
