"""Redundant-writeback filters compared in §7.4 (Figure 14-16).

Every filter answers one question — *is this CBO.X redundant?* — with a
different bookkeeping cost:

* **Plain** — never filters; every requested flush reaches the hardware.
* **FliT adjacent** [73] — a persist counter next to every data word.
  Object stride doubles (data word, counter word interleaved), so every
  structure consumes twice the cache; stores pay an extra counter store,
  flush checks pay a counter load.
* **FliT hash table** [73] — counters in a separate fixed-size table; no
  object growth, but the table's lines contend for cache space (Figure 16)
  and collisions cause spurious (conservative) flushes.
* **Link-and-Persist** [23] — bit 63 of the data word itself marks
  "not yet persisted".  No extra memory, but every load must mask the bit
  (a per-access tax) and the trick is unusable for algorithms that use
  high pointer bits themselves (the BST here, as in the paper).
* **Skip It** (§6) — the hardware skip bit; no software state at all.
  The filter lives inside :meth:`repro.timing.system.TimingSystem.cbo`.

All bookkeeping traffic flows through the simulated cache hierarchy, so
its cost (extra accesses, cache pollution) is measured, not assumed.
"""

from __future__ import annotations

from typing import Optional

from repro.persist.heap import SimHeap
from repro.timing.system import ThreadCtx

_LNP_BIT = 1 << 62  # link-and-persist dirty mark (paper: the 63rd bit)


class FlushOptimizer:
    """Base class: direct pass-through behaviour, no bookkeeping."""

    name = "base"
    field_stride = 8  # bytes between consecutive 64-bit object fields
    supports_pointer_tagging_structures = True

    # -------------------------------------------------------- memory hooks
    def read(self, ctx: ThreadCtx, address: int) -> int:
        return ctx.load(address)

    def write(self, ctx: ThreadCtx, address: int, value: int) -> None:
        ctx.store(address, value)

    def cas(self, ctx: ThreadCtx, address: int, expected: int, new: int) -> bool:
        return ctx.cas(address, expected, new)

    def flush(self, ctx: ThreadCtx, address: int) -> None:
        ctx.flush(address)

    def clean(self, ctx: ThreadCtx, address: int) -> None:
        """Non-invalidating writeback (CBO.CLEAN) through the filter.

        The line stays resident, so a hot line (a log tail, a commit
        marker) cleaned once per epoch is exactly the redundant-writeback
        pattern the filters exist for.
        """
        ctx.clean(address)

    def clean_range(self, ctx: ThreadCtx, address: int, length: int) -> None:
        """Ranged non-invalidating writeback (CBO.RANGE.CLEAN).

        One instruction covers every line of ``[address, address+length)``.
        The base class hands the whole span to the hardware, which filters
        per line inside the sweep (with Skip It a persisted line costs a
        lookup, not a writeback).  Software filters override this to carve
        the span into contiguous sub-ranges of the lines their bookkeeping
        cannot prove persisted — the range encoding does not exempt them
        from their own bookkeeping traffic.
        """
        ctx.clean_range(address, length)

    def _clean_line_runs(self, ctx: ThreadCtx, lines) -> None:
        """Issue one ranged clean per contiguous run of line addresses."""
        line_bytes = ctx.system.params.line_bytes
        run_start = run_end = None
        for line in sorted(lines):
            if run_start is None:
                run_start = run_end = line
            elif line == run_end + line_bytes:
                run_end = line
            else:
                ctx.clean_range(run_start, run_end - run_start + line_bytes)
                run_start = run_end = line
        if run_start is not None:
            ctx.clean_range(run_start, run_end - run_start + line_bytes)

    def declare_persisted(self, system) -> None:
        """Reset bookkeeping after ``TimingSystem.persist_all`` (setup aid).

        Benchmarks declare the prefilled state persisted; filters that keep
        software dirty marks must clear them so the measurement does not
        start with a spurious flush-everything transient.
        """

    # --------------------------------------------------------------- stats
    def describe(self) -> str:
        return self.name


class Plain(FlushOptimizer):
    """No filtering: every flush request is issued."""

    name = "plain"


class SkipItHardware(FlushOptimizer):
    """Defer to the hardware skip bit — software does nothing extra."""

    name = "skipit"


class FlitAdjacent(FlushOptimizer):
    """FliT with the counter placed adjacent to every data word.

    The counter of the field at address ``a`` lives at ``a + 8``; objects
    are laid out with a 16-byte stride so this slot always exists.
    """

    name = "flit-adjacent"
    field_stride = 16

    def __init__(self) -> None:
        self._counters = set()

    def _counter_of(self, address: int) -> int:
        counter = address + 8
        self._counters.add(counter)
        return counter

    def declare_persisted(self, system) -> None:
        for counter in self._counters:
            if system.arch.get(counter):
                system.arch[counter] = 0
            if system.persisted.get(counter):
                system.persisted[counter] = 0

    def write(self, ctx: ThreadCtx, address: int, value: int) -> None:
        ctx.store(address, value)
        ctx.store(self._counter_of(address), 1)

    def cas(self, ctx: ThreadCtx, address: int, expected: int, new: int) -> bool:
        ok = ctx.cas(address, expected, new)
        if ok:
            ctx.store(self._counter_of(address), 1)
        return ok

    def flush(self, ctx: ThreadCtx, address: int) -> None:
        counter = self._counter_of(address)
        if ctx.load(counter):
            ctx.flush(address)
            ctx.store(counter, 0)

    def clean(self, ctx: ThreadCtx, address: int) -> None:
        counter = self._counter_of(address)
        if ctx.load(counter):
            ctx.clean(address)
            ctx.store(counter, 0)

    def clean_range(self, ctx: ThreadCtx, address: int, length: int) -> None:
        # Per-field counters: a line needs the sweep iff any of its data
        # words' counters are set.  Loading each counter is real cache
        # traffic — the range encoding saves CBOs, not FliT bookkeeping.
        line_bytes = ctx.system.params.line_bytes
        lines = set()
        cleared = []
        for counter in sorted(self._counters):
            data = counter - 8
            if address <= data < address + length and ctx.load(counter):
                lines.add(data - data % line_bytes)
                cleared.append(counter)
        self._clean_line_runs(ctx, lines)
        for counter in cleared:
            ctx.store(counter, 0)


class FlitHashTable(FlushOptimizer):
    """FliT with counters in a shared fixed-size table.

    ``table_entries`` is the Figure 16 sensitivity knob: a small table
    aliases heavily (spurious flushes); a large one pollutes the cache.
    """

    name = "flit-hashtable"

    def __init__(self, heap: SimHeap, table_entries: int = 1024) -> None:
        if table_entries < 1:
            raise ValueError("table must have at least one entry")
        self.table_entries = table_entries
        self.table_base = heap.alloc_region(table_entries * 8)
        self.line_bytes = heap.line_bytes
        self._counters = set()

    def _counter_of(self, address: int) -> int:
        line = address // self.line_bytes
        slot = (line * 0x9E3779B97F4A7C15 >> 17) % self.table_entries
        counter = self.table_base + slot * 8
        self._counters.add(counter)
        return counter

    def declare_persisted(self, system) -> None:
        for counter in self._counters:
            if system.arch.get(counter):
                system.arch[counter] = 0
            if system.persisted.get(counter):
                system.persisted[counter] = 0

    def write(self, ctx: ThreadCtx, address: int, value: int) -> None:
        ctx.store(address, value)
        ctx.store(self._counter_of(address), 1)

    def cas(self, ctx: ThreadCtx, address: int, expected: int, new: int) -> bool:
        ok = ctx.cas(address, expected, new)
        if ok:
            ctx.store(self._counter_of(address), 1)
        return ok

    def flush(self, ctx: ThreadCtx, address: int) -> None:
        counter = self._counter_of(address)
        if ctx.load(counter):
            ctx.flush(address)
            ctx.store(counter, 0)

    def clean(self, ctx: ThreadCtx, address: int) -> None:
        counter = self._counter_of(address)
        if ctx.load(counter):
            ctx.clean(address)
            ctx.store(counter, 0)

    def clean_range(self, ctx: ThreadCtx, address: int, length: int) -> None:
        # The table hashes per line, so the ranged filter is one counter
        # load per covered line; collisions stay conservative (a stranger
        # line sharing the slot forces this line into the sweep).
        line_bytes = ctx.system.params.line_bytes
        base = address - address % line_bytes
        last = (address + length - 1) - (address + length - 1) % line_bytes
        lines = []
        cleared = []
        for line in range(base, last + line_bytes, line_bytes):
            counter = self._counter_of(line)
            if ctx.load(counter):
                lines.append(line)
                cleared.append(counter)
        self._clean_line_runs(ctx, lines)
        for counter in cleared:
            ctx.store(counter, 0)

    def describe(self) -> str:
        return f"{self.name}({self.table_entries})"


class LinkAndPersist(FlushOptimizer):
    """Dirty mark inside the data word itself [23].

    Stores set the mark for free (same store); loads pay a masking cycle;
    flushes that find the mark clear it with an extra store.  Not usable
    for structures that steal pointer bits themselves.
    """

    name = "link-and-persist"
    supports_pointer_tagging_structures = False

    def read(self, ctx: ThreadCtx, address: int) -> int:
        value = ctx.load(address)
        ctx.now += 1  # mask the mark bit out of every load
        return value & ~_LNP_BIT

    def write(self, ctx: ThreadCtx, address: int, value: int) -> None:
        ctx.store(address, value | _LNP_BIT)

    def cas(self, ctx: ThreadCtx, address: int, expected: int, new: int) -> bool:
        raw = ctx.load(address)
        ctx.now += 1
        if raw & ~_LNP_BIT != expected:
            ctx.now += 2
            return False
        return ctx.cas(address, raw, new | _LNP_BIT)

    def flush(self, ctx: ThreadCtx, address: int) -> None:
        # The data word was just read by the algorithm, so the mark test is
        # a register operation — the reason the paper finds L&P can beat
        # even Skip It on filter-dominated workloads (§7.4).
        raw = ctx.system.arch.get(address, 0)
        ctx.now += 1
        if raw & _LNP_BIT:
            ctx.flush(address)
            ctx.cas(address, raw, raw & ~_LNP_BIT)

    def clean(self, ctx: ThreadCtx, address: int) -> None:
        raw = ctx.system.arch.get(address, 0)
        ctx.now += 1
        if raw & _LNP_BIT:
            ctx.clean(address)
            ctx.cas(address, raw, raw & ~_LNP_BIT)

    def clean_range(self, ctx: ThreadCtx, address: int, length: int) -> None:
        # The mark lives in the data word, so the ranged filter is a
        # register scan of the span's words (one mask test per line) and
        # a CAS per marked word to drop the mark afterwards.  The CAS
        # re-dirties the line — same trade the per-address path makes.
        line_bytes = ctx.system.params.line_bytes
        nlines = ((address + length - 1) // line_bytes) - (address // line_bytes) + 1
        ctx.now += nlines
        marked = [
            (word, raw)
            for word, raw in ctx.system.arch.items()
            if address <= word < address + length and raw & _LNP_BIT
        ]
        self._clean_line_runs(
            ctx, {word - word % line_bytes for word, _ in marked}
        )
        for word, raw in marked:
            ctx.cas(word, raw, raw & ~_LNP_BIT)

    def declare_persisted(self, system) -> None:
        for store in (system.arch, system.persisted):
            for address, value in store.items():
                if value & _LNP_BIT:
                    store[address] = value & ~_LNP_BIT


OPTIMIZER_NAMES = (
    "plain",
    "flit-adjacent",
    "flit-hashtable",
    "link-and-persist",
    "skipit",
)


def make_optimizer(
    name: str, heap: SimHeap, table_entries: int = 1024
) -> FlushOptimizer:
    """Factory used by the benchmark harness."""
    if name == "plain":
        return Plain()
    if name == "flit-adjacent":
        return FlitAdjacent()
    if name == "flit-hashtable":
        return FlitHashTable(heap, table_entries)
    if name == "link-and-persist":
        return LinkAndPersist()
    if name == "skipit":
        return SkipItHardware()
    raise ValueError(f"unknown optimizer {name!r}; choose from {OPTIMIZER_NAMES}")
