"""Persistence algorithms of §7.4.

The three algorithms decide *which* accesses must be followed by a
writeback so that completed operations are durable (durable
linearizability [36]):

* **Automatic** [36, 73] — every shared-memory access is persisted:
  loads flush the line they read (a read of unpersisted data must persist
  it before the operation depends on it) and stores flush what they
  wrote; a fence seals every operation.  Correct for any linearizable
  structure, maximally redundant — the case writeback filters exist for.
* **NVTraverse** [27] — traversal reads need no flushes; only the
  *critical* accesses (reads of the final nodes the operation decides on,
  and all writes) are persisted, with a fence per operation.
* **Manual** [23] — algorithm-specific minimal persistence: only writes
  that change the durable structure are flushed, and only update
  operations fence.

Policies see the structure's accesses through :class:`repro.persist.api.
PMemView`, which tags each access as traversal or critical.
"""

from __future__ import annotations


class PersistencePolicy:
    """Decides which accesses are followed by writebacks."""

    name = "base"

    def flush_on_read(self, critical: bool) -> bool:
        raise NotImplementedError

    def flush_on_write(self, critical: bool) -> bool:
        raise NotImplementedError

    def fence_on_op_end(self, did_update: bool) -> bool:
        raise NotImplementedError


class Automatic(PersistencePolicy):
    """Flush every load and store; fence every operation."""

    name = "automatic"

    def flush_on_read(self, critical: bool) -> bool:
        return True

    def flush_on_write(self, critical: bool) -> bool:
        return True

    def fence_on_op_end(self, did_update: bool) -> bool:
        return True


class NVTraverse(PersistencePolicy):
    """Flush critical reads and all writes; fence every operation."""

    name = "nvtraverse"

    def flush_on_read(self, critical: bool) -> bool:
        return critical

    def flush_on_write(self, critical: bool) -> bool:
        return True

    def fence_on_op_end(self, did_update: bool) -> bool:
        return True


class Manual(PersistencePolicy):
    """Flush only critical writes; fence only updates."""

    name = "manual"

    def flush_on_read(self, critical: bool) -> bool:
        return False

    def flush_on_write(self, critical: bool) -> bool:
        return critical

    def fence_on_op_end(self, did_update: bool) -> bool:
        return did_update


class NonPersistent(PersistencePolicy):
    """No flushes, no fences: the non-persistent baseline of Figure 14."""

    name = "none"

    def flush_on_read(self, critical: bool) -> bool:
        return False

    def flush_on_write(self, critical: bool) -> bool:
        return False

    def fence_on_op_end(self, did_update: bool) -> bool:
        return False


POLICY_NAMES = ("automatic", "nvtraverse", "manual", "none")


def make_policy(name: str) -> PersistencePolicy:
    if name == "automatic":
        return Automatic()
    if name == "nvtraverse":
        return NVTraverse()
    if name == "manual":
        return Manual()
    if name == "none":
        return NonPersistent()
    raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")
