"""Per-thread persistent-memory view.

A :class:`PMemView` binds a thread context to a persistence policy and a
writeback filter.  Data structures perform all shared-memory traffic
through it, tagging accesses as traversal (default) or *critical* (the
accesses the operation's durability hinges on); the policy maps tags to
flushes, the optimizer decides which flushes are redundant, and the
timing system charges for everything.
"""

from __future__ import annotations

from repro.persist.flushopt import FlushOptimizer
from repro.persist.policies import PersistencePolicy
from repro.timing.system import ThreadCtx


class PMemView:
    """What a persistent data structure sees of the memory system."""

    def __init__(
        self,
        ctx: ThreadCtx,
        policy: PersistencePolicy,
        optimizer: FlushOptimizer,
    ) -> None:
        self.ctx = ctx
        self.policy = policy
        self.optimizer = optimizer
        self._did_update = False
        self.flush_requests = 0

    # ------------------------------------------------------------ accesses
    def read(self, address: int, critical: bool = False) -> int:
        value = self.optimizer.read(self.ctx, address)
        if self.policy.flush_on_read(critical):
            self.flush(address)
        return value

    def write(self, address: int, value: int, critical: bool = False) -> None:
        self.optimizer.write(self.ctx, address, value)
        self._did_update = True
        if self.policy.flush_on_write(critical):
            self.flush(address)

    def cas(
        self, address: int, expected: int, new: int, critical: bool = True
    ) -> bool:
        ok = self.optimizer.cas(self.ctx, address, expected, new)
        if ok:
            self._did_update = True
            if self.policy.flush_on_write(critical):
                self.flush(address)
        return ok

    def flush(self, address: int) -> None:
        """Request a writeback; the optimizer may prove it redundant."""
        self.flush_requests += 1
        self.optimizer.flush(self.ctx, address)

    def clean(self, address: int) -> None:
        """Request a non-invalidating writeback (CBO.CLEAN).

        Unlike :meth:`flush`, the line stays cache-resident — the right
        primitive for hot metadata such as a log tail, where the next
        operation re-reads or re-writes the same line and (with Skip It)
        redundant cleans of the still-persisted line are dropped at the
        L1.  Goes through the same optimizer filter as :meth:`flush`.
        """
        self.flush_requests += 1
        self.optimizer.clean(self.ctx, address)

    def clean_range(self, address: int, length: int) -> None:
        """Request one ranged writeback (CBO.RANGE.CLEAN) over a byte span.

        A single instruction — and a single flush request — no matter how
        many lines the span covers; the hardware sweeps them with the
        in-sweep Skip It filter.  Software filters may still carve the
        span into contiguous sub-ranges of not-provably-persisted lines.
        """
        self.flush_requests += 1
        self.optimizer.clean_range(self.ctx, address, length)

    # ----------------------------------------------------- operation frame
    def op_begin(self) -> None:
        self._did_update = False

    def op_end(self) -> None:
        if self.policy.fence_on_op_end(self._did_update):
            self.ctx.fence()
