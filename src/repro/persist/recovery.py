"""Crash-recovery checking for the persistent structures.

Under every §7.4 persistence policy, each completed *update* operation is
sealed by a fence before the operation returns, so after a crash the
persisted image must decode to exactly the set of keys the completed
updates left behind.  :class:`CrashChecker` runs an operation sequence,
maintains the reference set, crashes the timing system (dropping all
cache state), and diffs the recovered keys against the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.persist.api import PMemView
from repro.persist.structures.base import PersistentSet, persisted_reader
from repro.timing.system import TimingSystem
from repro.verify.injector import timing_crash_image


@dataclass
class CrashReport:
    """Outcome of one crash-recovery check."""

    reference: Set[int]
    recovered: Set[int]
    lost: Set[int] = field(default_factory=set)  # fenced but not recovered
    ghosts: Set[int] = field(default_factory=set)  # recovered but never live

    @property
    def consistent(self) -> bool:
        return not self.lost and not self.ghosts

    def __post_init__(self) -> None:
        self.lost = self.reference - self.recovered
        self.ghosts = self.recovered - self.reference


class CrashChecker:
    """Drives a structure, then crashes and validates recovery."""

    def __init__(
        self,
        system: TimingSystem,
        structure: PersistentSet,
        view: PMemView,
    ) -> None:
        self.system = system
        self.structure = structure
        self.view = view
        self.reference: Set[int] = set()

    def apply(self, operations: Sequence[Tuple[str, int]]) -> List[bool]:
        """Apply ('insert'|'delete'|'contains', key) ops, tracking the reference."""
        results = []
        for op, key in operations:
            if op == "insert":
                ok = self.structure.insert(self.view, key)
                if ok:
                    self.reference.add(key)
            elif op == "delete":
                ok = self.structure.delete(self.view, key)
                if ok:
                    self.reference.discard(key)
            elif op == "contains":
                ok = self.structure.contains(self.view, key)
            else:
                raise ValueError(f"unknown operation {op!r}")
            results.append(ok)
        return results

    def crash_and_check(self, at: Optional[int] = None) -> CrashReport:
        """Simulate power loss and decode the surviving image.

        With *at*, the crash is injected at that point in simulated time
        instead of now: in-flight writebacks whose completion lies beyond
        *at* are dropped, exactly as
        :func:`repro.verify.injector.timing_crash_image` computes crash
        images for the fault-injection sweep — one code path for both.
        """
        if at is None:
            persisted = self.system.crash()
        else:
            persisted = timing_crash_image(self.system, at=at)
        recovered = self.structure.recover_keys(persisted_reader(persisted))
        return CrashReport(reference=set(self.reference), recovered=recovered)
