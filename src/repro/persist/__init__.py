"""Persistent (NVMM) programming layer over the timing model (§7.4).

This package reproduces the software side of the paper's evaluation:

* :mod:`repro.persist.heap` — a simulated persistent heap;
* :mod:`repro.persist.flushopt` — the redundant-writeback filters the
  paper compares: plain, FliT adjacent, FliT hash table, link-and-persist
  and Skip It (hardware);
* :mod:`repro.persist.policies` — persistence algorithms: automatic,
  NVTraverse-style, and manual;
* :mod:`repro.persist.api` — the per-thread ``PMemView`` tying a thread
  context, a policy and an optimizer together;
* :mod:`repro.persist.structures` — the four data structures of Figure 14
  (linked list, hash table, skiplist, BST);
* :mod:`repro.persist.recovery` — crash-recovery checkers.
"""

from repro.persist.api import PMemView
from repro.persist.heap import SimHeap
from repro.persist.flushopt import (
    FlitAdjacent,
    FlitHashTable,
    FlushOptimizer,
    LinkAndPersist,
    Plain,
    SkipItHardware,
    make_optimizer,
)
from repro.persist.policies import (
    Automatic,
    Manual,
    NVTraverse,
    PersistencePolicy,
    make_policy,
)

__all__ = [
    "PMemView",
    "SimHeap",
    "FlushOptimizer",
    "Plain",
    "FlitAdjacent",
    "FlitHashTable",
    "LinkAndPersist",
    "SkipItHardware",
    "make_optimizer",
    "PersistencePolicy",
    "Automatic",
    "NVTraverse",
    "Manual",
    "make_policy",
]
