"""Simulated persistent heap.

A bump allocator handing out word-aligned addresses in the timing model's
address space.  Optimizers that need auxiliary per-word metadata (FliT
adjacent) double the field stride, faithfully doubling the footprint of
every allocated object — the cache-pressure effect §7.4 highlights.
"""

from __future__ import annotations

from typing import List


class NodeRef:
    """A handle to an allocated object: word-granular field addressing."""

    __slots__ = ("base", "stride", "num_fields")

    def __init__(self, base: int, stride: int, num_fields: int) -> None:
        self.base = base
        self.stride = stride
        self.num_fields = num_fields

    def field(self, index: int) -> int:
        """Address of the *index*-th 64-bit field."""
        if not 0 <= index < self.num_fields:
            raise IndexError(f"field {index} of {self.num_fields}")
        return self.base + index * self.stride


class SimHeap:
    """Bump allocator over the simulated physical address space."""

    HEAP_BASE = 0x1000_0000
    REGION_ALIGN = 1 << 20

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._next = self.HEAP_BASE
        self.allocated_objects = 0
        self.allocated_bytes = 0

    def alloc(self, num_fields: int, stride: int = 8) -> NodeRef:
        """Allocate an object of *num_fields* 64-bit fields.

        Objects never straddle allocation-unit boundaries gratuitously:
        the allocator line-aligns each object, like a slab allocator
        sizing classes to cache lines (nodes in the paper's benchmarks
        are line-sized or smaller).
        """
        size = num_fields * stride
        aligned = ((size + self.line_bytes - 1) // self.line_bytes) * self.line_bytes
        base = self._next
        self._next += aligned
        self.allocated_objects += 1
        self.allocated_bytes += aligned
        return NodeRef(base, stride, num_fields)

    def alloc_region(self, size_bytes: int) -> int:
        """Allocate a large flat region (e.g. the FliT hash table)."""
        base = (
            (self._next + self.REGION_ALIGN - 1) // self.REGION_ALIGN
        ) * self.REGION_ALIGN
        self._next = base + size_bytes
        self.allocated_bytes += size_bytes
        return base
