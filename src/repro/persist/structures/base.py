"""Common machinery for the persistent set implementations."""

from __future__ import annotations

from typing import Callable, Mapping, Set

from repro.persist.api import PMemView
from repro.persist.heap import SimHeap

# Recovery readers receive raw persisted words; structures must strip any
# optimizer mark bits before interpreting them as keys or pointers.
PersistedReader = Callable[[int], int]


class PersistentSet:
    """Abstract persistent set of positive integer keys."""

    name = "set"
    #: True when the algorithm steals pointer bits, which rules out the
    #: link-and-persist filter (as for the BST in the paper, §7.4).
    uses_pointer_tagging = False

    def __init__(self, heap: SimHeap, field_stride: int = 8) -> None:
        self.heap = heap
        self.field_stride = field_stride

    # ------------------------------------------------------------- set API
    def insert(self, view: PMemView, key: int) -> bool:
        raise NotImplementedError

    def delete(self, view: PMemView, key: int) -> bool:
        raise NotImplementedError

    def contains(self, view: PMemView, key: int) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------ recovery
    def recover_keys(self, read: PersistedReader) -> Set[int]:
        """Keys reachable in the persisted (post-crash) image."""
        raise NotImplementedError

    # -------------------------------------------------------------- helper
    def _alloc(self, num_fields: int):
        return self.heap.alloc(num_fields, self.field_stride)


def persisted_reader(
    persisted: Mapping[int, int], mask: int = ~(1 << 62)
) -> PersistedReader:
    """Build a reader over a crash image, stripping link-and-persist marks."""

    def read(address: int) -> int:
        return persisted.get(address, 0) & mask

    return read
