"""Persistent skiplist [23], operation-atomic.

Node layout: ``[key, height, next_0, ..., next_{H-1}]`` with a maximum
height of :data:`MAX_LEVEL`.  Heights are a deterministic pseudo-random
function of the key so runs are reproducible.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.persist.api import PMemView
from repro.persist.structures.base import PersistedReader, PersistentSet

KEY = 0
HEIGHT = 1
NEXT0 = 2

MAX_LEVEL = 4
_HASH_MULT = 0x9E3779B97F4A7C15


def deterministic_height(key: int) -> int:
    """Geometric(1/2)-like height derived from the key (1..MAX_LEVEL)."""
    h = (key * _HASH_MULT) & 0xFFFFFFFFFFFFFFFF
    height = 1
    while height < MAX_LEVEL and (h >> height) & 1:
        height += 1
    return height


class PersistentSkipList(PersistentSet):
    name = "skiplist"

    def __init__(self, heap, field_stride: int = 8) -> None:
        super().__init__(heap, field_stride)
        self._head = self._alloc(NEXT0 + MAX_LEVEL)
        self._initialized = False

    def initialize(self, view: PMemView) -> None:
        view.op_begin()
        view.write(self._head.field(KEY), 0, critical=True)
        view.write(self._head.field(HEIGHT), MAX_LEVEL, critical=True)
        for level in range(MAX_LEVEL):
            view.write(self._head.field(NEXT0 + level), 0, critical=True)
        view.op_end()
        self._initialized = True

    # ------------------------------------------------------------- helpers
    def _field(self, base: int, index: int) -> int:
        return base + index * self.field_stride

    def _find(
        self, view: PMemView, key: int
    ) -> Tuple[List[int], List[int], int, int]:
        """Per-level predecessors/successors plus the bottom-level match."""
        preds: List[int] = [0] * MAX_LEVEL
        succs: List[int] = [0] * MAX_LEVEL
        pred = self._head.base
        for level in range(MAX_LEVEL - 1, -1, -1):
            curr = view.read(self._field(pred, NEXT0 + level))
            while curr:
                curr_key = view.read(self._field(curr, KEY))
                if curr_key >= key:
                    break
                pred = curr
                curr = view.read(self._field(curr, NEXT0 + level))
            preds[level] = pred
            succs[level] = curr
        curr = succs[0]
        curr_key = view.read(self._field(curr, KEY), critical=True) if curr else -1
        view.read(self._field(preds[0], NEXT0), critical=True)
        return preds, succs, curr, curr_key

    # ------------------------------------------------------------- set API
    def insert(self, view: PMemView, key: int) -> bool:
        if key <= 0:
            raise ValueError("keys must be positive")
        view.op_begin()
        try:
            while True:
                preds, succs, curr, curr_key = self._find(view, key)
                if curr and curr_key == key:
                    return False
                height = deterministic_height(key)
                node = self._alloc(NEXT0 + height)
                view.write(node.field(KEY), key, critical=True)
                view.write(node.field(HEIGHT), height, critical=True)
                for level in range(height):
                    view.write(
                        node.field(NEXT0 + level), succs[level], critical=True
                    )
                if not view.cas(
                    self._field(preds[0], NEXT0), succs[0], node.base
                ):
                    continue
                for level in range(1, height):
                    view.cas(
                        self._field(preds[level], NEXT0 + level),
                        succs[level],
                        node.base,
                    )
                return True
        finally:
            view.op_end()

    def delete(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            while True:
                preds, succs, curr, curr_key = self._find(view, key)
                if not curr or curr_key != key:
                    return False
                height = view.read(self._field(curr, HEIGHT))
                # unlink top-down; the bottom level is the linearization
                for level in range(height - 1, 0, -1):
                    if succs[level] == curr:
                        nxt = view.read(self._field(curr, NEXT0 + level))
                        view.cas(
                            self._field(preds[level], NEXT0 + level), curr, nxt
                        )
                nxt = view.read(self._field(curr, NEXT0), critical=True)
                if view.cas(self._field(preds[0], NEXT0), curr, nxt):
                    return True
        finally:
            view.op_end()

    def contains(self, view: PMemView, key: int) -> bool:
        view.op_begin()
        try:
            _, _, curr, curr_key = self._find(view, key)
            return bool(curr) and curr_key == key
        finally:
            view.op_end()

    # ------------------------------------------------------------ recovery
    def recover_keys(self, read: PersistedReader) -> Set[int]:
        """Walk the bottom level of the persisted image."""
        keys: Set[int] = set()
        curr = read(self._field(self._head.base, NEXT0))
        seen = set()
        while curr and curr not in seen:
            seen.add(curr)
            key = read(self._field(curr, KEY))
            if key:
                keys.add(key)
            curr = read(self._field(curr, NEXT0))
        return keys
